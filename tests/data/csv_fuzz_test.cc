// Robustness fuzzing for the CSV parser: random byte soup and
// structured-but-hostile inputs must never crash — every input either
// parses or returns a Status.
#include <gtest/gtest.h>

#include <string>

#include "data/csv.h"
#include "util/random.h"

namespace divexp {
namespace {

TEST(CsvFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(2024);
  const std::string alphabet =
      "abcXYZ019 ,\"\n\r\t.;|?-";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t len = rng.Below(400);
    for (size_t i = 0; i < len; ++i) {
      text += alphabet[rng.Below(alphabet.size())];
    }
    auto result = ReadCsvString(text);
    if (result.ok()) {
      // Parsed tables must be internally consistent.
      for (size_t c = 0; c < result->num_columns(); ++c) {
        EXPECT_EQ(result->GetAt(c).size(), result->num_rows());
      }
    }
  }
}

TEST(CsvFuzzTest, HostileStructuredInputs) {
  const char* inputs[] = {
      "\n",
      "\n\n\n",
      ",",
      ",,,\n,,,\n",
      "\"",
      "a,b\n\"unterminated,1\n",
      "a,b\n\"\"\"\",2\n",
      "a\n" "999999999999999999999999999\n",
      "a\n-\n",
      "a\n1e400\n",      // double overflow
      "a\nnan\n",        // NA token
      "x,y\r\n\"a\r\nb\",2\r\n",  // newline inside quotes
  };
  for (const char* text : inputs) {
    auto result = ReadCsvString(text);  // must not crash either way
    if (result.ok()) {
      for (size_t c = 0; c < result->num_columns(); ++c) {
        EXPECT_EQ(result->GetAt(c).size(), result->num_rows());
      }
    }
  }
}

TEST(CsvFuzzTest, EmbeddedNewlineInQuotesRoundTrips) {
  DataFrame df;
  ASSERT_TRUE(df.AddColumn(Column::MakeCategorical(
                               "c", {0, 1}, {"line1\nline2", "plain"}))
                  .ok());
  auto back = ReadCsvString(WriteCsvString(df));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->Get("c").ValueString(0), "line1\nline2");
}

TEST(CsvFuzzTest, VeryWideAndVeryTallTables) {
  // 200 columns.
  std::string wide = "c0";
  for (int c = 1; c < 200; ++c) wide += ",c" + std::to_string(c);
  wide += "\n";
  for (int r = 0; r < 3; ++r) {
    wide += "1";
    for (int c = 1; c < 200; ++c) wide += ",2";
    wide += "\n";
  }
  auto wide_result = ReadCsvString(wide);
  ASSERT_TRUE(wide_result.ok());
  EXPECT_EQ(wide_result->num_columns(), 200u);

  // 20000 rows.
  std::string tall = "v\n";
  for (int r = 0; r < 20000; ++r) tall += std::to_string(r % 7) + "\n";
  auto tall_result = ReadCsvString(tall);
  ASSERT_TRUE(tall_result.ok());
  EXPECT_EQ(tall_result->num_rows(), 20000u);
}

}  // namespace
}  // namespace divexp
