#include "data/encoder.h"

#include <gtest/gtest.h>

namespace divexp {
namespace {

DataFrame MakeCategoricalFrame() {
  DataFrame df;
  EXPECT_TRUE(df.AddColumn(Column::MakeCategorical(
                               "color", {0, 1, 0, 2}, {"r", "g", "b"}))
                  .ok());
  EXPECT_TRUE(df.AddColumn(Column::MakeCategorical(
                               "size", {1, 0, 1, 1}, {"S", "L"}))
                  .ok());
  return df;
}

TEST(ItemCatalogTest, ContiguousIdsPerAttribute) {
  ItemCatalog catalog;
  const uint32_t a0 = catalog.AddAttribute("x", {"1", "2", "3"});
  const uint32_t a1 = catalog.AddAttribute("y", {"u", "v"});
  EXPECT_EQ(a0, 0u);
  EXPECT_EQ(a1, 1u);
  EXPECT_EQ(catalog.num_items(), 5u);
  EXPECT_EQ(catalog.first_item(0), 0u);
  EXPECT_EQ(catalog.first_item(1), 3u);
  EXPECT_EQ(catalog.domain_size(0), 3u);
  EXPECT_EQ(catalog.domain_size(1), 2u);
  EXPECT_EQ(catalog.item(4).attribute, 1u);
  EXPECT_EQ(catalog.ItemName(3), "y=u");
}

TEST(ItemCatalogTest, FindItemAndAttribute) {
  ItemCatalog catalog;
  catalog.AddAttribute("x", {"1", "2"});
  catalog.AddAttribute("y", {"u"});
  auto id = catalog.FindItem("y", "u");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2u);
  EXPECT_FALSE(catalog.FindItem("y", "zzz").ok());
  EXPECT_FALSE(catalog.FindItem("nope", "u").ok());
  auto attr = catalog.FindAttribute("x");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(*attr, 0u);
}

TEST(EncodeDataFrameTest, EncodesCellsRowMajor) {
  auto encoded = EncodeDataFrame(MakeCategoricalFrame());
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->num_rows, 4u);
  EXPECT_EQ(encoded->num_attributes, 2u);
  EXPECT_EQ(encoded->catalog.num_items(), 5u);
  // Row 0: color=r (item 0), size=L (item 3 + 1 = 4).
  EXPECT_EQ(encoded->at(0, 0), 0u);
  EXPECT_EQ(encoded->at(0, 1), 4u);
  // Row 3: color=b (item 2), size=L (item 4).
  EXPECT_EQ(encoded->at(3, 0), 2u);
  EXPECT_EQ(encoded->at(3, 1), 4u);
}

TEST(EncodeDataFrameTest, NonCategoricalRejected) {
  DataFrame df;
  ASSERT_TRUE(df.AddColumn(Column::MakeDouble("x", {1.0})).ok());
  auto encoded = EncodeDataFrame(df);
  EXPECT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(EncodeDataFrameTest, MissingValueRejected) {
  DataFrame df;
  ASSERT_TRUE(
      df.AddColumn(Column::MakeCategorical("c", {0, -1}, {"v"})).ok());
  EXPECT_FALSE(EncodeDataFrame(df).ok());
}

TEST(EncodeDataFrameTest, EmptyFrameRejected) {
  EXPECT_FALSE(EncodeDataFrame(DataFrame()).ok());
}

TEST(EncodedDatasetTest, CoverMatchesConjunction) {
  auto encoded = EncodeDataFrame(MakeCategoricalFrame());
  ASSERT_TRUE(encoded.ok());
  // color=r is item 0; rows 0 and 2.
  auto rows = encoded->Cover({0});
  EXPECT_EQ(rows, (std::vector<size_t>{0, 2}));
  // color=r AND size=L (item 4): rows 0 and 2 both have size=L.
  rows = encoded->Cover({0, 4});
  EXPECT_EQ(rows, (std::vector<size_t>{0, 2}));
  // color=g AND size=L: row 1 has size=S, so empty.
  rows = encoded->Cover({1, 4});
  EXPECT_TRUE(rows.empty());
  // Empty itemset covers everything.
  rows = encoded->Cover({});
  EXPECT_EQ(rows.size(), 4u);
}

}  // namespace
}  // namespace divexp
