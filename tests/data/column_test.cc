#include "data/column.h"

#include <gtest/gtest.h>

#include <cmath>

namespace divexp {
namespace {

TEST(ColumnTest, DoubleColumnBasics) {
  Column c = Column::MakeDouble("x", {1.5, 2.5, 3.5});
  EXPECT_EQ(c.name(), "x");
  EXPECT_EQ(c.type(), ColumnType::kDouble);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.doubles()[1], 2.5);
  EXPECT_DOUBLE_EQ(c.Numeric(2), 3.5);
  EXPECT_FALSE(c.IsMissing(0));
}

TEST(ColumnTest, DoubleNaNIsMissing) {
  Column c = Column::MakeDouble("x", {1.0, std::nan(""), 3.0});
  EXPECT_FALSE(c.IsMissing(0));
  EXPECT_TRUE(c.IsMissing(1));
  EXPECT_EQ(c.ValueString(1), "");
}

TEST(ColumnTest, IntColumnBasics) {
  Column c = Column::MakeInt("n", {-1, 0, 42});
  EXPECT_EQ(c.type(), ColumnType::kInt);
  EXPECT_EQ(c.ints()[2], 42);
  EXPECT_EQ(c.ValueString(2), "42");
  EXPECT_DOUBLE_EQ(c.Numeric(0), -1.0);
}

TEST(ColumnTest, StringColumnEmptyIsMissing) {
  Column c = Column::MakeString("s", {"a", "", "c"});
  EXPECT_TRUE(c.IsMissing(1));
  EXPECT_FALSE(c.IsMissing(0));
  EXPECT_EQ(c.ValueString(2), "c");
}

TEST(ColumnTest, CategoricalBasics) {
  Column c = Column::MakeCategorical("cat", {0, 1, 0, -1},
                                     {"red", "blue"});
  EXPECT_TRUE(c.is_categorical());
  EXPECT_EQ(c.num_categories(), 2u);
  EXPECT_EQ(c.ValueString(0), "red");
  EXPECT_EQ(c.ValueString(1), "blue");
  EXPECT_TRUE(c.IsMissing(3));
}

TEST(ColumnTest, CategoricalFromStringsFirstAppearanceOrder) {
  Column c = Column::CategoricalFromStrings(
      "cat", {"b", "a", "b", "", "c", "a"});
  ASSERT_EQ(c.num_categories(), 3u);
  EXPECT_EQ(c.categories()[0], "b");
  EXPECT_EQ(c.categories()[1], "a");
  EXPECT_EQ(c.categories()[2], "c");
  EXPECT_EQ(c.codes()[0], 0);
  EXPECT_EQ(c.codes()[1], 1);
  EXPECT_EQ(c.codes()[2], 0);
  EXPECT_EQ(c.codes()[3], -1);
  EXPECT_EQ(c.codes()[4], 2);
}

TEST(ColumnTest, TakeSelectsRowsInOrderWithRepeats) {
  Column c = Column::MakeInt("n", {10, 20, 30});
  Column t = c.Take({2, 0, 2});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.ints()[0], 30);
  EXPECT_EQ(t.ints()[1], 10);
  EXPECT_EQ(t.ints()[2], 30);
}

TEST(ColumnTest, TakeCategoricalKeepsDictionary) {
  Column c = Column::MakeCategorical("cat", {0, 1, 1}, {"x", "y"});
  Column t = c.Take({1});
  EXPECT_EQ(t.num_categories(), 2u);
  EXPECT_EQ(t.ValueString(0), "y");
}

TEST(ColumnTest, ValueStringTrimsTrailingZeros) {
  Column c = Column::MakeDouble("x", {2.0, 2.5});
  EXPECT_EQ(c.ValueString(0), "2");
  EXPECT_EQ(c.ValueString(1), "2.5");
}

TEST(ColumnTypeNameTest, AllNamesDistinct) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDouble), "double");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt), "int");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kString), "string");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kCategorical), "categorical");
}

}  // namespace
}  // namespace divexp
