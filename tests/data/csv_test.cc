#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "recovery/atomic_file.h"

namespace divexp {
namespace {

TEST(CsvReadTest, InfersIntDoubleCategorical) {
  const std::string text =
      "id,score,label\n"
      "1,0.5,yes\n"
      "2,1.5,no\n"
      "3,2.0,yes\n";
  auto df = ReadCsvString(text);
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 3u);
  EXPECT_EQ(df->Get("id").type(), ColumnType::kInt);
  EXPECT_EQ(df->Get("score").type(), ColumnType::kDouble);
  EXPECT_EQ(df->Get("label").type(), ColumnType::kCategorical);
  EXPECT_EQ(df->Get("label").ValueString(1), "no");
}

TEST(CsvReadTest, NaValuesBecomeMissing) {
  const std::string text = "a,b\n1.5,x\n?,y\n2.5,NA\n";
  auto df = ReadCsvString(text);
  ASSERT_TRUE(df.ok());
  EXPECT_TRUE(df->Get("a").IsMissing(1));
  EXPECT_TRUE(df->Get("b").IsMissing(2));
}

TEST(CsvReadTest, IntColumnWithMissingBecomesDouble) {
  const std::string text = "n\n1\n?\n3\n";
  auto df = ReadCsvString(text);
  ASSERT_TRUE(df.ok());
  // Ints cannot represent missing, so the column is promoted.
  EXPECT_EQ(df->Get("n").type(), ColumnType::kDouble);
  EXPECT_TRUE(df->Get("n").IsMissing(1));
}

TEST(CsvReadTest, QuotedFieldsWithDelimitersAndQuotes) {
  const std::string text =
      "name,notes\n"
      "\"Smith, John\",\"said \"\"hi\"\"\"\n";
  CsvOptions opts;
  opts.strings_as_categorical = false;
  auto df = ReadCsvString(text, opts);
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->Get("name").strings()[0], "Smith, John");
  EXPECT_EQ(df->Get("notes").strings()[0], "said \"hi\"");
}

TEST(CsvReadTest, CrLfLineEndings) {
  const std::string text = "a,b\r\n1,2\r\n3,4\r\n";
  auto df = ReadCsvString(text);
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 2u);
  EXPECT_EQ(df->Get("b").ints()[1], 4);
}

TEST(CsvReadTest, FieldCountMismatchIsError) {
  auto df = ReadCsvString("a,b\n1,2,3\n");
  EXPECT_FALSE(df.ok());
  EXPECT_EQ(df.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvReadTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvReadTest, HeaderOnlyGivesEmptyColumns) {
  auto df = ReadCsvString("x,y\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_columns(), 2u);
  EXPECT_EQ(df->num_rows(), 0u);
}

TEST(CsvRoundTripTest, WriteThenReadPreservesValues) {
  DataFrame df;
  ASSERT_TRUE(df.AddColumn(Column::MakeInt("n", {1, 2})).ok());
  ASSERT_TRUE(df.AddColumn(Column::MakeCategorical(
                               "c", {0, 1}, {"alpha", "beta,comma"}))
                  .ok());
  const std::string text = WriteCsvString(df);
  auto back = ReadCsvString(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->Get("n").ints()[1], 2);
  EXPECT_EQ(back->Get("c").ValueString(1), "beta,comma");
}

TEST(CsvFileTest, WriteAndReadFile) {
  DataFrame df;
  ASSERT_TRUE(df.AddColumn(Column::MakeDouble("v", {0.25, 0.75})).ok());
  const std::string path = "/tmp/divexp_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(df, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->Get("v").doubles()[1], 0.75);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/tmp/definitely_missing_divexp_file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

// Hostile inputs: a malformed file must produce a diagnosable error,
// never a silently garbled DataFrame.

TEST(CsvHostileTest, EmptyInputIsInvalidArgument) {
  auto r = ReadCsvString("");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvHostileTest, UnterminatedQuoteInHeader) {
  auto r = ReadCsvString("a,\"b\n1,2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("unterminated"), std::string::npos);
}

TEST(CsvHostileTest, UnterminatedQuoteInRecordNamesTheRecord) {
  auto r = ReadCsvString("a,b\n1,2\n3,\"oops\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Header is record 1, so the bad row is record 3.
  EXPECT_NE(r.status().message().find("record 3"), std::string::npos);
}

TEST(CsvHostileTest, EmbeddedNulByteIsRejected) {
  std::string text = "a,b\n1,2\n";
  text[6] = '\0';
  auto r = ReadCsvString(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("NUL"), std::string::npos);
}

TEST(CsvHostileTest, NulInsideQuotedFieldIsRejected) {
  std::string text = "a\n\"x_y\"\n";
  text[4] = '\0';
  auto r = ReadCsvString(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvHostileTest, RaggedRowsNameTheRecord) {
  auto too_few = ReadCsvString("a,b,c\n1,2,3\n4,5\n");
  ASSERT_FALSE(too_few.ok());
  EXPECT_EQ(too_few.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(too_few.status().message().find("record 3"),
            std::string::npos);
  auto too_many = ReadCsvString("a,b\n1,2,3\n");
  ASSERT_FALSE(too_many.ok());
  EXPECT_EQ(too_many.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvHostileTest, WellFormedQuotingStillWorks) {
  // Regression guard for the hardening: legitimate quoted fields with
  // escaped quotes, delimiters and newlines keep parsing.
  auto df = ReadCsvString("a,b\n\"x,\"\"y\"\"\nz\",2\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 1u);
  EXPECT_EQ(df->Get("a").ValueString(0), "x,\"y\"\nz");
}

TEST(CsvHostileTest, BinaryGarbageFileFailsCleanly) {
  const std::string path = "/tmp/divexp_csv_hostile_test.bin";
  const char bytes[] = {'a', ',', 'b', '\n', 0x00, 0x01, 0x02, '\n'};
  ASSERT_TRUE(
      recovery::WriteFileAtomic(path, std::string(bytes, sizeof(bytes)))
          .ok());
  auto r = ReadCsvFile(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace divexp
