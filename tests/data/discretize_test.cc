#include "data/discretize.h"

#include <gtest/gtest.h>

#include <cmath>

namespace divexp {
namespace {

TEST(EqualWidthEdgesTest, SplitsRangeEvenly) {
  const auto edges = EqualWidthEdges({0.0, 10.0}, 4);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_DOUBLE_EQ(edges[0], 2.5);
  EXPECT_DOUBLE_EQ(edges[1], 5.0);
  EXPECT_DOUBLE_EQ(edges[2], 7.5);
}

TEST(EqualWidthEdgesTest, ConstantColumnGivesNoEdges) {
  EXPECT_TRUE(EqualWidthEdges({3.0, 3.0, 3.0}, 3).empty());
}

TEST(QuantileEdgesTest, BalancedBinsOnUniformData) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<double>(i));
  const auto edges = QuantileEdges(values, 4);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_NEAR(edges[0], 250.0, 2.0);
  EXPECT_NEAR(edges[1], 500.0, 2.0);
  EXPECT_NEAR(edges[2], 749.0, 2.0);
}

TEST(QuantileEdgesTest, HeavyTiesCollapseEdges) {
  // 90% zeros: most quantile edges coincide at 0 and collapse.
  std::vector<double> values(90, 0.0);
  for (int i = 1; i <= 10; ++i) values.push_back(static_cast<double>(i));
  const auto edges = QuantileEdges(values, 4);
  EXPECT_LT(edges.size(), 3u);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(BinIndexTest, LeftOpenRightClosedBins) {
  const std::vector<double> edges = {1.0, 2.0};
  EXPECT_EQ(BinIndex(0.5, edges), 0);
  EXPECT_EQ(BinIndex(1.0, edges), 0);  // boundary goes left
  EXPECT_EQ(BinIndex(1.5, edges), 1);
  EXPECT_EQ(BinIndex(2.0, edges), 1);
  EXPECT_EQ(BinIndex(2.5, edges), 2);
}

TEST(DefaultBinLabelsTest, IntegralAndFractionalRendering) {
  const auto labels = DefaultBinLabels({3.0, 7.0}, /*integral=*/true);
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "<=3");
  EXPECT_EQ(labels[1], "(3-7]");
  EXPECT_EQ(labels[2], ">7");
  const auto frac = DefaultBinLabels({0.5}, /*integral=*/false);
  EXPECT_EQ(frac[0], "<=0.50");
}

TEST(DiscretizeColumnTest, CustomEdgesAndLabels) {
  Column c = Column::MakeDouble("age", {20.0, 30.0, 50.0});
  DiscretizeSpec spec;
  spec.column = "age";
  spec.strategy = BinStrategy::kCustom;
  spec.edges = {24.999, 45.0};
  spec.labels = {"<25", "25-45", ">45"};
  auto binned = DiscretizeColumn(c, spec);
  ASSERT_TRUE(binned.ok());
  EXPECT_EQ(binned->ValueString(0), "<25");
  EXPECT_EQ(binned->ValueString(1), "25-45");
  EXPECT_EQ(binned->ValueString(2), ">45");
}

TEST(DiscretizeColumnTest, MissingValuesStayMissing) {
  Column c = Column::MakeDouble("x", {1.0, std::nan("")});
  DiscretizeSpec spec;
  spec.column = "x";
  spec.strategy = BinStrategy::kCustom;
  spec.edges = {0.5};
  auto binned = DiscretizeColumn(c, spec);
  ASSERT_TRUE(binned.ok());
  EXPECT_FALSE(binned->IsMissing(0));
  EXPECT_TRUE(binned->IsMissing(1));
}

TEST(DiscretizeColumnTest, NonIncreasingCustomEdgesRejected) {
  Column c = Column::MakeDouble("x", {1.0});
  DiscretizeSpec spec;
  spec.column = "x";
  spec.strategy = BinStrategy::kCustom;
  spec.edges = {2.0, 2.0};
  EXPECT_FALSE(DiscretizeColumn(c, spec).ok());
}

TEST(DiscretizeColumnTest, WrongLabelCountRejected) {
  Column c = Column::MakeDouble("x", {1.0});
  DiscretizeSpec spec;
  spec.column = "x";
  spec.strategy = BinStrategy::kCustom;
  spec.edges = {2.0};
  spec.labels = {"only-one"};
  EXPECT_FALSE(DiscretizeColumn(c, spec).ok());
}

TEST(DiscretizeColumnTest, CategoricalInputRejected) {
  Column c = Column::MakeCategorical("c", {0}, {"v"});
  DiscretizeSpec spec;
  spec.column = "c";
  EXPECT_FALSE(DiscretizeColumn(c, spec).ok());
}

TEST(DiscretizeTest, ReplacesNamedColumnsOnly) {
  DataFrame df;
  ASSERT_TRUE(
      df.AddColumn(Column::MakeDouble("x", {1.0, 5.0, 9.0})).ok());
  ASSERT_TRUE(df.AddColumn(Column::MakeCategorical("c", {0, 1, 0},
                                                   {"a", "b"}))
                  .ok());
  DiscretizeSpec spec;
  spec.column = "x";
  spec.strategy = BinStrategy::kEqualWidth;
  spec.num_bins = 2;
  auto out = Discretize(df, {spec});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Get("x").is_categorical());
  EXPECT_EQ(out->Get("x").num_categories(), 2u);
  EXPECT_EQ(out->Get("c").ValueString(1), "b");  // untouched
}

TEST(DiscretizeAllTest, ConvertsEveryNumericColumn) {
  DataFrame df;
  ASSERT_TRUE(
      df.AddColumn(Column::MakeDouble("x", {1.0, 2.0, 3.0, 4.0})).ok());
  ASSERT_TRUE(df.AddColumn(Column::MakeInt("n", {1, 2, 3, 4})).ok());
  ASSERT_TRUE(df.AddColumn(Column::MakeCategorical(
                               "c", {0, 0, 1, 1}, {"a", "b"}))
                  .ok());
  auto out = DiscretizeAll(df, BinStrategy::kQuantile, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Get("x").is_categorical());
  EXPECT_TRUE(out->Get("n").is_categorical());
  EXPECT_TRUE(out->Get("c").is_categorical());
}

TEST(DiscretizePropertyTest, EveryValueLandsInItsBin) {
  // Property: for quantile binning, bin index is monotone in the value.
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(std::sin(i * 0.7) * 100.0);
  }
  const auto edges = QuantileEdges(values, 5);
  int last_bin = -1;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double v : sorted) {
    const int b = BinIndex(v, edges);
    EXPECT_GE(b, last_bin);
    last_bin = b;
  }
  EXPECT_EQ(last_bin, static_cast<int>(edges.size()));
}

}  // namespace
}  // namespace divexp
