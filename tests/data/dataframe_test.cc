#include "data/dataframe.h"

#include <gtest/gtest.h>

#include <cmath>

namespace divexp {
namespace {

DataFrame MakeSample() {
  DataFrame df;
  EXPECT_TRUE(df.AddColumn(Column::MakeInt("id", {1, 2, 3, 4})).ok());
  EXPECT_TRUE(
      df.AddColumn(Column::MakeDouble("v", {0.1, 0.2, 0.3, 0.4})).ok());
  EXPECT_TRUE(df.AddColumn(Column::MakeCategorical(
                               "cat", {0, 1, 0, 1}, {"a", "b"}))
                  .ok());
  return df;
}

TEST(DataFrameTest, AddAndLookup) {
  DataFrame df = MakeSample();
  EXPECT_EQ(df.num_rows(), 4u);
  EXPECT_EQ(df.num_columns(), 3u);
  EXPECT_TRUE(df.HasColumn("v"));
  EXPECT_FALSE(df.HasColumn("missing"));
  EXPECT_EQ(df.Get("id").ints()[2], 3);
  EXPECT_EQ(df.GetAt(0).name(), "id");
}

TEST(DataFrameTest, DuplicateNameRejected) {
  DataFrame df = MakeSample();
  const Status s = df.AddColumn(Column::MakeInt("id", {9, 9, 9, 9}));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(DataFrameTest, LengthMismatchRejected) {
  DataFrame df = MakeSample();
  const Status s = df.AddColumn(Column::MakeInt("short", {1, 2}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DataFrameTest, UnnamedColumnRejected) {
  DataFrame df;
  const Status s = df.AddColumn(Column::MakeInt("", {1}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DataFrameTest, ReplaceColumn) {
  DataFrame df = MakeSample();
  EXPECT_TRUE(
      df.ReplaceColumn(Column::MakeInt("id", {10, 20, 30, 40})).ok());
  EXPECT_EQ(df.Get("id").ints()[0], 10);
  EXPECT_EQ(df.num_columns(), 3u);
}

TEST(DataFrameTest, ReplaceMissingColumnFails) {
  DataFrame df = MakeSample();
  const Status s = df.ReplaceColumn(Column::MakeInt("nope", {1, 2, 3, 4}));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(DataFrameTest, DropColumnReindexes) {
  DataFrame df = MakeSample();
  EXPECT_TRUE(df.DropColumn("v").ok());
  EXPECT_EQ(df.num_columns(), 2u);
  EXPECT_FALSE(df.HasColumn("v"));
  // Remaining columns still reachable after reindex.
  EXPECT_EQ(df.Get("cat").codes()[1], 1);
  EXPECT_EQ(df.Get("id").ints()[3], 4);
}

TEST(DataFrameTest, FindReturnsStatusForMissing) {
  DataFrame df = MakeSample();
  EXPECT_TRUE(df.Find("id").ok());
  EXPECT_EQ(df.Find("zzz").status().code(), StatusCode::kNotFound);
}

TEST(DataFrameTest, SelectReordersColumns) {
  DataFrame df = MakeSample();
  auto sel = df.Select({"cat", "id"});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->num_columns(), 2u);
  EXPECT_EQ(sel->GetAt(0).name(), "cat");
  EXPECT_EQ(sel->GetAt(1).name(), "id");
}

TEST(DataFrameTest, SelectMissingFails) {
  DataFrame df = MakeSample();
  EXPECT_FALSE(df.Select({"id", "nope"}).ok());
}

TEST(DataFrameTest, TakeAndFilter) {
  DataFrame df = MakeSample();
  DataFrame taken = df.Take({3, 1});
  EXPECT_EQ(taken.num_rows(), 2u);
  EXPECT_EQ(taken.Get("id").ints()[0], 4);

  DataFrame filtered = df.Filter({true, false, false, true});
  EXPECT_EQ(filtered.num_rows(), 2u);
  EXPECT_EQ(filtered.Get("id").ints()[1], 4);
}

TEST(DataFrameTest, DropMissingRemovesIncompleteRows) {
  DataFrame df;
  ASSERT_TRUE(
      df.AddColumn(Column::MakeDouble("x", {1.0, std::nan(""), 3.0}))
          .ok());
  ASSERT_TRUE(df.AddColumn(Column::MakeCategorical("c", {0, 0, -1},
                                                   {"only"}))
                  .ok());
  DataFrame clean = df.DropMissing();
  EXPECT_EQ(clean.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(clean.Get("x").doubles()[0], 1.0);
}

TEST(DataFrameTest, CompleteRowsIndices) {
  DataFrame df;
  ASSERT_TRUE(
      df.AddColumn(Column::MakeDouble("x", {std::nan(""), 2.0})).ok());
  const auto rows = df.CompleteRows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 1u);
}

TEST(DataFrameTest, HeadRendersHeaderAndRows) {
  DataFrame df = MakeSample();
  const std::string head = df.Head(2);
  EXPECT_NE(head.find("id"), std::string::npos);
  EXPECT_NE(head.find("cat"), std::string::npos);
  EXPECT_NE(head.find("a"), std::string::npos);
  // Only 2 data rows + 1 header line.
  EXPECT_EQ(std::count(head.begin(), head.end(), '\n'), 3);
}

TEST(DataFrameTest, EmptyFrameBasics) {
  DataFrame df;
  EXPECT_EQ(df.num_rows(), 0u);
  EXPECT_EQ(df.num_columns(), 0u);
  EXPECT_TRUE(df.ColumnNames().empty());
}

}  // namespace
}  // namespace divexp
