// Crash-safe file replacement: round trips, atomicity under injected
// mid-write and pre-rename faults, and directory creation.
#include "recovery/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/failpoint.h"

namespace divexp {
namespace recovery {
namespace {

std::string TempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_atomic_file_test";
  DIVEXP_CHECK_OK(EnsureDirectory(dir));
  return dir;
}

TEST(AtomicFileTest, RoundTripsContents) {
  const std::string path = TempDir() + "/roundtrip.txt";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteFileAtomic(path, "hello\nworld\n").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello\nworld\n");
  // Overwrite replaces in full.
  ASSERT_TRUE(WriteFileAtomic(path, "v2").ok());
  EXPECT_EQ(*ReadFileToString(path), "v2");
  EXPECT_TRUE(FileExists(path));
}

TEST(AtomicFileTest, EmptyAndBinaryContents) {
  const std::string path = TempDir() + "/binary.bin";
  ASSERT_TRUE(WriteFileAtomic(path, std::string_view("", 0)).ok());
  EXPECT_EQ(ReadFileToString(path)->size(), 0u);
  std::string blob(1024, '\0');
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(i * 31);
  }
  ASSERT_TRUE(WriteFileAtomic(path, blob).ok());
  EXPECT_EQ(*ReadFileToString(path), blob);
}

TEST(AtomicFileTest, MissingFileIsNotFound) {
  const auto read = ReadFileToString(TempDir() + "/nope.txt");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(FileExists(TempDir() + "/nope.txt"));
}

TEST(AtomicFileTest, FaultMidWriteKeepsPreviousContents) {
  const std::string path = TempDir() + "/midwrite.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  {
    ScopedFailPoints scope("io.atomic.mid_write@1:return-error");
    EXPECT_FALSE(WriteFileAtomic(path, "NEW CONTENTS XXXX").ok());
  }
  // The destination is untouched and no temp file survives the scope.
  EXPECT_EQ(*ReadFileToString(path), "old contents");
}

TEST(AtomicFileTest, FaultBeforeRenameKeepsPreviousContents) {
  const std::string path = TempDir() + "/prerename.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  {
    ScopedFailPoints scope("io.atomic.before_rename@1:return-error");
    EXPECT_FALSE(WriteFileAtomic(path, "NEW").ok());
  }
  EXPECT_EQ(*ReadFileToString(path), "old contents");
}

TEST(AtomicFileTest, WriteFailureKeepsPreviousContentsAndCleansTemp) {
  // Regression: a failing ::write (ENOSPC-style) must surface an
  // IOError, leave the destination untouched and unlink the temp file
  // instead of looping forever on zero-progress writes.
  const std::string dir = TempDir();
  const std::string path = dir + "/write_fail.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());
  {
    ScopedFailPoints scope("io.atomic.write_fail@1:return-error");
    const Status status = WriteFileAtomic(path, "NEW CONTENTS");
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIOError);
    // The error names the temp path being written.
    EXPECT_NE(status.ToString().find("write '"), std::string::npos);
  }
  EXPECT_EQ(*ReadFileToString(path), "old contents");
  // No orphaned temp file: writing again (successfully) works and the
  // directory only contains what the tests created.
  ASSERT_TRUE(WriteFileAtomic(path, "v2").ok());
  EXPECT_EQ(*ReadFileToString(path), "v2");
}

TEST(AtomicFileTest, FaultAtBeginLeavesMissingFileMissing) {
  const std::string path = TempDir() + "/never_created.txt";
  std::remove(path.c_str());
  ScopedFailPoints scope("io.atomic.begin@1:return-error");
  EXPECT_FALSE(WriteFileAtomic(path, "data").ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(EnsureDirectoryTest, CreatesNestedAndIsIdempotent) {
  const std::string dir = TempDir() + "/a/b/c";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  ASSERT_TRUE(WriteFileAtomic(dir + "/f.txt", "x").ok());
  EXPECT_TRUE(FileExists(dir + "/f.txt"));
}

TEST(EnsureDirectoryTest, FailsWhenPathIsAFile) {
  const std::string path = TempDir() + "/iamafile";
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  EXPECT_FALSE(EnsureDirectory(path).ok());
}

}  // namespace
}  // namespace recovery
}  // namespace divexp
