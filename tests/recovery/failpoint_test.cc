// Deterministic fault-injection framework: spec parsing, ordinal
// counting (including under concurrency), action dispatch, and the
// disarmed fast path.
#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace divexp {
namespace recovery {
namespace {

TEST(ParseFailPointSpecsTest, ParsesFullGrammar) {
  auto specs = ParseFailPointSpecs(
      "io.atomic.mid_write@2:abort, fpm.apriori.level@1:throw,"
      "core.explore.mine@7:return-error,parallel.worker@1:delay-50");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 4u);
  EXPECT_EQ((*specs)[0].name, "io.atomic.mid_write");
  EXPECT_EQ((*specs)[0].ordinal, 2u);
  EXPECT_EQ((*specs)[0].action, FailPointAction::kAbort);
  EXPECT_EQ((*specs)[1].ordinal, 1u);
  EXPECT_EQ((*specs)[1].action, FailPointAction::kThrow);
  EXPECT_EQ((*specs)[2].action, FailPointAction::kReturnError);
  EXPECT_EQ((*specs)[3].action, FailPointAction::kDelay);
  EXPECT_EQ((*specs)[3].delay_ms, 50u);
}

TEST(ParseFailPointSpecsTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "noaction", "name:throw", "name@:throw", "name@x:throw",
        "name@0:throw", "name@1:", "name@1:explode", "name@1:delay-",
        "name@1:delay-x", "@1:throw", ","}) {
    EXPECT_FALSE(ParseFailPointSpecs(bad).ok()) << "'" << bad << "'";
  }
  // Stray empty entries between commas are tolerated.
  EXPECT_TRUE(ParseFailPointSpecs("a@1:throw,,b@1:throw").ok());  // lint:allow(failpoint-name): parser edge-case input
}

TEST(FailPointRegistryTest, DisarmedHitsAreFree) {
  FailPointRegistry& reg = FailPointRegistry::Default();
  reg.Disarm();
  EXPECT_FALSE(reg.armed());
  EXPECT_TRUE(reg.Hit("anything").ok());
}

TEST(FailPointRegistryTest, FiresOnExactOrdinalOnly) {
  ScopedFailPoints scope("p.ordinal@3:return-error");
  FailPointRegistry& reg = FailPointRegistry::Default();
  EXPECT_TRUE(reg.Hit("p.ordinal").ok());   // hit 1
  EXPECT_TRUE(reg.Hit("p.ordinal").ok());   // hit 2
  EXPECT_FALSE(reg.Hit("p.ordinal").ok());  // hit 3 fires
  EXPECT_TRUE(reg.Hit("p.ordinal").ok());   // hit 4
  EXPECT_TRUE(reg.Hit("p.other").ok());     // unarmed point never fires
}

TEST(FailPointRegistryTest, ThrowActionAndPromotion) {
  ScopedFailPoints scope("p.throw@1:throw,p.err@1:return-error");
  FailPointRegistry& reg = FailPointRegistry::Default();
  EXPECT_THROW(reg.HitOrThrow("p.throw"), FailPointError);
  // HitOrThrow promotes return-error so void contexts still fault.
  EXPECT_THROW(reg.HitOrThrow("p.err"), FailPointError);
}

TEST(FailPointRegistryTest, CountsInjectedFaults) {
  FailPointRegistry& reg = FailPointRegistry::Default();
  const uint64_t before = reg.faults_injected();
  {
    ScopedFailPoints scope("p.count@1:return-error,p.count@3:return-error");
    EXPECT_FALSE(reg.Hit("p.count").ok());
    EXPECT_TRUE(reg.Hit("p.count").ok());
    EXPECT_FALSE(reg.Hit("p.count").ok());
  }
  EXPECT_EQ(reg.faults_injected() - before, 2u);
  EXPECT_GE(obs::MetricsRegistry::Default()
                .GetCounter("recovery.failpoint.p.count")
                ->Value(),
            2u);
}

TEST(FailPointRegistryTest, RearmResetsHitCounters) {
  FailPointRegistry& reg = FailPointRegistry::Default();
  ASSERT_TRUE(reg.Arm("p.rearm@2:return-error").ok());
  EXPECT_TRUE(reg.Hit("p.rearm").ok());
  ASSERT_TRUE(reg.Arm("p.rearm@2:return-error").ok());
  EXPECT_TRUE(reg.Hit("p.rearm").ok());  // counter restarted at 0
  EXPECT_FALSE(reg.Hit("p.rearm").ok());
  reg.Disarm();
}

TEST(FailPointRegistryTest, ExactlyOneConcurrentHitterFires) {
  // 8 threads hammer one point armed at ordinal 100; the atomic hit
  // counter guarantees exactly one observes the firing ordinal.
  ScopedFailPoints scope("p.race@100:return-error");
  FailPointRegistry& reg = FailPointRegistry::Default();
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (!reg.Hit("p.race").ok()) fired.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fired.load(), 1);
}

TEST(FailPointMacroTest, StatusMacroReturnsInjectedError) {
  ScopedFailPoints scope("p.macro@1:return-error");
  auto f = []() -> Status {
    DIVEXP_FAILPOINT_STATUS("p.macro");
    return Status::OK();
  };
  EXPECT_FALSE(f().ok());
  EXPECT_TRUE(f().ok());
}

TEST(FailPointMacroTest, VoidMacroThrows) {
  ScopedFailPoints scope("p.void@1:throw");
  EXPECT_THROW({ DIVEXP_FAILPOINT("p.void"); }, FailPointError);
  EXPECT_NO_THROW({ DIVEXP_FAILPOINT("p.void"); });
}

}  // namespace
}  // namespace recovery
}  // namespace divexp
