// Corrupt-snapshot robustness: every truncation point and byte flip —
// header magic/version/kind/size, CRC, and payload — must surface as a
// clean Status error, never UB or a loadable-but-wrong snapshot. The
// CI recovery job runs this binary under ASan+UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/table_snapshot.h"
#include "recovery/atomic_file.h"
#include "recovery/mining_snapshot.h"
#include "recovery/snapshot_file.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace recovery {
namespace {

using divexp::testing::MakeEncoded;
using divexp::testing::OutcomesFromString;

std::string TempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_corrupt_snapshot_test";
  DIVEXP_CHECK_OK(EnsureDirectory(dir));
  return dir;
}

std::string ValidMiningSnapshotBytes() {
  MiningStateSnapshot state;
  state.fingerprint = 42;
  state.miner = MinerKind::kFpGrowth;
  state.min_support = 0.05;
  state.num_units = 4;
  state.units[0] = {MinedPattern{Itemset{0}, OutcomeCounts{3, 1, 2}},
                    MinedPattern{Itemset{0, 2}, OutcomeCounts{1, 1, 0}}};
  state.units[3] = {MinedPattern{Itemset{1}, OutcomeCounts{2, 2, 2}}};
  const std::string path = TempDir() + "/valid_mining.ckpt";
  DIVEXP_CHECK_OK(SaveMiningState(path, state));
  auto bytes = ReadFileToString(path);
  DIVEXP_CHECK(bytes.ok());
  return std::move(bytes).value();
}

std::string ValidTableSnapshotBytes() {
  const EncodedDataset ds = MakeEncoded(
      {{0, 1, 0}, {1, 0, 1}, {0, 0, 0}, {1, 1, 1}, {0, 1, 1}}, {2, 2, 2});
  DivergenceExplorer explorer(ExplorerOptions{});
  auto table = explorer.ExploreOutcomes(ds, OutcomesFromString("TFBTF"));
  DIVEXP_CHECK(table.ok());
  const std::string path = TempDir() + "/valid_table.snap";
  DIVEXP_CHECK_OK(SavePatternTable(path, *table));
  auto bytes = ReadFileToString(path);
  DIVEXP_CHECK(bytes.ok());
  return std::move(bytes).value();
}

// Writes `bytes` to a scratch file and tries to load it as `kind`;
// returns true when the load cleanly failed (non-OK Status). A load
// that "succeeds" is only acceptable if the bytes round-trip to the
// original — mutated-but-loadable is the corruption we must never
// allow (the CRC makes a silent single-byte flip pass practically
// impossible).
enum class Kind { kMining, kTable };

bool LoadCleanlyFails(const std::string& bytes, Kind kind,
                      const std::string& original) {
  const std::string path = TempDir() + "/mutant.snap";
  DIVEXP_CHECK_OK(WriteFileAtomic(path, bytes));
  if (kind == Kind::kMining) {
    auto loaded = LoadMiningState(path);
    if (!loaded.ok()) return true;
  } else {
    auto loaded = LoadPatternTable(path);
    if (!loaded.ok()) return true;
  }
  return bytes == original;  // loadable is OK only if bit-identical
}

TEST(CorruptSnapshotTest, EveryTruncationFailsCleanly_Mining) {
  const std::string good = ValidMiningSnapshotBytes();
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_TRUE(LoadCleanlyFails(good.substr(0, len), Kind::kMining, good))
        << "truncated to " << len << " bytes";
  }
}

TEST(CorruptSnapshotTest, EveryByteFlipFailsCleanly_Mining) {
  const std::string good = ValidMiningSnapshotBytes();
  for (size_t i = 0; i < good.size(); ++i) {
    for (const uint8_t flip : {uint8_t{0x01}, uint8_t{0xFF}}) {
      std::string bad = good;
      bad[i] = static_cast<char>(static_cast<uint8_t>(bad[i]) ^ flip);
      EXPECT_TRUE(LoadCleanlyFails(bad, Kind::kMining, good))
          << "byte " << i << " xor " << int{flip};
    }
  }
}

TEST(CorruptSnapshotTest, TruncationOffsetClassesFailCleanly_Table) {
  const std::string good = ValidTableSnapshotBytes();
  // Header boundaries plus a sweep through the payload.
  std::vector<size_t> lengths = {0,  1,  7,  8,  11, 12,
                                 15, 16, 23, 24, 27, kSnapshotHeaderSize};
  for (size_t len = kSnapshotHeaderSize; len < good.size();
       len += 1 + len / 16) {
    lengths.push_back(len);
  }
  for (size_t len : lengths) {
    if (len >= good.size()) continue;
    EXPECT_TRUE(LoadCleanlyFails(good.substr(0, len), Kind::kTable, good))
        << "truncated to " << len << " bytes";
  }
}

TEST(CorruptSnapshotTest, EveryByteFlipFailsCleanly_Table) {
  const std::string good = ValidTableSnapshotBytes();
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(static_cast<uint8_t>(bad[i]) ^ 0x40);
    EXPECT_TRUE(LoadCleanlyFails(bad, Kind::kTable, good)) << "byte " << i;
  }
}

TEST(CorruptSnapshotTest, RandomMultiByteMutationsFailCleanly) {
  // Multi-byte garbage (random splices, overwrites, extensions) on top
  // of the single-flip sweep; seeded, so failures reproduce.
  const std::string mining = ValidMiningSnapshotBytes();
  const std::string table = ValidTableSnapshotBytes();
  Rng rng(20260807);
  for (int round = 0; round < 200; ++round) {
    const bool use_table = rng.Below(2) == 1;
    const std::string& good = use_table ? table : mining;
    std::string bad = good;
    switch (rng.Below(3)) {
      case 0: {  // overwrite a random run with random bytes
        const size_t at = rng.Below(bad.size());
        const size_t len = 1 + rng.Below(16);
        for (size_t i = at; i < std::min(bad.size(), at + len); ++i) {
          bad[i] = static_cast<char>(rng.Below(256));
        }
        break;
      }
      case 1:  // truncate
        bad.resize(rng.Below(bad.size()));
        break;
      default:  // append garbage
        for (size_t i = 0; i < 1 + rng.Below(32); ++i) {
          bad.push_back(static_cast<char>(rng.Below(256)));
        }
    }
    EXPECT_TRUE(LoadCleanlyFails(
        bad, use_table ? Kind::kTable : Kind::kMining, good))
        << "round " << round;
  }
}

TEST(CorruptSnapshotTest, PayloadCorruptionBehindValidCrcFailsCleanly) {
  // Adversarial (not just accidental) corruption: a structurally
  // invalid payload wrapped in a *correct* envelope. The CRC passes,
  // so the structural validators are the only line of defense.
  {
    ByteWriter w;
    w.PutU64(1);    // fingerprint
    w.PutU32(0);    // miner
    w.PutF64(0.5);  // min_support
    w.PutU64(0);    // max_length
    w.PutU64(2);    // num_units
    w.PutU64(3);    // unit count 3 but only one unit follows: truncated
    const std::string path = TempDir() + "/bad_payload.ckpt";
    ASSERT_TRUE(
        WriteSnapshotFile(path, SnapshotKind::kMiningState, w.data()).ok());
    EXPECT_FALSE(LoadMiningState(path).ok());
  }
  {
    // A pattern count that would overflow any sane allocation must be
    // rejected by the bounds pre-check, not by attempting to reserve.
    ByteWriter w;
    w.PutU64(1);
    w.PutU32(0);
    w.PutF64(0.5);
    w.PutU64(0);
    w.PutU64(1);
    w.PutU64(0);                      // unit 0
    w.PutU64(0xFFFFFFFFFFFFull);      // absurd pattern count
    const std::string path = TempDir() + "/huge_count.ckpt";
    ASSERT_TRUE(
        WriteSnapshotFile(path, SnapshotKind::kMiningState, w.data()).ok());
    EXPECT_FALSE(LoadMiningState(path).ok());
  }
}

}  // namespace
}  // namespace recovery
}  // namespace divexp
