// Kill/resume differential harness: run explorations under random
// deterministic fault schedules until they die (injected throw /
// return-error in-process, or a real fork+abort for process death),
// resume from the last snapshot, and assert the final pattern table is
// bit-identical to an uninterrupted run — for all three miners, at
// several supports, at 1 and 8 threads.
//
// Schedule count per (miner, support, threads) cell comes from the
// DIVEXP_RECOVERY_SCHEDULES env var (default 15, so each miner sees
// 15 x 4 = 60 in-process schedules by default; CI's recovery-smoke job
// pins its own value).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/table_snapshot.h"
#include "recovery/atomic_file.h"
#include "util/failpoint.h"
#include "recovery/mining_snapshot.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace recovery {
namespace {

using divexp::testing::MakeEncoded;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_kill_resume_test/" + leaf;
  DIVEXP_CHECK_OK(EnsureDirectory(dir));
  return dir;
}

int SchedulesPerCell() {
  const char* env = std::getenv("DIVEXP_RECOVERY_SCHEDULES");
  if (env == nullptr) return 15;
  const int n = std::atoi(env);
  return n > 0 ? n : 15;
}

struct Workload {
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
};

// A table rich enough that every miner needs many units (FP-growth
// headers, Eclat roots, Apriori levels) and several checkpoints land
// before a mid-run fault.
Workload MakeWorkload() {
  Rng rng(777);
  const std::vector<int> domains = {3, 4, 2, 3, 2, 4};
  std::vector<std::vector<int>> cells(
      220, std::vector<int>(domains.size()));
  std::vector<Outcome> outcomes(cells.size());
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t a = 0; a < domains.size(); ++a) {
      cells[r][a] = static_cast<int>(rng.Below(domains[a]));
    }
    const double u = rng.Uniform();
    const double bias = cells[r][0] == 0 ? 0.6 : 0.3;
    outcomes[r] = u < bias         ? Outcome::kTrue
                  : u < bias + 0.3 ? Outcome::kFalse
                                   : Outcome::kBottom;
  }
  Workload w;
  w.dataset = MakeEncoded(cells, domains);
  w.outcomes = std::move(outcomes);
  return w;
}

ExplorerOptions BaseOptions(MinerKind miner, double support,
                            size_t threads,
                            fpm::KernelKind kernel = fpm::KernelKind::kAuto) {
  ExplorerOptions opts;
  opts.miner = miner;
  opts.min_support = support;
  opts.num_threads = threads;
  opts.kernel = kernel;
  return opts;
}

std::string ReferenceSerialization(const Workload& w,
                                   const ExplorerOptions& opts) {
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  DIVEXP_CHECK(table.ok());
  return SerializePatternTable(*table);
}

// Failpoints a schedule may target, per miner. Mining-phase points die
// mid-frontier; io.snapshot.write dies inside the checkpoint writer;
// core.explore.divergence dies after mining with a full checkpoint.
std::vector<std::string> FaultTargets(MinerKind miner) {
  std::vector<std::string> targets = {"parallel.worker",
                                      "io.snapshot.write",
                                      "core.explore.divergence"};
  switch (miner) {
    case MinerKind::kFpGrowth:
      targets.push_back("fpm.fpgrowth.grow");
      break;
    case MinerKind::kApriori:
      targets.push_back("fpm.apriori.level");
      break;
    case MinerKind::kEclat:
      targets.push_back("fpm.eclat.grow");
      break;
  }
  return targets;
}

std::string RandomSchedule(Rng& rng, MinerKind miner) {
  const std::vector<std::string> targets = FaultTargets(miner);
  const std::string& name = targets[rng.Below(targets.size())];
  // Bias ordinals low: Apriori has only a handful of hits per run
  // (one per level), so uniform 1..24 would rarely fire there; the
  // high tail still probes late-run faults on the richer miners.
  const uint64_t ordinal =
      rng.Below(2) == 0 ? 1 + rng.Below(3) : 1 + rng.Below(24);
  const char* action = rng.Below(2) == 0 ? "throw" : "return-error";
  return name + "@" + std::to_string(ordinal) + ":" + action;
}

void RunCell(MinerKind miner, double support, size_t threads,
             const Workload& w, const std::string& reference,
             int schedules, uint64_t seed,
             fpm::KernelKind kernel = fpm::KernelKind::kAuto) {
  Rng rng(seed);
  int interrupted = 0;
  for (int round = 0; round < schedules; ++round) {
    const std::string dir =
        TempDir(std::string(MinerKindName(miner)) + "_s" +
                std::to_string(static_cast<int>(support * 1000)) + "_t" +
                std::to_string(threads) + "_k" +
                fpm::KernelKindName(kernel));
    std::remove((dir + "/mining.ckpt").c_str());

    const std::string schedule = RandomSchedule(rng, miner);
    ExplorerOptions opts = BaseOptions(miner, support, threads, kernel);
    opts.checkpoint_dir = dir;

    bool died = true;
    {
      ScopedFailPoints scope;
      ASSERT_TRUE(scope.Arm(schedule).ok()) << schedule;
      DivergenceExplorer explorer(opts);
      try {
        auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
        if (table.ok()) {
          died = false;
          // Fault never fired (ordinal past the end of the run): the
          // completed run must already match the reference.
          ASSERT_EQ(SerializePatternTable(*table), reference)
              << "schedule " << schedule;
        }
      } catch (const std::exception&) {
        // A throw-action fault outside the mining phase (e.g. in the
        // divergence post-pass workers) escapes as an exception — a
        // harder death mode than a Status, handled identically.
      }
    }
    if (!died) continue;
    ++interrupted;

    // Whatever the snapshot captured must load cleanly...
    const bool had_checkpoint = FileExists(dir + "/mining.ckpt");
    if (had_checkpoint) {
      auto snapshot = LoadMiningState(dir + "/mining.ckpt");
      ASSERT_TRUE(snapshot.ok())
          << "schedule " << schedule << ": " << snapshot.status().ToString();
    }
    // ...and the resumed run must reproduce the reference exactly.
    opts.resume = true;
    DivergenceExplorer resumed(opts);
    auto table = resumed.ExploreOutcomes(w.dataset, w.outcomes);
    ASSERT_TRUE(table.ok())
        << "resume after " << schedule << ": " << table.status().ToString();
    ASSERT_EQ(SerializePatternTable(*table), reference)
        << "schedule " << schedule;
    if (had_checkpoint) {
      EXPECT_TRUE(resumed.last_run_stats().resumed_from_checkpoint)
          << "schedule " << schedule;
    }
  }
  // The schedule space is tuned so a healthy fraction of rounds
  // actually exercises the interrupt/resume path.
  EXPECT_GT(interrupted, 0) << "no schedule interrupted the run";
}

class KillResumeTest : public ::testing::TestWithParam<MinerKind> {};

TEST_P(KillResumeTest, RandomFaultSchedulesResumeBitIdentically) {
  const MinerKind miner = GetParam();
  const Workload w = MakeWorkload();
  const int schedules = SchedulesPerCell();
  uint64_t seed = 1000 + static_cast<uint64_t>(miner);
  for (const double support : {0.3, 0.12}) {
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      const std::string reference =
          ReferenceSerialization(w, BaseOptions(miner, support, threads));
      // The reference is thread-count independent (merge-order
      // invariant); resumed runs must land on the same bytes.
      RunCell(miner, support, threads, w, reference, schedules, ++seed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMiners, KillResumeTest,
                         ::testing::Values(MinerKind::kFpGrowth,
                                           MinerKind::kApriori,
                                           MinerKind::kEclat),
                         [](const auto& info) {
                           return std::string(MinerKindName(info.param));
                         });

// The --kernel=simd cells: faulted SIMD-kernel runs must resume onto
// the *scalar* reference bytes — checkpoint envelopes (and therefore
// resumed tables) are kernel-independent. On hosts without a SIMD
// table kSimd degrades to scalar and the cell still runs, keeping the
// assertion meaningful everywhere.
TEST(KillResumeKernelTest, SimdCellsResumeBitIdenticalToScalarReference) {
  const Workload w = MakeWorkload();
  const int schedules = SchedulesPerCell();
  uint64_t seed = 9000;
  for (MinerKind miner :
       {MinerKind::kFpGrowth, MinerKind::kApriori, MinerKind::kEclat}) {
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      const std::string reference = ReferenceSerialization(
          w, BaseOptions(miner, 0.12, threads, fpm::KernelKind::kScalar));
      RunCell(miner, 0.12, threads, w, reference, schedules, ++seed,
              fpm::KernelKind::kSimd);
    }
  }
}

// Real process death: fork a child that aborts inside the snapshot
// writer (and at other seams), then resume in the parent. This is the
// regression test for the RunGuard/checkpoint edge case — an abort
// mid-snapshot-write must leave either no checkpoint or a loadable
// one, never a torn file.
TEST(KillResumeForkTest, AbortMidSnapshotWriteNeverCorruptsCheckpoint) {
  const Workload w = MakeWorkload();
  const ExplorerOptions base =
      BaseOptions(MinerKind::kFpGrowth, 0.12, 1);
  const std::string reference = ReferenceSerialization(w, base);

  const std::vector<std::string> schedules = {
      "io.atomic.mid_write@1:abort",    // first checkpoint write dies
      "io.atomic.mid_write@3:abort",    // a later write dies
      "io.atomic.before_rename@2:abort",
      "io.snapshot.write@4:abort",
      "fpm.fpgrowth.grow@6:abort",
  };
  for (const std::string& schedule : schedules) {
    const std::string dir = TempDir("fork");
    std::remove((dir + "/mining.ckpt").c_str());

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: arm the schedule and mine until the abort kills us.
      // _exit (not exit) on survival: no gtest teardown in the child.
      if (!FailPointRegistry::Default().Arm(schedule).ok()) _exit(3);
      ExplorerOptions opts = base;
      opts.checkpoint_dir = dir;
      DivergenceExplorer explorer(opts);
      auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
      _exit(table.ok() ? 0 : 2);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);

    // The checkpoint, if present, must be loadable — an abort while
    // the writer was mid-file may only ever leave the previous
    // complete snapshot (write-temp/fsync/rename).
    if (FileExists(dir + "/mining.ckpt")) {
      auto snapshot = LoadMiningState(dir + "/mining.ckpt");
      ASSERT_TRUE(snapshot.ok())
          << schedule << ": " << snapshot.status().ToString();
    }

    // Resume (or remine from scratch) and compare bit-exactly.
    ExplorerOptions opts = base;
    opts.checkpoint_dir = dir;
    opts.resume = true;
    DivergenceExplorer resumed(opts);
    auto table = resumed.ExploreOutcomes(w.dataset, w.outcomes);
    ASSERT_TRUE(table.ok()) << schedule;
    EXPECT_EQ(SerializePatternTable(*table), reference) << schedule;
  }
}

// RunGuard breach + checkpointing: with on_limit=truncate the breach
// forces a final snapshot (Flush on the truncation path), and a write
// failure injected into that snapshot still returns the truncated
// table with no corrupt file left behind.
TEST(KillResumeGuardTest, BreachForcesSnapshotAndSurvivesWriteFault) {
  const Workload w = MakeWorkload();
  ExplorerOptions opts = BaseOptions(MinerKind::kFpGrowth, 0.12, 1);
  opts.limits.max_patterns = 40;
  opts.on_limit = LimitAction::kTruncate;
  const std::string dir = TempDir("guard");
  std::remove((dir + "/mining.ckpt").c_str());
  opts.checkpoint_dir = dir;
  // Long cadence: without the breach override no snapshot would be due
  // after the first write, so a second file proves the forced flush.
  opts.checkpoint_every_ms = 60 * 60 * 1000;

  {
    DivergenceExplorer explorer(opts);
    auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
    ASSERT_TRUE(table.ok());
    EXPECT_TRUE(explorer.last_run_stats().truncated);
    if (FileExists(dir + "/mining.ckpt")) {
      EXPECT_TRUE(LoadMiningState(dir + "/mining.ckpt").ok());
    }
  }

  // Same run, but every snapshot write fails: the truncated table must
  // still come back and no torn checkpoint may appear.
  std::remove((dir + "/mining.ckpt").c_str());
  {
    ScopedFailPoints scope(
        "io.snapshot.write@1:return-error,io.snapshot.write@2:return-error,"
        "io.snapshot.write@3:return-error,io.snapshot.write@4:return-error");
    DivergenceExplorer explorer(opts);
    auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
    ASSERT_TRUE(table.ok());
    EXPECT_TRUE(explorer.last_run_stats().truncated);
  }
  if (FileExists(dir + "/mining.ckpt")) {
    EXPECT_TRUE(LoadMiningState(dir + "/mining.ckpt").ok());
  }
}

// Stats plumbing: checkpoints_written / checkpoint_bytes /
// faults_injected surface through ExplorerRunStats.
TEST(KillResumeStatsTest, RunStatsReportRecoveryActivity) {
  const Workload w = MakeWorkload();
  ExplorerOptions opts = BaseOptions(MinerKind::kEclat, 0.3, 1);
  const std::string dir = TempDir("stats");
  std::remove((dir + "/mining.ckpt").c_str());
  opts.checkpoint_dir = dir;

  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok());
  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_FALSE(stats.resumed_from_checkpoint);
  EXPECT_GT(stats.checkpoints_written, 0u);
  EXPECT_GT(stats.checkpoint_bytes, 0u);
  EXPECT_EQ(stats.faults_injected, 0u);

  // A delay fault is benign but must be counted.
  {
    ScopedFailPoints scope("fpm.eclat.grow@1:delay-1");
    DivergenceExplorer delayed(opts);
    auto t2 = delayed.ExploreOutcomes(w.dataset, w.outcomes);
    ASSERT_TRUE(t2.ok());
    EXPECT_EQ(delayed.last_run_stats().faults_injected, 1u);
  }
}

}  // namespace
}  // namespace recovery
}  // namespace divexp
