// Streaming snapshot writer: the chunked path must produce files
// byte-identical to the buffered oracle, keep its peak tracked memory
// O(chunk) under a RunGuard, preserve the atomic-replace crash
// contract, and fire the same failpoints as the buffered path.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "recovery/atomic_file.h"
#include "recovery/checkpoint.h"
#include "recovery/mining_snapshot.h"
#include "recovery/snapshot_file.h"
#include "util/failpoint.h"
#include "util/run_guard.h"

namespace divexp {
namespace recovery {
namespace {

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_streaming_writer_test/" + leaf;
  DIVEXP_CHECK_OK(EnsureDirectory(dir));
  return dir;
}

std::string MustRead(const std::string& path) {
  auto contents = ReadFileToString(path);
  DIVEXP_CHECK_OK(contents.status());
  return *std::move(contents);
}

/// A state big enough that its payload spans many kSnapshotChunkBytes
/// chunks, with several units so the per-unit flush points are hit too.
MiningStateSnapshot MakeLargeState() {
  MiningStateSnapshot state;
  state.fingerprint = 0x1234CAFEF00D5678ull;
  state.miner = MinerKind::kFpGrowth;
  state.min_support = 0.01;
  state.max_length = 4;
  state.num_units = 8;
  for (uint64_t unit = 0; unit < 8; ++unit) {
    std::vector<MinedPattern> patterns;
    for (uint32_t p = 0; p < 4000; ++p) {
      MinedPattern pattern;
      pattern.items = Itemset{static_cast<uint32_t>(unit), p, p + 1};
      pattern.counts = OutcomeCounts{p, p % 7, p % 3};
      patterns.push_back(std::move(pattern));
    }
    state.units[unit] = std::move(patterns);
  }
  return state;
}

TEST(AtomicFileWriterTest, AppendsPatchesAndCommits) {
  const std::string path = TempDir("writer") + "/patched.bin";
  auto writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append("????").ok());
  ASSERT_TRUE((*writer)->Append("payload").ok());
  EXPECT_EQ((*writer)->bytes_appended(), 11u);
  // Patch the placeholder prefix once the tail is known.
  ASSERT_TRUE((*writer)->WriteAt(0, "HEAD").ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  EXPECT_EQ(MustRead(path), "HEADpayload");
}

TEST(AtomicFileWriterTest, WriteAtCannotExtendTheFile) {
  const std::string path = TempDir("writer") + "/oob.bin";
  auto writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("abc").ok());
  const Status oob = (*writer)->WriteAt(2, "xy");
  EXPECT_FALSE(oob.ok());
  EXPECT_NE(oob.ToString().find("extends past"), std::string::npos);
}

TEST(AtomicFileWriterTest, UncommittedWriterLeavesDestinationUntouched) {
  const std::string path = TempDir("writer") + "/abandoned.bin";
  ASSERT_TRUE(WriteFileAtomic(path, "previous").ok());
  {
    auto writer = AtomicFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("half-written new contents").ok());
    // Destroyed without Commit: simulated death before the rename.
  }
  EXPECT_EQ(MustRead(path), "previous");
}

TEST(SnapshotFileWriterTest, FileIsByteIdenticalToBufferedWriter) {
  const std::string dir = TempDir("envelope");
  const std::string payload = "a payload split across several chunks";

  ASSERT_TRUE(WriteSnapshotFile(dir + "/buffered.snap",
                                SnapshotKind::kMiningState, payload)
                  .ok());

  auto writer = SnapshotFileWriter::Create(dir + "/streamed.snap",
                                           SnapshotKind::kMiningState);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  // Uneven chunk boundaries must leave no trace in the output.
  ASSERT_TRUE((*writer)->Append(payload.substr(0, 1)).ok());
  ASSERT_TRUE((*writer)->Append(payload.substr(1, 10)).ok());
  ASSERT_TRUE((*writer)->Append("").ok());
  ASSERT_TRUE((*writer)->Append(payload.substr(11)).ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  EXPECT_EQ((*writer)->payload_size(), payload.size());

  EXPECT_EQ(MustRead(dir + "/streamed.snap"),
            MustRead(dir + "/buffered.snap"));
  // And the patched-in CRC/size verify like any other snapshot.
  auto read = ReadSnapshotFile(dir + "/streamed.snap",
                               SnapshotKind::kMiningState);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
}

TEST(StreamingSnapshotTest, ChunkedSaveIsByteIdenticalToBuffered) {
  const std::string dir = TempDir("differential");
  const MiningStateSnapshot state = MakeLargeState();

  uint64_t buffered_bytes = 0;
  ASSERT_TRUE(
      SaveMiningState(dir + "/buffered.ckpt", state, &buffered_bytes).ok());
  uint64_t chunked_bytes = 0;
  ASSERT_TRUE(
      SaveMiningStateChunked(dir + "/chunked.ckpt", state, &chunked_bytes)
          .ok());

  EXPECT_EQ(buffered_bytes, chunked_bytes);
  EXPECT_GT(chunked_bytes, kSnapshotChunkBytes);  // spans many chunks
  EXPECT_EQ(MustRead(dir + "/chunked.ckpt"), MustRead(dir + "/buffered.ckpt"));

  auto loaded = LoadMiningState(dir + "/chunked.ckpt");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->units.size(), state.units.size());
}

TEST(StreamingSnapshotTest, SmallStatesRoundTripThroughTheChunkedPath) {
  const std::string dir = TempDir("small");
  for (const MiningStateSnapshot& state :
       {MiningStateSnapshot{}, [] {
          MiningStateSnapshot s;
          s.fingerprint = 7;
          s.num_units = 1;
          s.units[0] = {MinedPattern{Itemset{3}, OutcomeCounts{1, 2, 3}}};
          return s;
        }()}) {
    ASSERT_TRUE(SaveMiningState(dir + "/buffered.ckpt", state).ok());
    ASSERT_TRUE(SaveMiningStateChunked(dir + "/chunked.ckpt", state).ok());
    EXPECT_EQ(MustRead(dir + "/chunked.ckpt"),
              MustRead(dir + "/buffered.ckpt"));
  }
}

TEST(StreamingSnapshotTest, PeakGuardMemoryIsBoundedByChunkNotPayload) {
  // The satellite claim: checkpoint peak memory is O(chunk). The guard
  // sees every in-flight chunk; its high-water mark must stay near
  // kSnapshotChunkBytes even when the payload is dozens of chunks.
  const std::string dir = TempDir("guard");
  const MiningStateSnapshot state = MakeLargeState();
  uint64_t total_bytes = 0;
  RunGuard guard;
  ASSERT_TRUE(SaveMiningStateChunked(dir + "/guarded.ckpt", state,
                                     &total_bytes, &guard)
                  .ok());
  const uint64_t payload = total_bytes - kSnapshotHeaderSize;
  EXPECT_GT(guard.peak_memory_bytes(), 0u);
  // One serialized pattern can straddle a flush boundary, so allow a
  // small overhang above the chunk size — but nothing near the payload.
  EXPECT_LT(guard.peak_memory_bytes(), 2 * kSnapshotChunkBytes);
  EXPECT_GT(payload, 8 * guard.peak_memory_bytes());
  // Everything was released: no phantom live bytes remain accounted.
  EXPECT_EQ(guard.memory_bytes(), 0u);
}

#if defined(DIVEXP_FAILPOINTS_ENABLED)
TEST(StreamingSnapshotTest, FiresTheSnapshotWriteFailpoint) {
  const std::string dir = TempDir("failpoint");
  ScopedFailPoints scope("io.snapshot.write@1:return-error");
  const Status status =
      SaveMiningStateChunked(dir + "/fp.ckpt", MakeLargeState());
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(FileExists(dir + "/fp.ckpt"));
}

TEST(StreamingSnapshotTest, MidStreamWriteFailureLeavesOldSnapshot) {
  const std::string dir = TempDir("midfail");
  const std::string path = dir + "/state.ckpt";
  MiningStateSnapshot small;
  small.fingerprint = 42;
  ASSERT_TRUE(SaveMiningStateChunked(path, small).ok());
  const std::string before = MustRead(path);
  {
    // Fail the third low-level write: header and first chunk are in the
    // temp file, then the stream dies. The destination must keep the
    // previous complete snapshot.
    ScopedFailPoints scope("io.atomic.write_fail@3:return-error");
    const Status status = SaveMiningStateChunked(path, MakeLargeState());
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("write"), std::string::npos);
  }
  EXPECT_EQ(MustRead(path), before);
  auto loaded = LoadMiningState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, 42u);
}
#endif  // DIVEXP_FAILPOINTS_ENABLED

TEST(StreamingSnapshotTest, CheckpointerChargesWritesToTheGuard) {
  // The Checkpointer hands its attached RunGuard to the streaming
  // writer, so snapshot serialization shows up in the run's tracked
  // peak — bounded by the chunk size, not the snapshot size.
  const std::string dir = TempDir("ckpt_guard");
  std::remove((dir + "/mining.ckpt").c_str());
  CheckpointerOptions opts;
  opts.dir = dir;
  auto cp = Checkpointer::Create(opts);
  ASSERT_TRUE(cp.ok());
  RunGuard guard;
  (*cp)->AttachGuard(&guard);
  ASSERT_TRUE((*cp)
                  ->BeginAttempt(9, MinerKind::kFpGrowth, 0.05, 0,
                                 /*strict=*/false)
                  .ok());
  (*cp)->BeginRun(1);
  std::vector<MinedPattern> patterns;
  for (uint32_t p = 0; p < 20000; ++p) {
    patterns.push_back(MinedPattern{Itemset{p, p + 1}, OutcomeCounts{p, 1, 0}});
  }
  (*cp)->UnitMined(0, patterns);
  ASSERT_TRUE((*cp)->last_write_error().ok());
  EXPECT_GT((*cp)->checkpoint_bytes(), 4 * kSnapshotChunkBytes);
  EXPECT_GT(guard.peak_memory_bytes(), 0u);
  EXPECT_LT(guard.peak_memory_bytes(), 2 * kSnapshotChunkBytes);
  EXPECT_EQ(guard.memory_bytes(), 0u);
}

}  // namespace
}  // namespace recovery
}  // namespace divexp
