// Snapshot serialization: mining-state and pattern-table round trips,
// envelope verification, dataset fingerprints, and the Checkpointer's
// restore/mismatch semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/table_snapshot.h"
#include "recovery/atomic_file.h"
#include "recovery/checkpoint.h"
#include "util/failpoint.h"
#include "recovery/mining_snapshot.h"
#include "recovery/snapshot_file.h"
#include "testing/test_data.h"

namespace divexp {
namespace recovery {
namespace {

using divexp::testing::MakeEncoded;
using divexp::testing::OutcomesFromString;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_snapshot_test/" + leaf;
  DIVEXP_CHECK_OK(EnsureDirectory(dir));
  return dir;
}

MiningStateSnapshot MakeState() {
  MiningStateSnapshot state;
  state.fingerprint = 0xDEADBEEFCAFE1234ull;
  state.miner = MinerKind::kEclat;
  state.min_support = 0.0625;
  state.max_length = 3;
  state.num_units = 5;
  state.units[0] = {MinedPattern{Itemset{0}, OutcomeCounts{4, 2, 1}},
                    MinedPattern{Itemset{0, 3}, OutcomeCounts{2, 1, 0}}};
  state.units[2] = {};  // a completed unit may legitimately be empty
  state.units[4] = {MinedPattern{Itemset{1, 2, 5}, OutcomeCounts{9, 0, 3}}};
  return state;
}

void ExpectStatesEqual(const MiningStateSnapshot& a,
                       const MiningStateSnapshot& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.miner, b.miner);
  EXPECT_EQ(a.min_support, b.min_support);
  EXPECT_EQ(a.max_length, b.max_length);
  EXPECT_EQ(a.num_units, b.num_units);
  ASSERT_EQ(a.units.size(), b.units.size());
  for (const auto& [unit, patterns] : a.units) {
    auto it = b.units.find(unit);
    ASSERT_NE(it, b.units.end()) << "unit " << unit;
    ASSERT_EQ(patterns.size(), it->second.size());
    for (size_t i = 0; i < patterns.size(); ++i) {
      EXPECT_EQ(patterns[i].items, it->second[i].items);
      EXPECT_EQ(patterns[i].counts.t, it->second[i].counts.t);
      EXPECT_EQ(patterns[i].counts.f, it->second[i].counts.f);
      EXPECT_EQ(patterns[i].counts.bot, it->second[i].counts.bot);
    }
  }
}

TEST(MiningSnapshotTest, SerializationRoundTrips) {
  const MiningStateSnapshot state = MakeState();
  auto parsed = DeserializeMiningState(SerializeMiningState(state));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectStatesEqual(state, *parsed);
}

TEST(MiningSnapshotTest, FileRoundTripReportsBytes) {
  const std::string path = TempDir("file") + "/state.ckpt";
  uint64_t bytes = 0;
  ASSERT_TRUE(SaveMiningState(path, MakeState(), &bytes).ok());
  EXPECT_GT(bytes, kSnapshotHeaderSize);
  auto loaded = LoadMiningState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectStatesEqual(MakeState(), *loaded);
}

TEST(MiningSnapshotTest, RejectsWrongEnvelopeKind) {
  const std::string path = TempDir("kind") + "/wrong_kind.snap";
  ASSERT_TRUE(WriteSnapshotFile(path, SnapshotKind::kPatternTable,
                                SerializeMiningState(MakeState()))
                  .ok());
  EXPECT_FALSE(LoadMiningState(path).ok());
}

TEST(DatasetFingerprintTest, SensitiveToCellsAndOutcomes) {
  const std::vector<std::vector<int>> rows = {
      {0, 1}, {1, 0}, {0, 0}, {1, 1}};
  const EncodedDataset base = MakeEncoded(rows, {2, 2});
  auto db = [](const EncodedDataset& ds, const std::string& outcomes) {
    auto built =
        TransactionDatabase::Create(ds, OutcomesFromString(outcomes));
    DIVEXP_CHECK(built.ok());
    return std::move(built).value();
  };
  const uint64_t fp = DatasetFingerprint(db(base, "TFBT"));
  EXPECT_EQ(fp, DatasetFingerprint(db(base, "TFBT")));  // deterministic
  // A flipped outcome or a changed cell moves the fingerprint.
  EXPECT_NE(fp, DatasetFingerprint(db(base, "TFBF")));
  std::vector<std::vector<int>> mutated = rows;
  mutated[2][1] = 1;
  EXPECT_NE(fp,
            DatasetFingerprint(db(MakeEncoded(mutated, {2, 2}), "TFBT")));
}

TEST(PatternTableSnapshotTest, RoundTripsBitIdentically) {
  // A real exploration (with lattice links and Beta-posterior global
  // stats) serialized, reloaded, and re-serialized: the payloads must
  // match byte for byte.
  const EncodedDataset ds = MakeEncoded(
      {{0, 1, 0}, {1, 0, 1}, {0, 0, 0}, {1, 1, 1}, {0, 1, 1}, {1, 0, 0}},
      {2, 2, 2});
  DivergenceExplorer explorer(ExplorerOptions{});
  auto table =
      explorer.ExploreOutcomes(ds, OutcomesFromString("TFBTFT"));
  ASSERT_TRUE(table.ok());

  const std::string payload = SerializePatternTable(*table);
  auto reloaded = DeserializePatternTable(payload);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(SerializePatternTable(*reloaded), payload);

  // Spot-check the reloaded table behaves like the original.
  EXPECT_EQ(reloaded->size(), table->size());
  EXPECT_EQ(reloaded->global_rate(), table->global_rate());
  EXPECT_EQ(reloaded->TopK(3), table->TopK(3));
}

TEST(PatternTableSnapshotTest, FileRoundTrip) {
  const EncodedDataset ds =
      MakeEncoded({{0, 1}, {1, 0}, {0, 0}, {1, 1}}, {2, 2});
  DivergenceExplorer explorer(ExplorerOptions{});
  auto table = explorer.ExploreOutcomes(ds, OutcomesFromString("TFBT"));
  ASSERT_TRUE(table.ok());
  const std::string path = TempDir("table") + "/table.snap";
  uint64_t bytes = 0;
  ASSERT_TRUE(SavePatternTable(path, *table, &bytes).ok());
  EXPECT_GT(bytes, kSnapshotHeaderSize);
  auto loaded = LoadPatternTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializePatternTable(*loaded), SerializePatternTable(*table));
}

TEST(CheckpointerTest, FreshRunWritesAndResumeRestores) {
  const std::string dir = TempDir("ckpt_fresh");
  std::remove((dir + "/mining.ckpt").c_str());

  CheckpointerOptions opts;
  opts.dir = dir;
  auto cp = Checkpointer::Create(opts);
  ASSERT_TRUE(cp.ok());
  auto begun = (*cp)->BeginAttempt(0xFEED, MinerKind::kFpGrowth, 0.05, 0,
                                   /*strict=*/false);
  ASSERT_TRUE(begun.ok());
  EXPECT_FALSE(*begun);  // nothing to restore
  (*cp)->BeginRun(3);
  (*cp)->UnitMined(0, {MinedPattern{Itemset{2}, OutcomeCounts{1, 0, 0}}});
  (*cp)->UnitMined(1, {});
  EXPECT_TRUE((*cp)->Flush().ok());
  EXPECT_GE((*cp)->checkpoints_written(), 1u);
  EXPECT_TRUE((*cp)->last_write_error().ok());

  // Second process: resume and restore both completed units.
  opts.resume = true;
  auto cp2 = Checkpointer::Create(opts);
  ASSERT_TRUE(cp2.ok());
  EXPECT_TRUE((*cp2)->has_pending_snapshot());
  auto restored = (*cp2)->BeginAttempt(0xFEED, MinerKind::kFpGrowth, 0.05,
                                       0, /*strict=*/true);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(*restored);
  EXPECT_TRUE((*cp2)->resumed());
  (*cp2)->BeginRun(3);
  const auto* unit0 = (*cp2)->RestoredUnit(0);
  ASSERT_NE(unit0, nullptr);
  ASSERT_EQ(unit0->size(), 1u);
  EXPECT_EQ((*unit0)[0].items, Itemset{2});
  ASSERT_NE((*cp2)->RestoredUnit(1), nullptr);
  EXPECT_EQ((*cp2)->RestoredUnit(2), nullptr);  // never completed
}

TEST(CheckpointerTest, StrictMismatchIsAnError) {
  const std::string dir = TempDir("ckpt_mismatch");
  std::remove((dir + "/mining.ckpt").c_str());
  CheckpointerOptions opts;
  opts.dir = dir;
  {
    auto cp = Checkpointer::Create(opts);
    ASSERT_TRUE(cp.ok());
    ASSERT_TRUE((*cp)
                    ->BeginAttempt(1, MinerKind::kEclat, 0.1, 2,
                                   /*strict=*/false)
                    .ok());
    (*cp)->BeginRun(1);
    (*cp)->UnitMined(0, {});
    ASSERT_TRUE((*cp)->Flush().ok());
  }
  opts.resume = true;
  auto cp = Checkpointer::Create(opts);
  ASSERT_TRUE(cp.ok());
  // Different miner on the strict (explicit --resume) attempt: error.
  auto strict = (*cp)->BeginAttempt(1, MinerKind::kApriori, 0.1, 2,
                                    /*strict=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().ToString().find("cannot resume"),
            std::string::npos);

  // min_support-only mismatch keeps the snapshot pending (a later
  // escalation attempt may reach the snapshotted support).
  auto cp2 = Checkpointer::Create(opts);
  ASSERT_TRUE(cp2.ok());
  auto first = (*cp2)->BeginAttempt(1, MinerKind::kEclat, 0.05, 2,
                                    /*strict=*/true);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(*first);
  EXPECT_TRUE((*cp2)->has_pending_snapshot());
  auto second = (*cp2)->BeginAttempt(1, MinerKind::kEclat, 0.1, 2,
                                     /*strict=*/false);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(*second);
}

TEST(CheckpointerTest, ResumeWithCorruptSnapshotFails) {
  const std::string dir = TempDir("ckpt_corrupt");
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/mining.ckpt", "definitely not a snapshot")
          .ok());
  CheckpointerOptions opts;
  opts.dir = dir;
  opts.resume = true;
  EXPECT_FALSE(Checkpointer::Create(opts).ok());
}

TEST(CheckpointerTest, WriteFailureIsRememberedNotFatal) {
  const std::string dir = TempDir("ckpt_writefail");
  std::remove((dir + "/mining.ckpt").c_str());
  CheckpointerOptions opts;
  opts.dir = dir;
  auto cp = Checkpointer::Create(opts);
  ASSERT_TRUE(cp.ok());
  ASSERT_TRUE((*cp)
                  ->BeginAttempt(1, MinerKind::kFpGrowth, 0.05, 0,
                                 /*strict=*/false)
                  .ok());
  (*cp)->BeginRun(2);
  {
    ScopedFailPoints scope("io.snapshot.write@1:return-error");
    // UnitMined never throws or aborts the run on a write failure.
    (*cp)->UnitMined(0, {});
    const Status error = (*cp)->last_write_error();
    ASSERT_FALSE(error.ok());
    // The remembered error carries retry-relevant context: the
    // snapshot path and the failure ordinal.
    EXPECT_NE(error.ToString().find(dir + "/mining.ckpt"),
              std::string::npos)
        << error.ToString();
    EXPECT_NE(error.ToString().find("write attempt 1"),
              std::string::npos)
        << error.ToString();
    EXPECT_EQ((*cp)->write_failures(), 1u);
  }
  // The next write succeeds and the file is loadable.
  (*cp)->UnitMined(1, {});
  EXPECT_TRUE(LoadMiningState(dir + "/mining.ckpt").ok());
  EXPECT_EQ((*cp)->write_failures(), 1u);
}

TEST(CheckpointerTest, WriteFailureSurfacesInExplorerRunStats) {
  // Regression: checkpoint writes are best-effort and must never fail a
  // run, but the explorer used to drop Checkpointer::last_write_error()
  // on the floor — a run with a broken snapshot reported itself as
  // fully checkpointed. The failure has to surface in
  // last_run_stats().checkpoint_write_error.
  const std::string dir = TempDir("ckpt_stats_writefail");
  std::remove((dir + "/mining.ckpt").c_str());
  const EncodedDataset ds =
      MakeEncoded({{0, 1}, {1, 0}, {0, 0}, {1, 1}}, {2, 2});

  ExplorerOptions opts;
  opts.checkpoint_dir = dir;
  DivergenceExplorer explorer(opts);
  {
    ScopedFailPoints scope("io.snapshot.write@1:return-error");
    auto table = explorer.ExploreOutcomes(ds, OutcomesFromString("TFBT"));
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    EXPECT_FALSE(explorer.last_run_stats().checkpoint_write_error.ok());
  }

  // Unfaulted control: the same run reports no write error.
  std::remove((dir + "/mining.ckpt").c_str());
  auto table = explorer.ExploreOutcomes(ds, OutcomesFromString("TFBT"));
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_TRUE(explorer.last_run_stats().checkpoint_write_error.ok());
}

}  // namespace
}  // namespace recovery
}  // namespace divexp
