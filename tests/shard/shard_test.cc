// ShardedExplorer tests: monolithic equivalence across shard counts,
// option validation, retry accounting, and the three degradation
// policies (fail / drop / stale) under injected shard faults.
#include "shard/shard.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/table_snapshot.h"
#include "recovery/atomic_file.h"
#include "testing/test_data.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace divexp {
namespace shard {
namespace {

using divexp::testing::MakeEncoded;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_shard_test/" + leaf;
  DIVEXP_CHECK_OK(recovery::EnsureDirectory(dir));
  return dir;
}

void RemoveShardCheckpoints(const std::string& dir, size_t shards) {
  for (size_t i = 0; i < shards; ++i) {
    std::remove(
        (dir + "/shard_" + std::to_string(i) + "/mining.ckpt").c_str());
  }
}

struct Workload {
  std::vector<std::vector<int>> rows;
  std::vector<int> domains;
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
};

Workload MakeWorkload(size_t num_rows = 150) {
  Rng rng(4242);
  Workload w;
  w.domains = {3, 3, 2, 2};
  w.rows.assign(num_rows, std::vector<int>(w.domains.size()));
  w.outcomes.resize(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < w.domains.size(); ++a) {
      w.rows[r][a] = static_cast<int>(rng.Below(w.domains[a]));
    }
    const double u = rng.Uniform();
    const double bias = w.rows[r][0] == 0 ? 0.55 : 0.25;
    w.outcomes[r] = u < bias         ? Outcome::kTrue
                    : u < bias + 0.3 ? Outcome::kFalse
                                     : Outcome::kBottom;
  }
  w.dataset = MakeEncoded(w.rows, w.domains);
  return w;
}

ShardedExplorerOptions BaseOptions(size_t shards, double support = 0.05) {
  ShardedExplorerOptions opts;
  opts.base.min_support = support;
  opts.num_shards = shards;
  opts.sleep_ms = [](uint64_t) {};  // never sleep in tests
  return opts;
}

std::string MonolithicReference(const Workload& w, double support = 0.05) {
  ExplorerOptions opts;
  opts.min_support = support;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  DIVEXP_CHECK(table.ok());
  return SerializePatternTable(*table);
}

TEST(ShardFailurePolicyTest, NamesRoundTrip) {
  for (ShardFailurePolicy policy :
       {ShardFailurePolicy::kFail, ShardFailurePolicy::kDrop,
        ShardFailurePolicy::kStale}) {
    auto parsed = ParseShardFailurePolicy(ShardFailurePolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseShardFailurePolicy("retry").ok());
  EXPECT_FALSE(ParseShardFailurePolicy("").ok());
}

TEST(ShardedOptionsTest, ValidationRejectsBadConfigs) {
  ShardedExplorerOptions opts = BaseOptions(4);
  EXPECT_TRUE(ValidateShardedExplorerOptions(opts).ok());
  opts.num_shards = 0;
  EXPECT_FALSE(ValidateShardedExplorerOptions(opts).ok());
  opts = BaseOptions(4);
  opts.shard_parallelism = 0;
  EXPECT_FALSE(ValidateShardedExplorerOptions(opts).ok());
  opts = BaseOptions(4);
  opts.retry.jitter = 2.0;
  EXPECT_FALSE(ValidateShardedExplorerOptions(opts).ok());
  opts = BaseOptions(4);
  opts.base.min_support = 0.0;
  EXPECT_FALSE(ValidateShardedExplorerOptions(opts).ok());
}

TEST(ShardedExplorerTest, RejectsMismatchedOutcomes) {
  const Workload w = MakeWorkload(20);
  ShardedExplorer explorer(BaseOptions(2));
  auto result = explorer.ExploreOutcomes(
      w.dataset, std::vector<Outcome>(5, Outcome::kTrue));
  EXPECT_FALSE(result.ok());
}

TEST(ShardedExplorerTest, BitIdenticalToMonolithicAcrossShardCounts) {
  const Workload w = MakeWorkload();
  const std::string reference = MonolithicReference(w);
  for (size_t shards : {size_t{1}, size_t{4}, size_t{8}}) {
    for (size_t parallelism : {size_t{1}, size_t{4}}) {
      ShardedExplorerOptions opts = BaseOptions(shards);
      opts.shard_parallelism = parallelism;
      ShardedExplorer explorer(opts);
      auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
      ASSERT_TRUE(table.ok()) << table.status().ToString();
      EXPECT_EQ(SerializePatternTable(*table), reference)
          << "shards=" << shards << " parallelism=" << parallelism;
      const ExplorerRunStats& stats = explorer.last_run_stats();
      EXPECT_EQ(stats.shards, shards);
      EXPECT_EQ(stats.shards_failed, 0u);
      EXPECT_EQ(stats.retries_total, 0u);
      EXPECT_DOUBLE_EQ(stats.rows_covered_fraction, 1.0);
    }
  }
}

TEST(ShardedExplorerTest, ExplorePredictionsPathMatchesMonolithic) {
  const Workload w = MakeWorkload(80);
  Rng rng(99);
  std::vector<int> preds(w.dataset.num_rows), truths(w.dataset.num_rows);
  for (size_t r = 0; r < preds.size(); ++r) {
    preds[r] = static_cast<int>(rng.Below(2));
    truths[r] = static_cast<int>(rng.Below(2));
  }
  ExplorerOptions mono;
  mono.min_support = 0.05;
  DivergenceExplorer monolithic(mono);
  auto expected = monolithic.Explore(w.dataset, preds, truths,
                                     Metric::kFalsePositiveRate);
  ASSERT_TRUE(expected.ok());

  ShardedExplorer sharded(BaseOptions(4));
  auto actual = sharded.Explore(w.dataset, preds, truths,
                                Metric::kFalsePositiveRate);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(SerializePatternTable(*actual),
            SerializePatternTable(*expected));
}

TEST(ShardedExplorerTest, MoreShardsThanRowsStillExact) {
  const Workload w = MakeWorkload(5);
  const std::string reference = MonolithicReference(w, 0.2);
  ShardedExplorer explorer(BaseOptions(8, 0.2));
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);
}

TEST(ShardedExplorerTest, TransientFaultIsRetriedToTheExactResult) {
  const Workload w = MakeWorkload();
  const std::string reference = MonolithicReference(w);
  ShardedExplorerOptions opts = BaseOptions(4);
  opts.shard_parallelism = 1;
  opts.retry.max_retries = 3;
  std::vector<uint64_t> backoffs;
  opts.sleep_ms = [&](uint64_t ms) { backoffs.push_back(ms); };

  ScopedFailPoints scope;
  ASSERT_TRUE(scope.Arm("shard.unit.mine@1:return-error").ok());
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);
  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_EQ(stats.retries_total, 1u);
  EXPECT_EQ(stats.shards_failed, 0u);
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_EQ(backoffs.size(), 1u);  // the backoff went through the hook
}

// Exhausts shard 0's whole retry budget (attempts hit ordinals 1..3 of
// shard.unit.mine with parallelism 1).
constexpr char kExhaustShard0[] =
    "shard.unit.mine@1:return-error,shard.unit.mine@2:return-error,"
    "shard.unit.mine@3:return-error";

TEST(ShardedExplorerTest, FailPolicySurfacesTheShardError) {
  const Workload w = MakeWorkload();
  ShardedExplorerOptions opts = BaseOptions(4);
  opts.shard_parallelism = 1;
  opts.retry.max_retries = 2;
  opts.on_shard_failure = ShardFailurePolicy::kFail;

  ScopedFailPoints scope;
  ASSERT_TRUE(scope.Arm(kExhaustShard0).ok());
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().ToString().find("shard 0 of 4"),
            std::string::npos)
      << table.status().ToString();
  EXPECT_NE(table.status().ToString().find("after 3 attempts"),
            std::string::npos);
  EXPECT_EQ(explorer.last_run_stats().shards_failed, 1u);
  EXPECT_EQ(explorer.last_run_stats().retries_total, 2u);
}

TEST(ShardedExplorerTest, DropPolicyMatchesMonolithicOverSurvivingRows) {
  const Workload w = MakeWorkload();
  const size_t kShards = 4;
  const std::vector<ShardRange> plan =
      MakeShardPlan(w.dataset.num_rows, kShards);

  // Monolithic reference over the rows that survive dropping shard 0.
  Workload surviving;
  surviving.domains = w.domains;
  surviving.rows.assign(w.rows.begin() + plan[0].end, w.rows.end());
  surviving.outcomes.assign(w.outcomes.begin() + plan[0].end,
                            w.outcomes.end());
  surviving.dataset = MakeEncoded(surviving.rows, surviving.domains);
  const std::string reference = MonolithicReference(surviving);

  ShardedExplorerOptions opts = BaseOptions(kShards);
  opts.shard_parallelism = 1;
  opts.retry.max_retries = 2;
  opts.on_shard_failure = ShardFailurePolicy::kDrop;

  ScopedFailPoints scope;
  ASSERT_TRUE(scope.Arm(kExhaustShard0).ok());
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);

  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_EQ(stats.shards_failed, 1u);
  EXPECT_EQ(stats.shards_dropped, 1u);
  EXPECT_EQ(stats.retries_total, 2u);
  EXPECT_LT(stats.rows_covered_fraction, 1.0);
  const double expected_fraction =
      static_cast<double>(w.dataset.num_rows - plan[0].size()) /
      static_cast<double>(w.dataset.num_rows);
  EXPECT_DOUBLE_EQ(stats.rows_covered_fraction, expected_fraction);
}

TEST(ShardedExplorerTest, AllShardsDroppedFailsInsteadOfEmptyTable) {
  const Workload w = MakeWorkload(20);
  ShardedExplorerOptions opts = BaseOptions(1);
  opts.retry.max_retries = 0;
  opts.on_shard_failure = ShardFailurePolicy::kDrop;
  ScopedFailPoints scope;
  ASSERT_TRUE(scope.Arm("shard.unit.mine@1:return-error").ok());
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  EXPECT_FALSE(table.ok());
}

TEST(ShardedExplorerTest, StalePolicyWithFullCheckpointIsBitIdentical) {
  const Workload w = MakeWorkload();
  const std::string reference = MonolithicReference(w);
  const std::string dir = TempDir("stale_full");
  const size_t kShards = 4;
  RemoveShardCheckpoints(dir, kShards);

  // Seed complete per-shard checkpoints with a clean run.
  ShardedExplorerOptions opts = BaseOptions(kShards);
  opts.shard_parallelism = 1;
  opts.base.checkpoint_dir = dir;
  {
    ShardedExplorer seeder(opts);
    auto table = seeder.ExploreOutcomes(w.dataset, w.outcomes);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
  }

  // Now fail shard 0's only attempt; stale degradation must recover
  // its full candidate set from the snapshot and stay bit-identical.
  opts.retry.max_retries = 0;
  opts.on_shard_failure = ShardFailurePolicy::kStale;
  ScopedFailPoints scope;
  ASSERT_TRUE(scope.Arm("shard.unit.mine@1:return-error").ok());
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);

  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_EQ(stats.shards_failed, 1u);
  EXPECT_EQ(stats.shards_stale, 1u);
  EXPECT_DOUBLE_EQ(stats.rows_covered_fraction, 1.0);
}

TEST(ShardedExplorerTest, StalePolicyWithoutCheckpointIsExactSubset) {
  const Workload w = MakeWorkload();
  ExplorerOptions mono;
  mono.min_support = 0.05;
  DivergenceExplorer monolithic(mono);
  auto expected = monolithic.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(expected.ok());

  ShardedExplorerOptions opts = BaseOptions(4);  // no checkpoint dir
  opts.shard_parallelism = 1;
  opts.retry.max_retries = 0;
  opts.on_shard_failure = ShardFailurePolicy::kStale;
  ScopedFailPoints scope;
  ASSERT_TRUE(scope.Arm("shard.unit.mine@1:return-error").ok());
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  // Coverage stays full and every reported pattern carries the exact
  // global tallies; only patterns frequent solely inside the failed
  // shard may be missing.
  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_DOUBLE_EQ(stats.rows_covered_fraction, 1.0);
  EXPECT_EQ(stats.shards_stale, 1u);
  EXPECT_LE(table->size(), expected->size());
  for (size_t i = 0; i < table->size(); ++i) {
    const PatternRow& row = table->row(i);
    const auto match = expected->Find(row.items);
    ASSERT_TRUE(match.has_value());
    const PatternRow& ref = expected->row(*match);
    EXPECT_EQ(row.counts.t, ref.counts.t);
    EXPECT_EQ(row.counts.f, ref.counts.f);
    EXPECT_EQ(row.counts.bot, ref.counts.bot);
  }
}

TEST(ShardedExplorerTest, CorruptCheckpointIsDiscardedAndRetried) {
  const Workload w = MakeWorkload();
  const std::string reference = MonolithicReference(w);
  const std::string dir = TempDir("corrupt_ckpt");
  const size_t kShards = 2;
  RemoveShardCheckpoints(dir, kShards);
  DIVEXP_CHECK_OK(recovery::EnsureDirectory(dir + "/shard_0"));
  DIVEXP_CHECK_OK(recovery::WriteFileAtomic(
      dir + "/shard_0/mining.ckpt", "this is not a snapshot"));

  ShardedExplorerOptions opts = BaseOptions(kShards);
  opts.shard_parallelism = 1;
  opts.retry.max_retries = 2;
  opts.base.checkpoint_dir = dir;
  opts.base.resume = true;  // forces shard 0 to load the garbage
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);
  // The corrupt snapshot cost shard 0 one attempt; the retry deleted
  // it and remined from scratch.
  EXPECT_GE(explorer.last_run_stats().retries_total, 1u);
  EXPECT_EQ(explorer.last_run_stats().shards_failed, 0u);
}

TEST(ShardedExplorerTest, FingerprintCorruptionIsRetriedToExactness) {
  const Workload w = MakeWorkload();
  const std::string reference = MonolithicReference(w);
  ShardedExplorerOptions opts = BaseOptions(4);
  opts.shard_parallelism = 1;
  opts.retry.max_retries = 2;
  ScopedFailPoints scope;
  ASSERT_TRUE(scope.Arm("shard.unit.fingerprint@1:return-error").ok());
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);
  EXPECT_GE(explorer.last_run_stats().retries_total, 1u);
}

TEST(ShardedExplorerTest, MergeVerifyFaultFailsTheRun) {
  const Workload w = MakeWorkload(30);
  ShardedExplorerOptions opts = BaseOptions(2);
  ScopedFailPoints scope;
  ASSERT_TRUE(scope.Arm("shard.merge.verify@1:return-error").ok());
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  EXPECT_FALSE(table.ok());
}

}  // namespace
}  // namespace shard
}  // namespace divexp
