// Sharded-exploration differential harness: run the ShardedExplorer
// under random deterministic fault schedules — mining-seam faults,
// shard-unit faults, snapshot-writer faults, fingerprint corruption —
// with a retry budget large enough to absorb them, and assert the
// final pattern table is bit-identical to an unfaulted monolithic run.
// All three miners, two supports, 1/4/8 shards.
//
// Schedule count per (miner, support, shards) cell comes from the
// DIVEXP_SHARD_SCHEDULES env var (default 5; CI's shard-fault-smoke
// job pins its own value).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/table_snapshot.h"
#include "recovery/atomic_file.h"
#include "shard/shard.h"
#include "testing/test_data.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace divexp {
namespace shard {
namespace {

using divexp::testing::MakeEncoded;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_shard_fault_test/" + leaf;
  DIVEXP_CHECK_OK(recovery::EnsureDirectory(dir));
  return dir;
}

int SchedulesPerCell() {
  const char* env = std::getenv("DIVEXP_SHARD_SCHEDULES");
  if (env == nullptr) return 5;
  const int n = std::atoi(env);
  return n > 0 ? n : 5;
}

struct Workload {
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
};

// Rich enough that every miner produces many units and several
// checkpoints land before a mid-run fault, per shard.
Workload MakeWorkload() {
  Rng rng(31337);
  const std::vector<int> domains = {3, 4, 2, 3, 2};
  std::vector<std::vector<int>> cells(200,
                                      std::vector<int>(domains.size()));
  std::vector<Outcome> outcomes(cells.size());
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t a = 0; a < domains.size(); ++a) {
      cells[r][a] = static_cast<int>(rng.Below(domains[a]));
    }
    const double u = rng.Uniform();
    const double bias = cells[r][0] == 0 ? 0.6 : 0.3;
    outcomes[r] = u < bias         ? Outcome::kTrue
                  : u < bias + 0.3 ? Outcome::kFalse
                                   : Outcome::kBottom;
  }
  Workload w;
  w.dataset = MakeEncoded(cells, domains);
  w.outcomes = std::move(outcomes);
  return w;
}

std::string MinerSeam(MinerKind miner) {
  switch (miner) {
    case MinerKind::kFpGrowth:
      return "fpm.fpgrowth.grow";
    case MinerKind::kApriori:
      return "fpm.apriori.level";
    case MinerKind::kEclat:
      return "fpm.eclat.grow";
  }
  return "fpm.fpgrowth.grow";
}

// One random schedule of 1-2 faults. Throwing from the fingerprint
// check would escape the retry loop (it is a manual Hit, not a macro
// behind a Status seam), so that target only ever uses return-error;
// everything else alternates between the two in-process death modes.
std::string RandomSchedule(Rng& rng, MinerKind miner) {
  const std::vector<std::string> targets = {
      "shard.unit.mine", "shard.unit.fingerprint", "io.snapshot.write",
      MinerSeam(miner)};
  std::string schedule;
  const size_t entries = 1 + rng.Below(2);
  for (size_t e = 0; e < entries; ++e) {
    const std::string& name = targets[rng.Below(targets.size())];
    // Low-biased ordinals: level-style miners only hit their seam a
    // handful of times per attempt.
    const uint64_t ordinal =
        rng.Below(2) == 0 ? 1 + rng.Below(3) : 1 + rng.Below(12);
    const bool can_throw = name != "shard.unit.fingerprint";
    const char* action =
        can_throw && rng.Below(2) == 0 ? "throw" : "return-error";
    if (!schedule.empty()) schedule += ",";
    schedule += name + "@" + std::to_string(ordinal) + ":" + action;
  }
  return schedule;
}

std::string MonolithicReference(
    const Workload& w, MinerKind miner, double support,
    fpm::KernelKind kernel = fpm::KernelKind::kAuto) {
  ExplorerOptions opts;
  opts.miner = miner;
  opts.min_support = support;
  opts.kernel = kernel;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  DIVEXP_CHECK(table.ok());
  return SerializePatternTable(*table);
}

void RunCell(const Workload& w, MinerKind miner, double support,
             size_t shards, const std::string& reference, int schedules,
             uint64_t seed,
             fpm::KernelKind kernel = fpm::KernelKind::kAuto) {
  Rng rng(seed);
  const std::string dir =
      TempDir(std::string(MinerKindName(miner)) + "_s" +
              std::to_string(static_cast<int>(support * 1000)) + "_k" +
              std::to_string(shards) + "_" + fpm::KernelKindName(kernel));
  int recovered = 0;
  for (int round = 0; round < schedules; ++round) {
    for (size_t i = 0; i < shards; ++i) {
      std::remove((dir + "/shard_" + std::to_string(i) + "/mining.ckpt")
                      .c_str());
    }
    const std::string schedule = RandomSchedule(rng, miner);
    SCOPED_TRACE("schedule " + schedule + " shards=" +
                 std::to_string(shards));

    ShardedExplorerOptions opts;
    opts.base.miner = miner;
    opts.base.min_support = support;
    opts.base.kernel = kernel;
    opts.base.checkpoint_dir = dir;
    opts.num_shards = shards;
    opts.shard_parallelism = shards > 1 ? 2 : 1;
    // Big enough budget that no 2-entry schedule can exhaust a shard.
    opts.retry.max_retries = 4;
    opts.sleep_ms = [](uint64_t) {};

    ScopedFailPoints scope;
    ASSERT_TRUE(scope.Arm(schedule).ok());
    ShardedExplorer explorer(opts);
    auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_EQ(SerializePatternTable(*table), reference);
    if (explorer.last_run_stats().retries_total > 0) ++recovered;
  }
  // The schedule space is tuned so a healthy fraction of rounds
  // actually exercises the retry path (not just unfired ordinals).
  EXPECT_GT(recovered, 0) << "no schedule triggered a shard retry";
}

class ShardFaultTest : public ::testing::TestWithParam<MinerKind> {};

TEST_P(ShardFaultTest, RandomFaultSchedulesStayBitIdentical) {
  const MinerKind miner = GetParam();
  const Workload w = MakeWorkload();
  const int schedules = SchedulesPerCell();
  uint64_t seed = 9000 + static_cast<uint64_t>(miner);
  for (const double support : {0.05, 0.01}) {
    const std::string reference =
        MonolithicReference(w, miner, support);
    for (const size_t shards : {size_t{1}, size_t{4}, size_t{8}}) {
      RunCell(w, miner, support, shards, reference, schedules, ++seed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMiners, ShardFaultTest,
                         ::testing::Values(MinerKind::kFpGrowth,
                                           MinerKind::kApriori,
                                           MinerKind::kEclat),
                         [](const auto& info) {
                           return std::string(MinerKindName(info.param));
                         });

// The --kernel=simd cells: faulted+retried SIMD shard runs (including
// the SON merge's SupportUpperBound recount skip) must land on the
// *scalar* monolithic bytes — kernel choice can never change a shard
// merge. Where no SIMD table exists kSimd degrades to scalar and the
// cell still runs.
TEST(ShardFaultKernelTest, SimdShardCellsMatchScalarMonolithicReference) {
  const Workload w = MakeWorkload();
  const int schedules = SchedulesPerCell();
  uint64_t seed = 77000;
  for (MinerKind miner :
       {MinerKind::kFpGrowth, MinerKind::kApriori, MinerKind::kEclat}) {
    const std::string reference =
        MonolithicReference(w, miner, 0.05, fpm::KernelKind::kScalar);
    for (const size_t shards : {size_t{1}, size_t{4}}) {
      RunCell(w, miner, 0.05, shards, reference, schedules, ++seed,
              fpm::KernelKind::kSimd);
    }
  }
}

// Drop-mode differential: exhaust one shard under faults, then check
// the degraded table equals a monolithic run over the surviving rows.
TEST(ShardFaultDropTest, DroppedShardMatchesMonolithicOverSurvivors) {
  Rng rng(555);
  const std::vector<int> domains = {3, 3, 2};
  std::vector<std::vector<int>> cells(120,
                                      std::vector<int>(domains.size()));
  std::vector<Outcome> outcomes(cells.size());
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t a = 0; a < domains.size(); ++a) {
      cells[r][a] = static_cast<int>(rng.Below(domains[a]));
    }
    outcomes[r] = rng.Below(2) == 0 ? Outcome::kTrue : Outcome::kFalse;
  }
  const size_t kShards = 4;
  const std::vector<ShardRange> plan =
      MakeShardPlan(cells.size(), kShards);

  Workload full;
  full.dataset = MakeEncoded(cells, domains);
  full.outcomes = outcomes;
  Workload survivors;
  survivors.dataset = MakeEncoded(
      std::vector<std::vector<int>>(cells.begin() + plan[0].end,
                                    cells.end()),
      domains);
  survivors.outcomes.assign(outcomes.begin() + plan[0].end,
                            outcomes.end());
  const std::string reference =
      MonolithicReference(survivors, MinerKind::kFpGrowth, 0.05);

  ShardedExplorerOptions opts;
  opts.base.min_support = 0.05;
  opts.num_shards = kShards;
  opts.shard_parallelism = 1;
  opts.retry.max_retries = 1;
  opts.on_shard_failure = ShardFailurePolicy::kDrop;
  opts.sleep_ms = [](uint64_t) {};
  ScopedFailPoints scope;
  ASSERT_TRUE(scope
                  .Arm("shard.unit.mine@1:return-error,"
                       "shard.unit.mine@2:throw")
                  .ok());
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(full.dataset, full.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);
  EXPECT_LT(explorer.last_run_stats().rows_covered_fraction, 1.0);
}

}  // namespace
}  // namespace shard
}  // namespace divexp
