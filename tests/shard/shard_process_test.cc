// Process-isolation differential harness: the same workload mined
// monolithically, thread-sharded, and process-sharded (fork/exec'd
// `shard-worker` children supervised by the coordinator) must
// serialize bit-identically — including runs where workers are
// SIGKILLed mid-mine, die of SIGSEGV, or stall their heartbeat until
// the coordinator's deadline kills them. Also proves the supervision
// invariants: no zombies (spawn/reap accounting balances after every
// run) and a SIGKILLed worker's successor resumes from the shard
// checkpoint the dead worker left behind.
//
// This binary is its own worker executable: the coordinator re-execs
// it with the hidden `shard-worker` verb, dispatched in main() before
// gtest ever parses argv. Schedule count per cell comes from the
// DIVEXP_SHARD_SCHEDULES env var (default 3; CI's shard-chaos-smoke
// job pins a larger value).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/table_snapshot.h"
#include "obs/metrics.h"
#include "recovery/atomic_file.h"
#include "shard/shard.h"
#include "shard/worker/coordinator.h"
#include "shard/worker/worker.h"
#include "testing/test_data.h"
#include "util/random.h"
#include "util/subprocess.h"

namespace divexp {
namespace shard {
namespace {

using divexp::testing::MakeEncoded;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_shard_process_test/" + leaf;
  DIVEXP_CHECK_OK(recovery::EnsureDirectory(dir));
  return dir;
}

int SchedulesPerCell() {
  const char* env = std::getenv("DIVEXP_SHARD_SCHEDULES");
  if (env == nullptr) return 3;
  const int n = std::atoi(env);
  return n > 0 ? n : 3;
}

uint64_t HeartbeatTimeouts() {
  return obs::MetricsRegistry::Default()
      .GetCounter("shard.proc.heartbeat_timeouts")
      ->Value();
}

/// The zombie invariant: whenever no attempt is in flight, every child
/// ever spawned has been reaped exactly once.
void ExpectNoZombies() {
  EXPECT_EQ(SubprocessSpawnCount(), SubprocessReapCount());
}

struct Workload {
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
};

Workload MakeWorkload() {
  Rng rng(31337);
  const std::vector<int> domains = {3, 4, 2, 3};
  std::vector<std::vector<int>> cells(160,
                                      std::vector<int>(domains.size()));
  std::vector<Outcome> outcomes(cells.size());
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t a = 0; a < domains.size(); ++a) {
      cells[r][a] = static_cast<int>(rng.Below(domains[a]));
    }
    const double u = rng.Uniform();
    const double bias = cells[r][0] == 0 ? 0.6 : 0.3;
    outcomes[r] = u < bias         ? Outcome::kTrue
                  : u < bias + 0.3 ? Outcome::kFalse
                                   : Outcome::kBottom;
  }
  Workload w;
  w.dataset = MakeEncoded(cells, domains);
  w.outcomes = std::move(outcomes);
  return w;
}

std::string MinerSeam(MinerKind miner) {
  switch (miner) {
    case MinerKind::kFpGrowth:
      return "fpm.fpgrowth.grow";
    case MinerKind::kApriori:
      return "fpm.apriori.level";
    case MinerKind::kEclat:
      return "fpm.eclat.grow";
  }
  return "fpm.fpgrowth.grow";
}

std::string MonolithicReference(const Workload& w, MinerKind miner,
                                double support) {
  ExplorerOptions opts;
  opts.miner = miner;
  opts.min_support = support;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  DIVEXP_CHECK(table.ok());
  return SerializePatternTable(*table);
}

/// Process-isolated ShardedExplorerOptions with sane test supervision
/// parameters; callers override chaos / checkpoint fields per test.
ShardedExplorerOptions ProcessOpts(
    MinerKind miner, double support, size_t shards,
    const std::string& scratch,
    worker::ProcessIsolationOptions* popts_out = nullptr) {
  worker::ProcessIsolationOptions popts;
  popts.scratch_dir = scratch;
  popts.heartbeat_interval_ms = 25;
  // Generous by default: sanitizer-heavy CI machines must never trip
  // the deadline on a healthy worker. The stall test tightens it.
  popts.heartbeat_timeout_ms = 30000;
  if (popts_out != nullptr) popts = *popts_out;

  ShardedExplorerOptions opts;
  opts.base.miner = miner;
  opts.base.min_support = support;
  opts.num_shards = shards;
  opts.shard_parallelism = shards > 1 ? 2 : 1;
  opts.retry.max_retries = 3;
  opts.sleep_ms = [](uint64_t) {};
  opts.isolation = ShardIsolation::kProcess;
  opts.attempt_runner = worker::MakeProcessAttemptRunner(popts);
  return opts;
}

/// One random process-chaos entry: real death (SIGKILL / SIGSEGV) at a
/// deterministic ordinal on one of the seams a worker crosses. Under
/// ASan a raised SIGSEGV may surface as a nonzero exit instead of the
/// signal — both classify as a retryable shard failure, so schedules
/// stay valid either way.
std::string RandomChaosSchedule(Rng& rng, MinerKind miner) {
  const std::vector<std::string> targets = {"shard.unit.mine",
                                            MinerSeam(miner)};
  const std::string& name = targets[rng.Below(targets.size())];
  const uint64_t ordinal =
      rng.Below(2) == 0 ? 1 + rng.Below(3) : 1 + rng.Below(8);
  const char* action = rng.Below(3) == 0 ? "segv" : "kill";
  return name + "@" + std::to_string(ordinal) + ":" + action;
}

class ShardProcessTest : public ::testing::TestWithParam<MinerKind> {};

TEST_P(ShardProcessTest, CleanRunsMatchMonolithicBytes) {
  const MinerKind miner = GetParam();
  const Workload w = MakeWorkload();
  const std::string reference = MonolithicReference(w, miner, 0.05);
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const std::string dir =
        TempDir(std::string("clean_") + MinerKindName(miner) + "_k" +
                std::to_string(shards));
    ShardedExplorerOptions opts =
        ProcessOpts(miner, 0.05, shards, dir + "/scratch");
    ShardedExplorer explorer(opts);
    auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    EXPECT_EQ(SerializePatternTable(*table), reference);
    EXPECT_EQ(explorer.last_run_stats().shard_isolation, "process");
    EXPECT_EQ(explorer.last_run_stats().retries_total, 0u);
    ExpectNoZombies();
  }
}

TEST_P(ShardProcessTest, KilledAndSegvedWorkersStayBitIdentical) {
  const MinerKind miner = GetParam();
  const Workload w = MakeWorkload();
  const std::string reference = MonolithicReference(w, miner, 0.05);
  const int schedules = SchedulesPerCell();
  Rng rng(4400 + static_cast<uint64_t>(miner));
  int recovered = 0;
  for (int round = 0; round < schedules; ++round) {
    const std::string schedule = RandomChaosSchedule(rng, miner);
    SCOPED_TRACE("schedule " + schedule);
    const std::string dir =
        TempDir(std::string("chaos_") + MinerKindName(miner) + "_r" +
                std::to_string(round));

    worker::ProcessIsolationOptions popts;
    popts.scratch_dir = dir + "/scratch";
    popts.heartbeat_interval_ms = 25;
    popts.heartbeat_timeout_ms = 30000;
    // Chaos rides the spec, not the parent registry: each worker
    // starts with fresh hit counters, so arming only attempt 0 makes
    // every first attempt die (where the ordinal fires at all) and
    // every retry run clean.
    popts.failpoint_schedule = [schedule](size_t, size_t attempt) {
      return attempt == 0 ? schedule : std::string();
    };

    ShardedExplorerOptions opts =
        ProcessOpts(miner, 0.05, 4, popts.scratch_dir, &popts);
    ShardedExplorer explorer(opts);
    auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_EQ(SerializePatternTable(*table), reference);
    if (explorer.last_run_stats().retries_total > 0) ++recovered;
    ExpectNoZombies();
  }
  EXPECT_GT(recovered, 0) << "no schedule killed a worker";
}

TEST_P(ShardProcessTest, SigkilledWorkerResumesFromShardCheckpoint) {
  const MinerKind miner = GetParam();
  const Workload w = MakeWorkload();
  const std::string reference = MonolithicReference(w, miner, 0.05);
  const std::string dir =
      TempDir(std::string("resume_") + MinerKindName(miner));

  worker::ProcessIsolationOptions popts;
  popts.scratch_dir = dir + "/scratch";
  popts.heartbeat_interval_ms = 25;
  popts.heartbeat_timeout_ms = 30000;
  // SIGKILL at the second snapshot write: no destructors, no sanitizer
  // exit paths — the sharpest possible death. checkpoint_every_ms=0
  // snapshots after every completed unit, so by the time the second
  // write starts, the first checkpoint has already landed (atomic
  // rename) and the dead worker leaves a resumable shard checkpoint
  // behind. The snapshot seam (unlike the miner seams, whose hit
  // counts are recursion-depth-dependent) guarantees this ordering
  // for every miner.
  const std::string schedule = "io.snapshot.write@2:kill";
  popts.failpoint_schedule = [schedule](size_t, size_t attempt) {
    return attempt == 0 ? schedule : std::string();
  };

  ShardedExplorerOptions opts =
      ProcessOpts(miner, 0.05, 2, popts.scratch_dir, &popts);
  opts.base.checkpoint_dir = dir + "/ckpt";
  opts.base.checkpoint_every_ms = 0;
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);
  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_GT(stats.retries_total, 0u);
  EXPECT_GT(stats.checkpoints_written, 0u);
  // The retried attempt loaded the dead worker's snapshot — resume
  // provenance crossed the process boundary via the result frame.
  EXPECT_TRUE(stats.resumed_from_checkpoint);
  ExpectNoZombies();
}

INSTANTIATE_TEST_SUITE_P(AllMiners, ShardProcessTest,
                         ::testing::Values(MinerKind::kFpGrowth,
                                           MinerKind::kApriori,
                                           MinerKind::kEclat),
                         [](const auto& info) {
                           return std::string(MinerKindName(info.param));
                         });

TEST(ShardProcessSupervisionTest, StalledHeartbeatIsKilledAndRetried) {
  const Workload w = MakeWorkload();
  const std::string reference =
      MonolithicReference(w, MinerKind::kFpGrowth, 0.05);
  const std::string dir = TempDir("stall");

  worker::ProcessIsolationOptions popts;
  popts.scratch_dir = dir + "/scratch";
  popts.heartbeat_interval_ms = 25;
  popts.heartbeat_timeout_ms = 400;
  // Two stalls at once: the heartbeat thread sleeps far past the
  // deadline AND the mining thread sleeps too, so the worker is fully
  // silent — alive but wedged, exactly what heartbeat supervision
  // exists to catch. The coordinator must SIGKILL it at ~400ms rather
  // than wait out either sleep.
  const std::string schedule =
      "shard.worker.heartbeat@1:delay-10000,shard.unit.mine@1:delay-10000";
  popts.failpoint_schedule = [schedule](size_t shard, size_t attempt) {
    return shard == 0 && attempt == 0 ? schedule : std::string();
  };

  const uint64_t timeouts_before = HeartbeatTimeouts();
  ShardedExplorerOptions opts =
      ProcessOpts(MinerKind::kFpGrowth, 0.05, 2, popts.scratch_dir, &popts);
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);
  EXPECT_GT(explorer.last_run_stats().retries_total, 0u);
  EXPECT_GT(HeartbeatTimeouts(), timeouts_before);
  ExpectNoZombies();
}

TEST(ShardProcessSupervisionTest, ExhaustedShardDegradesUnderDropPolicy) {
  const Workload w = MakeWorkload();
  const size_t kShards = 4;
  const std::vector<ShardRange> plan =
      MakeShardPlan(w.dataset.num_rows, kShards);

  // Monolithic reference over the rows that survive dropping shard 0.
  Rng rebuild(31337);
  const std::vector<int> domains = {3, 4, 2, 3};
  std::vector<std::vector<int>> cells(w.dataset.num_rows,
                                      std::vector<int>(domains.size()));
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t a = 0; a < domains.size(); ++a) {
      cells[r][a] = static_cast<int>(
          w.dataset.at(r, a) - w.dataset.catalog.first_item(
                                   static_cast<uint32_t>(a)));
    }
  }
  Workload survivors;
  survivors.dataset = MakeEncoded(
      std::vector<std::vector<int>>(cells.begin() + plan[0].end,
                                    cells.end()),
      domains);
  survivors.outcomes.assign(w.outcomes.begin() + plan[0].end,
                            w.outcomes.end());
  const std::string reference =
      MonolithicReference(survivors, MinerKind::kFpGrowth, 0.05);

  const std::string dir = TempDir("drop");
  worker::ProcessIsolationOptions popts;
  popts.scratch_dir = dir + "/scratch";
  popts.heartbeat_interval_ms = 25;
  popts.heartbeat_timeout_ms = 30000;
  // Shard 0 dies on every attempt; its retry budget exhausts and the
  // drop policy excises its rows instead of failing the run.
  popts.failpoint_schedule = [](size_t shard, size_t) {
    return shard == 0 ? std::string("shard.unit.mine@1:kill")
                      : std::string();
  };

  ShardedExplorerOptions opts =
      ProcessOpts(MinerKind::kFpGrowth, 0.05, kShards, popts.scratch_dir,
                  &popts);
  opts.retry.max_retries = 1;
  opts.on_shard_failure = ShardFailurePolicy::kDrop;
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(SerializePatternTable(*table), reference);
  EXPECT_LT(explorer.last_run_stats().rows_covered_fraction, 1.0);
  ExpectNoZombies();
}

TEST(ShardProcessSupervisionTest, FailPolicySurfacesTheShardStatus) {
  const Workload w = MakeWorkload();
  const std::string dir = TempDir("fail");
  worker::ProcessIsolationOptions popts;
  popts.scratch_dir = dir + "/scratch";
  popts.heartbeat_interval_ms = 25;
  popts.heartbeat_timeout_ms = 30000;
  popts.failpoint_schedule = [](size_t shard, size_t) {
    return shard == 0 ? std::string("shard.unit.mine@1:kill")
                      : std::string();
  };
  ShardedExplorerOptions opts =
      ProcessOpts(MinerKind::kFpGrowth, 0.05, 2, popts.scratch_dir, &popts);
  opts.retry.max_retries = 1;
  ShardedExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(w.dataset, w.outcomes);
  EXPECT_FALSE(table.ok());
  // Even a failed run reaps everything it spawned.
  ExpectNoZombies();
}

TEST(ShardProcessSupervisionTest, ProcessIsolationRequiresAttemptRunner) {
  ShardedExplorerOptions opts;
  opts.isolation = ShardIsolation::kProcess;
  EXPECT_FALSE(ValidateShardedExplorerOptions(opts).ok());
  opts.attempt_runner = [](const ShardAttemptContext&) {
    return ShardAttemptResult{};
  };
  EXPECT_TRUE(ValidateShardedExplorerOptions(opts).ok());
}

}  // namespace
}  // namespace shard
}  // namespace divexp

// The coordinator re-execs this binary as `<self> shard-worker
// --spec=... --status-fd=3`; the verb must win before gtest sees argv
// (a worker child must never run the test suite recursively).
int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "shard-worker") {
    return divexp::shard::worker::ShardWorkerMain(
        std::vector<std::string>(argv + 2, argv + argc));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
