// SON merge unit tests: shard planning, exact phase-2 recounts, and
// the edge cases that matter for degradation — empty shard tables,
// single-row shards, duplicate contributions with disagreeing tallies,
// and fingerprint-mismatch rejection.
#include "shard/merge.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/test_data.h"

namespace divexp {
namespace shard {
namespace {

using divexp::testing::MakeEncoded;

// Two binary attributes; item ids are a0=v0 -> 0, a0=v1 -> 1,
// a1=v0 -> 2, a1=v1 -> 3.
struct Fixture {
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
};

Fixture MakeFixture() {
  Fixture f;
  f.dataset = MakeEncoded(
      {{0, 0}, {0, 0}, {0, 1}, {1, 0}, {0, 0}, {1, 1}}, {2, 2});
  f.outcomes = divexp::testing::OutcomesFromString("TFTBTF");
  return f;
}

ShardMergeOptions LowSupport() {
  ShardMergeOptions options;
  options.min_support = 0.1;
  return options;
}

MinedPattern Candidate(std::vector<uint32_t> items, uint64_t t = 0,
                       uint64_t ff = 0, uint64_t bot = 0) {
  MinedPattern p;
  p.items = std::move(items);
  p.counts.t = t;
  p.counts.f = ff;
  p.counts.bot = bot;
  return p;
}

const MinedPattern* Find(const ShardMergeResult& result,
                         const Itemset& items) {
  for (const MinedPattern& p : result.patterns) {
    if (p.items == items) return &p;
  }
  return nullptr;
}

TEST(ShardPlanTest, BalancedContiguousSplit) {
  const std::vector<ShardRange> plan = MakeShardPlan(10, 4);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].size(), 3u);
  EXPECT_EQ(plan[1].size(), 3u);
  EXPECT_EQ(plan[2].size(), 2u);
  EXPECT_EQ(plan[3].size(), 2u);
  EXPECT_EQ(plan[0].begin, 0u);
  EXPECT_EQ(plan[3].end, 10u);
  for (size_t i = 1; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].begin, plan[i - 1].end);
  }
}

TEST(ShardPlanTest, MoreShardsThanRowsLeavesEmptyTail) {
  const std::vector<ShardRange> plan = MakeShardPlan(3, 5);
  ASSERT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan[0].size(), 1u);
  EXPECT_EQ(plan[2].size(), 1u);
  EXPECT_EQ(plan[3].size(), 0u);
  EXPECT_EQ(plan[4].size(), 0u);
}

TEST(ShardPlanTest, SingleShardCoversEverything) {
  const std::vector<ShardRange> plan = MakeShardPlan(7, 1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].begin, 0u);
  EXPECT_EQ(plan[0].end, 7u);
}

TEST(ShardMergeTest, EmptyShardTableContributesNothing) {
  const Fixture f = MakeFixture();
  const std::vector<ShardRange> plan = MakeShardPlan(6, 2);
  // One shard mined nothing (empty pattern vector): the merge must
  // still produce the whole-population row with exact totals.
  std::vector<ShardContribution> contributions;
  contributions.push_back(ShardContribution{0, 11, {}});
  auto result = MergeShardContributions(f.dataset, f.outcomes, plan,
                                        {11, 22}, {true, true},
                                        contributions, LowSupport());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->patterns.size(), 1u);  // just the empty itemset
  EXPECT_TRUE(result->patterns[0].items.empty());
  EXPECT_EQ(result->patterns[0].counts.t, 3u);
  EXPECT_EQ(result->patterns[0].counts.f, 2u);
  EXPECT_EQ(result->patterns[0].counts.bot, 1u);
  EXPECT_EQ(result->covered_rows, 6u);
  EXPECT_EQ(result->candidates, 0u);
}

TEST(ShardMergeTest, SingleRowShardRecountsExactly) {
  const Fixture f = MakeFixture();
  // Shard 1 is the single row 5 = (a0=v1, a1=v1, outcome F).
  const std::vector<ShardRange> plan = {{0, 5}, {5, 6}};
  std::vector<ShardContribution> contributions;
  contributions.push_back(
      ShardContribution{1, 22, {Candidate({1}), Candidate({1, 3})}});
  auto result = MergeShardContributions(f.dataset, f.outcomes, plan,
                                        {11, 22}, {true, true},
                                        contributions, LowSupport());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // {1} = a0=v1 matches rows 3 (B) and 5 (F) across the whole dataset;
  // the recount is global even though the candidate came from a
  // one-row shard.
  const MinedPattern* p = Find(*result, {1});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->counts.t, 0u);
  EXPECT_EQ(p->counts.f, 1u);
  EXPECT_EQ(p->counts.bot, 1u);
  // {1,3} needs both {1} and {3} kept; {3} was never a candidate, so
  // the closure pass drops the pair.
  EXPECT_EQ(Find(*result, {1, 3}), nullptr);
}

TEST(ShardMergeTest, DuplicatePatternWithDifferingTalliesIsRecounted) {
  const Fixture f = MakeFixture();
  const std::vector<ShardRange> plan = MakeShardPlan(6, 2);
  // Both shards claim {0} with wildly wrong, mutually disagreeing
  // tallies; phase 2 must ignore every claimed count and recount from
  // the dataset: {0} matches rows 0,1,2,4 -> t=3 f=1 bot=0.
  std::vector<ShardContribution> contributions;
  contributions.push_back(
      ShardContribution{0, 11, {Candidate({0}, 100, 50, 25)}});
  contributions.push_back(
      ShardContribution{1, 22, {Candidate({0}, 1, 2, 3)}});
  auto result = MergeShardContributions(f.dataset, f.outcomes, plan,
                                        {11, 22}, {true, true},
                                        contributions, LowSupport());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->candidates, 1u);  // duplicates collapse
  const MinedPattern* p = Find(*result, {0});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->counts.t, 3u);
  EXPECT_EQ(p->counts.f, 1u);
  EXPECT_EQ(p->counts.bot, 0u);
}

TEST(ShardMergeTest, FingerprintMismatchIsRejected) {
  const Fixture f = MakeFixture();
  const std::vector<ShardRange> plan = MakeShardPlan(6, 2);
  std::vector<ShardContribution> contributions;
  contributions.push_back(
      ShardContribution{0, 999, {Candidate({0})}});  // wrong stamp
  auto result = MergeShardContributions(f.dataset, f.outcomes, plan,
                                        {11, 22}, {true, true},
                                        contributions, LowSupport());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().ToString().find("fingerprint mismatch"),
            std::string::npos);
}

TEST(ShardMergeTest, UnknownShardIsRejected) {
  const Fixture f = MakeFixture();
  const std::vector<ShardRange> plan = MakeShardPlan(6, 2);
  std::vector<ShardContribution> contributions;
  contributions.push_back(ShardContribution{7, 0, {Candidate({0})}});
  auto result = MergeShardContributions(f.dataset, f.outcomes, plan,
                                        {11, 22}, {true, true},
                                        contributions, LowSupport());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardMergeTest, ExcludedShardRowsDoNotEnterTheTallies) {
  const Fixture f = MakeFixture();
  const std::vector<ShardRange> plan = MakeShardPlan(6, 2);  // 3 + 3
  // Drop shard 1 (rows 3..5); candidates may still come from it.
  std::vector<ShardContribution> contributions;
  contributions.push_back(
      ShardContribution{1, 22, {Candidate({0})}});
  auto result = MergeShardContributions(f.dataset, f.outcomes, plan,
                                        {11, 22}, {true, false},
                                        contributions, LowSupport());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->covered_rows, 3u);
  // Totals over rows 0..2 only: T, F, T.
  EXPECT_EQ(result->patterns[0].counts.t, 2u);
  EXPECT_EQ(result->patterns[0].counts.f, 1u);
  EXPECT_EQ(result->patterns[0].counts.bot, 0u);
  // {0} matches rows 0,1,2 within the covered range.
  const MinedPattern* p = Find(*result, {0});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->counts.total(), 3u);
}

TEST(ShardMergeTest, ClosureDropsCandidatesWithMissingSubsets) {
  const Fixture f = MakeFixture();
  const std::vector<ShardRange> plan = MakeShardPlan(6, 1);
  // A stale checkpoint may surface {0,2} without {2}; the closure pass
  // must drop the pair so every kept pattern's subset chain exists.
  std::vector<ShardContribution> contributions;
  contributions.push_back(
      ShardContribution{0, 11, {Candidate({0}), Candidate({0, 2})}});
  auto result =
      MergeShardContributions(f.dataset, f.outcomes, plan, {11}, {true},
                              contributions, LowSupport());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(Find(*result, {0}), nullptr);
  EXPECT_EQ(Find(*result, {0, 2}), nullptr);
  // With the subset present the pair survives.
  contributions[0].patterns.push_back(Candidate({2}));
  result =
      MergeShardContributions(f.dataset, f.outcomes, plan, {11}, {true},
                              contributions, LowSupport());
  ASSERT_TRUE(result.ok());
  const MinedPattern* pair = Find(*result, {0, 2});
  ASSERT_NE(pair, nullptr);
  EXPECT_EQ(pair->counts.t, 2u);   // rows 0, 4
  EXPECT_EQ(pair->counts.f, 1u);   // row 1
  EXPECT_EQ(pair->counts.bot, 0u);
}

TEST(ShardMergeTest, MaxLengthFiltersLongCandidates) {
  const Fixture f = MakeFixture();
  const std::vector<ShardRange> plan = MakeShardPlan(6, 1);
  std::vector<ShardContribution> contributions;
  contributions.push_back(ShardContribution{
      0, 11, {Candidate({0}), Candidate({2}), Candidate({0, 2})}});
  ShardMergeOptions options = LowSupport();
  options.max_length = 1;
  auto result = MergeShardContributions(f.dataset, f.outcomes, plan,
                                        {11}, {true}, contributions,
                                        options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates, 2u);
  EXPECT_EQ(Find(*result, {0, 2}), nullptr);
}

TEST(ShardMergeTest, BelowThresholdCandidatesAreFilteredOut) {
  const Fixture f = MakeFixture();
  const std::vector<ShardRange> plan = MakeShardPlan(6, 1);
  std::vector<ShardContribution> contributions;
  // {1,3} matches only row 5 -> support 1/6; threshold 0.5 needs 3.
  contributions.push_back(
      ShardContribution{0, 11, {Candidate({0}), Candidate({1})}});
  ShardMergeOptions options;
  options.min_support = 0.5;
  auto result = MergeShardContributions(f.dataset, f.outcomes, plan,
                                        {11}, {true}, contributions,
                                        options);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(Find(*result, {0}), nullptr);  // 4 matches >= 3
  EXPECT_EQ(Find(*result, {1}), nullptr);  // 2 matches < 3
}

TEST(ShardMergeTest, RejectsDisagreeingPlanVectors) {
  const Fixture f = MakeFixture();
  auto result = MergeShardContributions(
      f.dataset, f.outcomes, MakeShardPlan(6, 2), {11}, {true, true}, {},
      LowSupport());
  EXPECT_FALSE(result.ok());
  auto result2 = MergeShardContributions(
      f.dataset, f.outcomes, MakeShardPlan(6, 2), {11, 22}, {true}, {},
      LowSupport());
  EXPECT_FALSE(result2.ok());
}

}  // namespace
}  // namespace shard
}  // namespace divexp
