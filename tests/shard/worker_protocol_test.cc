// Wire-protocol coverage for the shard-worker status pipe and worker
// spec: frame round-trips through an incrementally-fed FrameReader,
// corruption/truncation classification (CRC mismatch and oversized
// length prefixes are sticky protocol errors, partial frames are
// "need more bytes"), and the kWorkerSpec snapshot round-trip with a
// byte-flip/truncation fuzz pass — malformed specs must die with a
// Status, never UB.
#include "shard/worker/protocol.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "recovery/atomic_file.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace shard {
namespace worker {
namespace {

using divexp::testing::MakeEncoded;
using divexp::testing::OutcomesFromString;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_worker_protocol_test/" + leaf;
  DIVEXP_CHECK_OK(recovery::EnsureDirectory(dir));
  return dir;
}

Frame MakeResultFrame() {
  Frame frame;
  frame.type = FrameType::kResultReady;
  frame.value = 42;
  frame.fingerprint = 0xDEADBEEFCAFEF00DULL;
  frame.artifact_path = "/tmp/scratch/shard_3_attempt_1.dvt";
  frame.stats.resumed = true;
  frame.stats.checkpoints_written = 7;
  frame.stats.checkpoint_bytes = 4096;
  frame.stats.checkpoint_write_failures = 1;
  frame.stats.checkpoint_error_code = 5;
  frame.stats.checkpoint_error_message = "disk full (write attempt 2)";
  frame.stats.peak_memory_bytes = 1 << 20;
  return frame;
}

void ExpectFramesEqual(const Frame& a, const Frame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.artifact_path, b.artifact_path);
  EXPECT_EQ(a.status_code, b.status_code);
  EXPECT_EQ(a.message, b.message);
  EXPECT_EQ(a.stats.resumed, b.stats.resumed);
  EXPECT_EQ(a.stats.checkpoints_written, b.stats.checkpoints_written);
  EXPECT_EQ(a.stats.checkpoint_bytes, b.stats.checkpoint_bytes);
  EXPECT_EQ(a.stats.checkpoint_write_failures,
            b.stats.checkpoint_write_failures);
  EXPECT_EQ(a.stats.checkpoint_error_code, b.stats.checkpoint_error_code);
  EXPECT_EQ(a.stats.checkpoint_error_message,
            b.stats.checkpoint_error_message);
  EXPECT_EQ(a.stats.peak_memory_bytes, b.stats.peak_memory_bytes);
}

std::vector<Frame> AllFrameKinds() {
  std::vector<Frame> frames;
  Frame heartbeat;
  heartbeat.type = FrameType::kHeartbeat;
  heartbeat.value = 17;
  frames.push_back(heartbeat);
  Frame progress;
  progress.type = FrameType::kProgress;
  progress.value = 12345;
  frames.push_back(progress);
  Frame checkpoint;
  checkpoint.type = FrameType::kCheckpointWritten;
  checkpoint.value = 3;
  frames.push_back(checkpoint);
  frames.push_back(MakeResultFrame());
  Frame fatal;
  fatal.type = FrameType::kFatalStatus;
  fatal.status_code = 13;
  fatal.message = "miner exploded: fp injected at ordinal 4";
  fatal.stats.checkpoints_written = 2;
  frames.push_back(fatal);
  return frames;
}

TEST(FrameReaderTest, EveryFrameKindRoundTripsThroughOddSizedChunks) {
  std::string wire;
  const std::vector<Frame> sent = AllFrameKinds();
  for (const Frame& frame : sent) wire += EncodeFrame(frame);

  // Feed in 3-byte chunks so every frame boundary lands mid-chunk at
  // least once; the reader must reassemble regardless of framing.
  FrameReader reader;
  std::vector<Frame> got;
  for (size_t off = 0; off < wire.size(); off += 3) {
    const size_t len = std::min<size_t>(3, wire.size() - off);
    reader.Feed(wire.data() + off, len);
    for (;;) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next.value().has_value()) break;
      got.push_back(*next.value());
    }
  }
  ASSERT_EQ(got.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    SCOPED_TRACE("frame " + std::to_string(i));
    ExpectFramesEqual(got[i], sent[i]);
  }
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameReaderTest, BackToBackFramesInOneFeedAllDecode) {
  std::string wire;
  for (int i = 0; i < 10; ++i) {
    Frame heartbeat;
    heartbeat.type = FrameType::kHeartbeat;
    heartbeat.value = static_cast<uint64_t>(i);
    wire += EncodeFrame(heartbeat);
  }
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  for (int i = 0; i < 10; ++i) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next.value().has_value());
    EXPECT_EQ(next.value()->value, static_cast<uint64_t>(i));
  }
  auto done = reader.Next();
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done.value().has_value());
}

TEST(FrameReaderTest, TruncatedFrameIsNeedMoreBytesNotAnError) {
  const std::string wire = EncodeFrame(MakeResultFrame());
  FrameReader reader;
  reader.Feed(wire.data(), wire.size() - 1);
  auto next = reader.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value().has_value());
  // A worker SIGKILLed mid-write leaves exactly this state: buffered
  // bytes but no complete frame. pending_bytes() is how the
  // coordinator tells "died between frames" from "died mid-frame".
  EXPECT_EQ(reader.pending_bytes(), wire.size() - 1);
  reader.Feed(wire.data() + wire.size() - 1, 1);
  auto completed = reader.Next();
  ASSERT_TRUE(completed.ok());
  ASSERT_TRUE(completed.value().has_value());
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameReaderTest, CrcMismatchIsAStickyProtocolError) {
  std::string wire = EncodeFrame(MakeResultFrame());
  wire[wire.size() - 1] ^= 0x01;  // corrupt the payload, not the prefix
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  // Sticky: a corrupted stream never yields frames again, even if
  // well-formed bytes arrive later.
  reader.Feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameReaderTest, OversizedLengthPrefixIsRejectedImmediately) {
  std::string wire = EncodeFrame(MakeResultFrame());
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(wire.data(), &huge, sizeof(huge));
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  // The reader must classify from the 8-byte prefix alone — waiting
  // for a petabyte of payload that will never come is a hang.
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameReaderTest, ByteFlippedFramesNeverCrashTheReader) {
  const std::string wire = EncodeFrame(MakeResultFrame());
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string mutant = wire;
    mutant[i] ^= 0x5A;
    FrameReader reader;
    reader.Feed(mutant.data(), mutant.size());
    // Every mutant must resolve to an error, a (mis)parsed frame, or
    // "need more bytes" — never UB. A flipped byte that survives CRC
    // is possible only in the prefix itself, where the length check
    // still bounds the damage.
    for (int round = 0; round < 2; ++round) {
      auto next = reader.Next();
      if (!next.ok() || !next.value().has_value()) break;
    }
  }
}

WorkerSpec MakeSpec() {
  WorkerSpec spec;
  spec.shard = 3;
  spec.attempt = 2;
  spec.expected_fingerprint = 0x1122334455667788ULL;
  spec.timeout_ms = 2500;
  spec.heartbeat_interval_ms = 50;
  spec.result_path = "/tmp/scratch/result.dvt";
  spec.failpoints = "shard.unit.mine@2:return-error";
  spec.base.min_support = 0.05;
  spec.base.miner = MinerKind::kEclat;
  spec.base.checkpoint_dir = "/tmp/scratch/ckpt";
  spec.base.checkpoint_every_ms = 10;
  spec.base.resume = true;
  spec.data = MakeEncoded({{0, 1}, {1, 0}, {2, 1}}, {3, 2});
  spec.outcomes = OutcomesFromString("TFB");
  return spec;
}

TEST(WorkerSpecTest, SerializeDeserializeRoundTripsEveryField) {
  const WorkerSpec spec = MakeSpec();
  const std::string payload = SerializeWorkerSpec(spec);
  auto parsed = DeserializeWorkerSpec(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const WorkerSpec& got = parsed.value();
  EXPECT_EQ(got.shard, spec.shard);
  EXPECT_EQ(got.attempt, spec.attempt);
  EXPECT_EQ(got.expected_fingerprint, spec.expected_fingerprint);
  EXPECT_EQ(got.timeout_ms, spec.timeout_ms);
  EXPECT_EQ(got.heartbeat_interval_ms, spec.heartbeat_interval_ms);
  EXPECT_EQ(got.result_path, spec.result_path);
  EXPECT_EQ(got.failpoints, spec.failpoints);
  EXPECT_EQ(got.base.min_support, spec.base.min_support);
  EXPECT_EQ(got.base.miner, spec.base.miner);
  EXPECT_EQ(got.base.checkpoint_dir, spec.base.checkpoint_dir);
  EXPECT_EQ(got.base.checkpoint_every_ms, spec.base.checkpoint_every_ms);
  EXPECT_EQ(got.base.resume, spec.base.resume);
  EXPECT_EQ(got.data.num_rows, spec.data.num_rows);
  EXPECT_EQ(got.data.num_attributes, spec.data.num_attributes);
  EXPECT_EQ(got.data.cells, spec.data.cells);
  EXPECT_EQ(got.data.catalog.num_items(), spec.data.catalog.num_items());
  EXPECT_EQ(got.data.catalog.ItemName(0), spec.data.catalog.ItemName(0));
  EXPECT_EQ(got.outcomes, spec.outcomes);
  // Canonical-bytes check: re-serializing the parse reproduces the
  // payload exactly, so nothing was dropped or defaulted on the way.
  EXPECT_EQ(SerializeWorkerSpec(got), payload);
}

TEST(WorkerSpecTest, FileRoundTripThroughTheSnapshotEnvelope) {
  const WorkerSpec spec = MakeSpec();
  const std::string path = TempDir("roundtrip") + "/attempt.spec";
  ASSERT_TRUE(WriteWorkerSpec(path, spec).ok());
  auto loaded = ReadWorkerSpec(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializeWorkerSpec(loaded.value()), SerializeWorkerSpec(spec));
}

TEST(WorkerSpecTest, CorruptSpecFileFailsTheEnvelopeCheck) {
  const WorkerSpec spec = MakeSpec();
  const std::string path = TempDir("corrupt") + "/attempt.spec";
  ASSERT_TRUE(WriteWorkerSpec(path, spec).ok());
  auto bytes = recovery::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  Rng rng(2024);
  for (int trial = 0; trial < 32; ++trial) {
    std::string mutant = bytes.value();
    mutant[rng.Below(mutant.size())] ^= static_cast<char>(1 + rng.Below(255));
    if (mutant == bytes.value()) continue;
    DIVEXP_CHECK_OK(recovery::WriteFileAtomic(path, mutant));
    EXPECT_FALSE(ReadWorkerSpec(path).ok()) << "trial " << trial;
  }
}

TEST(WorkerSpecTest, TruncatedPayloadsFailCleanly) {
  const std::string payload = SerializeWorkerSpec(MakeSpec());
  for (size_t len = 0; len < payload.size(); ++len) {
    auto parsed = DeserializeWorkerSpec(payload.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(WorkerSpecTest, ByteFlippedPayloadsNeverCrashTheDecoder) {
  const std::string payload = SerializeWorkerSpec(MakeSpec());
  Rng rng(7777);
  for (int trial = 0; trial < 512; ++trial) {
    std::string mutant = payload;
    const size_t flips = 1 + rng.Below(4);
    for (size_t f = 0; f < flips; ++f) {
      mutant[rng.Below(mutant.size())] ^=
          static_cast<char>(1 + rng.Below(255));
    }
    auto parsed = DeserializeWorkerSpec(mutant);
    if (parsed.ok()) {
      // A mutant that still parses (flip in a string byte, say) must
      // at least be structurally sound enough to re-serialize.
      const std::string reencoded = SerializeWorkerSpec(parsed.value());
      EXPECT_FALSE(reencoded.empty());
    }
  }
}

}  // namespace
}  // namespace worker
}  // namespace shard
}  // namespace divexp
