// Line-protocol tests for QueryService / ServeLoop: JSON envelopes,
// request canonicalization (equivalent spellings share one cache
// entry), error paths, and the stdin/stdout REPL.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/table_snapshot.h"
#include "obs/json.h"
#include "recovery/atomic_file.h"
#include "serve/artifact.h"
#include "testing/test_explore.h"
#include "util/random.h"

namespace divexp {
namespace serve {
namespace {

using divexp::testing::ExploreForTest;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_server_test/" + leaf;
  DIVEXP_CHECK_OK(recovery::EnsureDirectory(dir));
  return dir;
}

PatternTable MakeRandomTable(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells(160, std::vector<int>(3));
  std::string outcomes;
  for (size_t r = 0; r < 160; ++r) {
    for (size_t a = 0; a < 3; ++a) {
      cells[r][a] = static_cast<int>(rng.Below(2));
    }
    const double u = rng.Uniform();
    outcomes += (u < 0.35 ? 'T' : u < 0.8 ? 'F' : 'B');
  }
  return ExploreForTest(cells, {2, 2, 2}, outcomes, 0.02);
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const PatternTable table = MakeRandomTable(1);
    const std::string path = TempDir("table") + "/table.dvt";
    DIVEXP_CHECK_OK(WritePatternTableArtifact(path, table));
    auto opened = OpenServingTable(path);
    DIVEXP_CHECK_OK(opened.status());
    table_ = std::make_unique<ServingTable>(std::move(opened).value());
  }

  QueryService MakeService(QueryServiceOptions options = {}) {
    return QueryService(table_.get(), options);
  }

  /// Asserts the response parses as JSON and returns it.
  obs::JsonValue Parse(const std::string& response) {
    auto value = obs::ParseJson(response);
    DIVEXP_CHECK_OK(value.status());
    return std::move(value).value();
  }

  bool Ok(const obs::JsonValue& v) {
    const obs::JsonValue* ok = v.Find("ok");
    return ok != nullptr && ok->kind == obs::JsonValue::Kind::kBool &&
           ok->boolean;
  }

  std::unique_ptr<ServingTable> table_;
};

TEST_F(ServerTest, TopKReturnsRowsRankedByDivergence) {
  QueryService service = MakeService();
  const obs::JsonValue v = Parse(service.HandleLine("topk k=3"));
  ASSERT_TRUE(Ok(v));
  const obs::JsonValue* rows = v.Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->array.size(), 3u);
  double prev = 1e300;
  for (const obs::JsonValue& row : rows->array) {
    const obs::JsonValue* div = row.Find("divergence");
    ASSERT_NE(div, nullptr);
    EXPECT_LE(div->number, prev);
    prev = div->number;
  }
}

TEST_F(ServerTest, EquivalentSpellingsShareOneCacheEntry) {
  QueryService service = MakeService();
  // Same query, four spellings: defaults elided vs explicit, argument
  // order shuffled, whitespace noise.
  const std::string r1 = service.HandleLine("topk k=10");
  const std::string r2 = service.HandleLine("topk  k=10   order=desc");
  const std::string r3 =
      service.HandleLine("topk order=desc key=divergence k=10");
  const std::string r4 =
      service.HandleLine("topk min_len=1 max_len=0 min_support=0 k=10");
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r3);
  EXPECT_EQ(r1, r4);
  const ResultCache::Stats stats = service.cache().stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
}

TEST_F(ServerTest, CacheDisabledStillAnswersIdentically) {
  QueryServiceOptions options;
  options.cache_enabled = false;
  QueryService cached = MakeService();
  QueryService uncached = MakeService(options);
  EXPECT_EQ(cached.HandleLine("topk k=5"), uncached.HandleLine("topk k=5"));
  EXPECT_EQ(uncached.cache().stats().misses, 0u);
}

TEST_F(ServerTest, ShapleyAndBrowseResolveItemNames) {
  QueryService service = MakeService();
  // Find a 2-item pattern via the engine, then query it by name.
  const TableView& view = table_->view();
  std::string spec;
  for (size_t i = 0; i < view.size(); ++i) {
    const ItemSpan items = view.row_items(i);
    if (items.size() != 2) continue;
    for (size_t j = 0; j < items.size(); ++j) {
      if (j) spec += ',';
      spec += view.catalog->ItemName(items[j]);
    }
    break;
  }
  ASSERT_FALSE(spec.empty());
  const obs::JsonValue shapley =
      Parse(service.HandleLine("shapley items=" + spec));
  ASSERT_TRUE(Ok(shapley)) << service.HandleLine("shapley items=" + spec);
  ASSERT_TRUE(shapley.Find("contributions")->is_array());
  EXPECT_EQ(shapley.Find("contributions")->array.size(), 2u);

  const obs::JsonValue browse =
      Parse(service.HandleLine("browse items=" + spec));
  ASSERT_TRUE(Ok(browse));
  // 2-item target: lattice has 4 nodes (∅, two singletons, target).
  EXPECT_EQ(browse.Find("nodes")->array.size(), 4u);
  EXPECT_EQ(browse.Find("edges")->array.size(), 4u);
}

TEST_F(ServerTest, StatsReportsBackingAndCacheCounters) {
  QueryService service = MakeService();
  service.HandleLine("topk k=1");
  service.HandleLine("topk k=1");
  const obs::JsonValue v = Parse(service.HandleLine("stats"));
  ASSERT_TRUE(Ok(v));
  EXPECT_EQ(v.Find("backing")->string, "mmap");
  const obs::JsonValue* cache = v.Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->Find("hits")->number, 1.0);
  EXPECT_EQ(cache->Find("misses")->number, 1.0);
}

TEST_F(ServerTest, ErrorEnvelopesCarryCodeAndMessage) {
  QueryService service = MakeService();
  const struct {
    const char* line;
    const char* code;
  } kCases[] = {
      {"", "InvalidArgument"},
      {"frobnicate", "InvalidArgument"},
      {"topk k=banana", "InvalidArgument"},
      {"topk bogus_arg=1", "InvalidArgument"},
      {"topk k", "InvalidArgument"},
      {"topk key=upside_down", "InvalidArgument"},
      {"shapley", "InvalidArgument"},
      {"shapley items=no_such_attr=1", "NotFound"},
      {"stats k=1", "InvalidArgument"},
  };
  for (const auto& c : kCases) {
    const obs::JsonValue v = Parse(service.HandleLine(c.line));
    EXPECT_FALSE(Ok(v)) << c.line;
    const obs::JsonValue* code = v.Find("code");
    ASSERT_NE(code, nullptr) << c.line;
    EXPECT_EQ(code->string, c.code) << c.line;
    EXPECT_NE(v.Find("error"), nullptr) << c.line;
  }
}

TEST_F(ServerTest, ErrorsAreNotCached) {
  QueryService service = MakeService();
  service.HandleLine("shapley items=no_such_attr=1");
  EXPECT_EQ(service.cache().stats().entries, 0u);
}

TEST_F(ServerTest, ExecuteTimeErrorsAreNotCached) {
  QueryService service = MakeService();
  // Two values of the same attribute are mutually exclusive, so the
  // pair can never be a frequent itemset: the request parses cleanly
  // and fails inside Execute with NotFound. Unlike a parse error, this
  // path reaches the cache-insert decision — a transient error cached
  // here would be served as a stale hit forever.
  const ItemCatalog& catalog = *table_->view().catalog;
  const uint32_t first = catalog.first_item(0);
  const std::string spec =
      catalog.ItemName(first) + "," + catalog.ItemName(first + 1);
  const std::string r1 = service.HandleLine("browse items=" + spec);
  const std::string r2 = service.HandleLine("browse items=" + spec);
  EXPECT_NE(r1.find("\"NotFound\""), std::string::npos) << r1;
  EXPECT_EQ(r1, r2);
  const ResultCache::Stats stats = service.cache().stats();
  EXPECT_EQ(stats.entries, 0u);  // errors never enter the cache
  EXPECT_EQ(stats.hits, 0u);     // ... so the retry re-executes
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(ServerTest, ShapleyRejectsOversizedItemsets) {
  QueryService service = MakeService();
  // 70 items would shift 1ULL past 63 in the submask enumeration; the
  // engine must reject the request before touching the table.
  std::vector<uint32_t> ids(70);
  for (uint32_t i = 0; i < 70; ++i) ids[i] = i;
  const auto result =
      service.engine().Shapley(MakeItemset(std::move(ids)), nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("at most"), std::string::npos);
}

TEST_F(ServerTest, CancelledGuardBecomesCleanError) {
  QueryServiceOptions options;
  options.limits.deadline_ms = 1;
  QueryService service = MakeService(options);
  // A 1ms deadline may or may not trip on a small table — both outcomes
  // must be a well-formed envelope, never a crash or a hang.
  const obs::JsonValue v = Parse(service.HandleLine("corrective"));
  if (!Ok(v)) {
    EXPECT_EQ(v.Find("code")->string, "DeadlineExceeded");
  }
}

TEST_F(ServerTest, ServeLoopAnswersEachLineAndStopsOnQuit) {
  QueryService service = MakeService();
  std::istringstream in("topk k=1\n\nstats\nquit\ntopk k=2\n");
  std::ostringstream out;
  ServeLoop(service, in, out);
  std::vector<std::string> lines;
  std::istringstream reader(out.str());
  for (std::string line; std::getline(reader, line);) {
    lines.push_back(line);
  }
  // topk, stats, quit — the post-quit request is never served; the
  // blank line is skipped without a response.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(Ok(Parse(lines[0])));
  EXPECT_TRUE(Ok(Parse(lines[1])));
  EXPECT_NE(lines[2].find("\"quit\":true"), std::string::npos);
}

TEST_F(ServerTest, EagerBackingServesSnapshots) {
  const PatternTable table = MakeRandomTable(1);
  const std::string path = TempDir("snap") + "/table.snap";
  DIVEXP_CHECK_OK(SavePatternTable(path, table));
  auto opened = OpenServingTable(path);
  ASSERT_TRUE(opened.ok());
  ServingTable snapshot_table = std::move(opened).value();
  QueryService service(&snapshot_table);
  const obs::JsonValue v = Parse(service.HandleLine("stats"));
  ASSERT_TRUE(Ok(v));
  EXPECT_EQ(v.Find("backing")->string, "eager");

  // Same fingerprint as the artifact backing: cache keys are portable
  // across backings of the same logical table.
  QueryService artifact_service = MakeService();
  const obs::JsonValue a = Parse(artifact_service.HandleLine("stats"));
  EXPECT_EQ(v.Find("fingerprint")->string, a.Find("fingerprint")->string);
}

}  // namespace
}  // namespace serve
}  // namespace divexp
