#include "serve/cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace divexp {
namespace serve {
namespace {

ResultCacheOptions SmallCache(size_t capacity, size_t shards = 1) {
  ResultCacheOptions options;
  options.capacity_bytes = capacity;
  options.shards = shards;
  return options;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(SmallCache(1 << 20));
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", "value-a");
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "value-a");
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, PutReplacesExistingValue) {
  ResultCache cache(SmallCache(1 << 20));
  cache.Put("k", "old");
  cache.Put("k", "new");
  EXPECT_EQ(cache.Get("k"), "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  // Each entry costs key(2) + value(100) + 64 overhead = 166 bytes;
  // capacity fits exactly two.
  ResultCache cache(SmallCache(340));
  const std::string big(100, 'x');
  cache.Put("k1", big);
  cache.Put("k2", big);
  ASSERT_TRUE(cache.Get("k1").has_value());  // k2 is now LRU
  cache.Put("k3", big);
  EXPECT_TRUE(cache.Get("k1").has_value());
  EXPECT_FALSE(cache.Get("k2").has_value());
  EXPECT_TRUE(cache.Get("k3").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, OversizedValuesAreNotCached) {
  ResultCache cache(SmallCache(128));
  cache.Put("k", std::string(1024, 'x'));
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ClearDropsEntriesButKeepsCounters) {
  ResultCache cache(SmallCache(1 << 20));
  cache.Put("a", "1");
  ASSERT_TRUE(cache.Get("a").has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Get("a").has_value());
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCacheTest, ShardedBytesStayWithinTotalCapacity) {
  ResultCache cache(SmallCache(4096, /*shards=*/4));
  for (int i = 0; i < 200; ++i) {
    cache.Put("key-" + std::to_string(i), std::string(64, 'v'));
  }
  EXPECT_LE(cache.stats().bytes, 4096u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ResultCacheTest, ConcurrentMixedAccessIsConsistent) {
  ResultCache cache(SmallCache(1 << 16, /*shards=*/8));
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 64);
        if (i % 3 == 0) {
          cache.Put(key, "value-" + key);
        } else if (auto hit = cache.Get(key)) {
          // A hit must always carry the value written for that key.
          ASSERT_EQ(*hit, "value-" + key);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const ResultCache::Stats stats = cache.stats();
  // Every Get (i % 3 != 0) counts as exactly one hit or miss.
  const uint64_t gets_per_thread = kOps - (kOps + 2) / 3;
  EXPECT_EQ(stats.hits + stats.misses, kThreads * gets_per_thread);
}

}  // namespace
}  // namespace serve
}  // namespace divexp
