// Artifact format tests: round-trip fidelity, degenerate tables, and
// the robustness suite — truncation and byte-flip fuzzing over every
// section must produce a clean Status, never UB (CI reruns this binary
// under ASan+UBSan).
#include "serve/artifact.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/table_snapshot.h"
#include "recovery/atomic_file.h"
#include "serve/server.h"
#include "testing/test_explore.h"
#include "util/random.h"

namespace divexp {
namespace serve {
namespace {

using divexp::testing::ExploreForTest;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_artifact_test/" + leaf;
  DIVEXP_CHECK_OK(recovery::EnsureDirectory(dir));
  return dir;
}

PatternTable MakeRandomTable(uint64_t seed, size_t rows = 150,
                             size_t attrs = 3, int domain = 2,
                             double support = 0.01) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells(rows, std::vector<int>(attrs));
  std::string outcomes;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < attrs; ++a) {
      cells[r][a] = static_cast<int>(rng.Below(domain));
    }
    const double u = rng.Uniform();
    outcomes += (u < 0.35 ? 'T' : u < 0.8 ? 'F' : 'B');
  }
  return ExploreForTest(cells, std::vector<int>(attrs, domain), outcomes,
                        support);
}

std::string WriteArtifactBytes(const PatternTable& table,
                               const std::string& leaf) {
  const std::string path = TempDir(leaf) + "/table.dvt";
  DIVEXP_CHECK_OK(WritePatternTableArtifact(path, table));
  auto bytes = recovery::ReadFileToString(path);
  DIVEXP_CHECK_OK(bytes.status());
  return std::move(bytes).value();
}

void ExpectViewMatchesTable(const TableView& view,
                            const PatternTable& table) {
  ASSERT_EQ(view.size(), table.size());
  EXPECT_EQ(view.num_dataset_rows, table.num_dataset_rows());
  EXPECT_EQ(view.global_rate, table.global_rate());
  EXPECT_EQ(view.global_mean, table.global_mean());
  EXPECT_EQ(view.global_variance, table.global_variance());
  for (size_t i = 0; i < table.size(); ++i) {
    const PatternRow& row = table.row(i);
    const ItemSpan items = view.row_items(i);
    ASSERT_EQ(items.size(), row.items.size()) << "row " << i;
    EXPECT_TRUE(std::equal(items.begin(), items.end(),
                           row.items.begin()))
        << "row " << i;
    EXPECT_EQ(view.tally_t(i), row.counts.t);
    EXPECT_EQ(view.tally_f(i), row.counts.f);
    EXPECT_EQ(view.tally_bot(i), row.counts.bot);
    EXPECT_EQ(view.support(i), row.support);
    EXPECT_EQ(view.rate(i), row.rate);
    EXPECT_EQ(view.divergence(i), row.divergence);
    EXPECT_EQ(view.t(i), row.t);
    const std::span<const uint32_t> links = view.row_links(i);
    const std::span<const uint32_t> expected = table.SubsetLinks(i);
    ASSERT_EQ(links.size(), expected.size()) << "row " << i;
    EXPECT_TRUE(std::equal(links.begin(), links.end(), expected.begin()))
        << "row " << i;
    // The catalog survived: item names resolve identically.
    for (const uint32_t item : row.items) {
      EXPECT_EQ(view.catalog->ItemName(item), table.ItemsetName({item}));
    }
  }
}

TEST(ArtifactTest, RoundTripPreservesEveryColumn) {
  const PatternTable table = MakeRandomTable(1);
  const std::string path = TempDir("roundtrip") + "/table.dvt";
  uint64_t bytes = 0;
  ASSERT_TRUE(WritePatternTableArtifact(path, table, &bytes).ok());
  EXPECT_GT(bytes, kArtifactHeaderSize);

  auto artifact = PatternTableArtifact::Open(path);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  ExpectViewMatchesTable((*artifact)->view(), table);
  EXPECT_EQ((*artifact)->fingerprint(), TableFingerprint(table));
  EXPECT_TRUE((*artifact)->ValidateFully().ok());

  const ArtifactInfo& info = (*artifact)->info();
  EXPECT_EQ(info.version, kArtifactVersion);
  EXPECT_EQ(info.num_rows, table.size());
  ASSERT_EQ(info.sections.size(), kArtifactSectionCount);
  for (const ArtifactSectionInfo& s : info.sections) {
    EXPECT_EQ(s.offset % kArtifactAlignment, 0u);
  }
}

TEST(ArtifactTest, FingerprintAgreesBetweenTableAndBothBackings) {
  const PatternTable table = MakeRandomTable(2);
  const uint64_t expected = TableFingerprint(table);

  auto bytes = WriteArtifactBytes(table, "fingerprint");
  auto artifact = PatternTableArtifact::FromBuffer(bytes);
  ASSERT_TRUE(artifact.ok());
  EXPECT_EQ(TableFingerprint((*artifact)->view()), expected);

  auto eager = EagerTableBacking::FromTable(table);
  ASSERT_TRUE(eager.ok());
  EXPECT_EQ(TableFingerprint((*eager)->view()), expected);
  EXPECT_EQ((*eager)->view().fingerprint, expected);
}

TEST(ArtifactTest, FingerprintDistinguishesTables) {
  EXPECT_NE(TableFingerprint(MakeRandomTable(3)),
            TableFingerprint(MakeRandomTable(4)));
}

TEST(ArtifactTest, EmptyTableOnlyEmptyItemsetRoundTrips) {
  // min_support 0.99 over an even 50/50 attribute: nothing but the
  // empty itemset survives.
  std::vector<std::vector<int>> cells;
  std::string outcomes;
  for (int i = 0; i < 100; ++i) {
    cells.push_back({i % 2});
    outcomes += (i % 3 == 0 ? 'T' : 'F');
  }
  const PatternTable table = ExploreForTest(cells, {2}, outcomes, 0.99);
  ASSERT_EQ(table.size(), 1u);

  auto bytes = WriteArtifactBytes(table, "empty");
  auto artifact = PatternTableArtifact::FromBuffer(
      bytes, ArtifactValidation::kFull);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  ExpectViewMatchesTable((*artifact)->view(), table);
  EXPECT_FALSE((*artifact)->view().FindRow(Itemset{0}).has_value());
}

TEST(ArtifactTest, SinglePatternTableRoundTrips) {
  // A constant attribute: exactly one frequent item.
  std::vector<std::vector<int>> cells(80, std::vector<int>{0});
  std::string outcomes(80, 'T');
  for (size_t i = 0; i < 40; ++i) outcomes[i] = 'F';
  const PatternTable table = ExploreForTest(cells, {1}, outcomes, 0.5);
  ASSERT_EQ(table.size(), 2u);

  auto bytes = WriteArtifactBytes(table, "single");
  auto artifact = PatternTableArtifact::FromBuffer(
      bytes, ArtifactValidation::kFull);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  ExpectViewMatchesTable((*artifact)->view(), table);
  EXPECT_EQ((*artifact)->view().FindRow(Itemset{0}), 1u);
}

TEST(ArtifactTest, EveryTruncationFailsCleanly) {
  const std::string bytes = WriteArtifactBytes(MakeRandomTable(5),
                                               "truncate");
  // Every short prefix must yield a Status, not UB. Dense coverage over
  // the header + section table, strided through the payload.
  for (size_t len = 0; len < bytes.size(); len = len < 512 ? len + 1 : len + 97) {
    auto artifact = PatternTableArtifact::FromBuffer(
        bytes.substr(0, len), ArtifactValidation::kFull);
    EXPECT_FALSE(artifact.ok()) << "prefix length " << len;
  }
  auto full = PatternTableArtifact::FromBuffer(bytes,
                                               ArtifactValidation::kFull);
  EXPECT_TRUE(full.ok()) << full.status().ToString();
}

/// First item of attribute 0 as an "attr=value" spec the line protocol
/// accepts — the catalog section is intact in every corruption case
/// below, so name resolution itself is trustworthy.
std::string FirstItemSpec(const ItemCatalog& catalog) {
  return catalog.attribute_name(0) + "=" + catalog.item(0).value;
}

/// Serves a fixed query mix over a header-tier-attached artifact. The
/// explicit assertions are deliberately weak (every response is a
/// well-formed envelope); the real teeth are the ASan/UBSan reruns in
/// CI — no request may read out of range, whatever the payload holds.
void ServeMixedQueries(std::unique_ptr<PatternTableArtifact> artifact,
                       const std::string& item_spec) {
  ServingTable table;
  table.artifact = std::move(artifact);
  QueryService service(&table);
  for (const std::string& line :
       {std::string("topk k=5"),
        std::string("topk k=5 key=support order=asc"),
        std::string("corrective k=5"), std::string("stats"),
        "browse items=" + item_spec, "shapley items=" + item_spec}) {
    const std::string response = service.HandleLine(line);
    EXPECT_NE(response.find("\"ok\":"), std::string::npos) << line;
  }
}

TEST(ArtifactTest, ByteFlipsInHeaderAndSectionTableAreCaughtOnOpen) {
  const std::string bytes = WriteArtifactBytes(MakeRandomTable(6),
                                               "flip_header");
  const size_t envelope =
      kArtifactHeaderSize + kArtifactSectionCount * kArtifactSectionEntrySize;
  for (size_t pos = 0; pos < envelope; ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] ^= 0x40;
    auto artifact = PatternTableArtifact::FromBuffer(corrupt);
    EXPECT_FALSE(artifact.ok()) << "flipped envelope byte " << pos;
  }
}

TEST(ArtifactTest, ByteFlipsInEverySectionAreCaughtByFullValidation) {
  const PatternTable table = MakeRandomTable(7);
  const std::string bytes = WriteArtifactBytes(table, "flip_section");
  auto clean = PatternTableArtifact::FromBuffer(bytes);
  ASSERT_TRUE(clean.ok());
  for (const ArtifactSectionInfo& section : (*clean)->info().sections) {
    if (section.size == 0) continue;
    // Flip a few payload bytes per section (padding between sections is
    // not CRC-covered, so stay inside [offset, offset + size)).
    for (const uint64_t rel :
         {uint64_t{0}, section.size / 2, section.size - 1}) {
      std::string corrupt = bytes;
      corrupt[section.offset + rel] ^= 0x01;
      auto artifact = PatternTableArtifact::FromBuffer(
          corrupt, ArtifactValidation::kFull);
      EXPECT_FALSE(artifact.ok())
          << ArtifactSectionName(section.id) << " byte " << rel;
      // A header-tier open may accept the flip (payload CRCs are
      // deferred), but ValidateFully must then reject it — and serving
      // queries through the corrupted view must stay clean (the
      // ASan/UBSan CI rerun turns any out-of-range read into a failure).
      auto lazy = PatternTableArtifact::FromBuffer(corrupt);
      if (lazy.ok()) {
        EXPECT_FALSE((*lazy)->ValidateFully().ok())
            << ArtifactSectionName(section.id) << " byte " << rel;
        if (section.id != ArtifactSection::kCatalog) {
          const std::string spec =
              FirstItemSpec(*(*lazy)->view().catalog);
          ServeMixedQueries(std::move(*lazy), spec);
        }
      }
    }
  }
}

TEST(ArtifactTest, HeaderTierCorruptInteriorOffsetsServeCleanErrors) {
  const PatternTable table = MakeRandomTable(12);
  const std::string bytes = WriteArtifactBytes(table, "corrupt_offsets");
  auto clean = PatternTableArtifact::FromBuffer(bytes);
  ASSERT_TRUE(clean.ok());
  const ArtifactSectionInfo& ioff = (*clean)->info().sections[1];
  ASSERT_EQ(ioff.id, ArtifactSection::kItemOffsets);

  // The review scenario: item_offsets = [0, huge, ..., total_items].
  // Interior entries are not validated at the header tier, so the open
  // succeeds — but every query touching row 0 must answer a clean
  // corruption error, not subspan out of range.
  std::string corrupt = bytes;
  const uint64_t huge = 0x7fffffffffff0000ull;
  std::memcpy(corrupt.data() + ioff.offset + 8, &huge, sizeof(huge));
  auto artifact = PatternTableArtifact::FromBuffer(corrupt);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_FALSE((*artifact)->ValidateFully().ok());

  ServingTable serving;
  serving.artifact = std::move(*artifact);
  QueryService service(&serving);
  for (const char* line : {"topk k=5", "corrective k=5"}) {
    const std::string response = service.HandleLine(line);
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << line;
    EXPECT_NE(response.find("corruption"), std::string::npos) << line;
  }
  // The rest of the mix must stay well-formed (ok or error, no UB).
  auto again = PatternTableArtifact::FromBuffer(corrupt);
  ASSERT_TRUE(again.ok());
  const std::string spec = FirstItemSpec(*(*again)->view().catalog);
  ServeMixedQueries(std::move(*again), spec);
}

TEST(ArtifactTest, HeaderTierCorruptLinkValuesServeCleanErrors) {
  const PatternTable table = MakeRandomTable(13);
  const std::string bytes = WriteArtifactBytes(table, "corrupt_links");
  auto clean = PatternTableArtifact::FromBuffer(bytes);
  ASSERT_TRUE(clean.ok());
  const ArtifactSectionInfo& links = (*clean)->info().sections[4];
  ASSERT_EQ(links.id, ArtifactSection::kSubsetLinks);
  ASSERT_GT(links.size, 0u);

  // Row 1's first subset link points far past the last row (but is not
  // kNoLink): Corrective indexes stats through link values, so it must
  // detect the corruption instead of reading out of range.
  std::string corrupt = bytes;
  const uint32_t bogus =
      static_cast<uint32_t>((*clean)->view().size()) + 1000;
  std::memcpy(corrupt.data() + links.offset, &bogus, sizeof(bogus));
  auto artifact = PatternTableArtifact::FromBuffer(corrupt);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_FALSE((*artifact)->ValidateFully().ok());

  ServingTable serving;
  serving.artifact = std::move(*artifact);
  QueryService service(&serving);
  const std::string response = service.HandleLine("corrective k=5");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(response.find("corruption"), std::string::npos);

  auto again = PatternTableArtifact::FromBuffer(corrupt);
  ASSERT_TRUE(again.ok());
  const std::string spec = FirstItemSpec(*(*again)->view().catalog);
  ServeMixedQueries(std::move(*again), spec);
}

TEST(ArtifactTest, HeaderTierCorruptItemIdsRenderPlaceholders) {
  const PatternTable table = MakeRandomTable(14);
  const std::string bytes = WriteArtifactBytes(table, "corrupt_items");
  auto clean = PatternTableArtifact::FromBuffer(bytes);
  ASSERT_TRUE(clean.ok());
  const ArtifactSectionInfo& items = (*clean)->info().sections[0];
  ASSERT_EQ(items.id, ArtifactSection::kItems);
  ASSERT_GT(items.size, 0u);

  // An item id far outside the catalog: name rendering must degrade to
  // a placeholder, not trip the catalog's bounds CHECK mid-response.
  std::string corrupt = bytes;
  const uint32_t bogus = 0x40000000u;
  std::memcpy(corrupt.data() + items.offset, &bogus, sizeof(bogus));
  auto artifact = PatternTableArtifact::FromBuffer(corrupt);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_FALSE((*artifact)->ValidateFully().ok());
  const std::string spec = FirstItemSpec(*(*artifact)->view().catalog);
  ServeMixedQueries(std::move(*artifact), spec);
}

TEST(ArtifactTest, WrongMagicAndByteSwappedMagicAreRejected) {
  std::string bytes = WriteArtifactBytes(MakeRandomTable(8), "magic");
  std::string garbage = bytes;
  garbage[0] = 'X';
  EXPECT_FALSE(PatternTableArtifact::FromBuffer(garbage).ok());

  // The same artifact written on an opposite-endian host: the magic
  // survives byte-swapped. The error must call out the endianness.
  std::string swapped = bytes;
  for (size_t i = 0; i < 4; ++i) std::swap(swapped[i], swapped[7 - i]);
  auto result = PatternTableArtifact::FromBuffer(swapped);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("endian"), std::string::npos)
      << result.status().ToString();
}

TEST(ArtifactTest, FromMemoryRequiresAlignment) {
  const std::string bytes = WriteArtifactBytes(MakeRandomTable(9),
                                               "align");
  std::vector<uint64_t> aligned((bytes.size() + 15) / 8);
  std::memcpy(aligned.data(), bytes.data(), bytes.size());
  auto ok = PatternTableArtifact::FromMemory(aligned.data(), bytes.size());
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  const uint8_t* misaligned =
      reinterpret_cast<const uint8_t*>(aligned.data()) + 1;
  auto bad = PatternTableArtifact::FromMemory(misaligned, bytes.size());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArtifactTest, EmptyAndMissingFilesAreRejected) {
  const std::string dir = TempDir("missing");
  EXPECT_FALSE(PatternTableArtifact::Open(dir + "/nope.dvt").ok());
  DIVEXP_CHECK_OK(recovery::WriteFileAtomic(dir + "/empty.dvt", ""));
  EXPECT_FALSE(PatternTableArtifact::Open(dir + "/empty.dvt").ok());
  EXPECT_FALSE(PatternTableArtifact::FromBuffer("").ok());
}

TEST(ArtifactTest, MigrationFromSnapshotIsLossless) {
  const PatternTable table = MakeRandomTable(10);
  const std::string dir = TempDir("migrate");
  const std::string snap = dir + "/table.snap";
  const std::string dvt = dir + "/table.dvt";
  ASSERT_TRUE(SavePatternTable(snap, table).ok());
  ASSERT_TRUE(MigrateSnapshotToArtifact(snap, dvt).ok());

  auto artifact = PatternTableArtifact::Open(dvt,
                                             ArtifactValidation::kFull);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  ExpectViewMatchesTable((*artifact)->view(), table);
  EXPECT_EQ((*artifact)->fingerprint(), TableFingerprint(table));
}

TEST(ArtifactTest, OpenServingTableSniffsBothFormatsAndRejectsGarbage) {
  const PatternTable table = MakeRandomTable(11);
  const std::string dir = TempDir("sniff");
  ASSERT_TRUE(
      WritePatternTableArtifact(dir + "/table.dvt", table).ok());
  ASSERT_TRUE(SavePatternTable(dir + "/table.snap", table).ok());
  DIVEXP_CHECK_OK(
      recovery::WriteFileAtomic(dir + "/garbage.bin", "not a table"));

  auto via_artifact = OpenServingTable(dir + "/table.dvt");
  ASSERT_TRUE(via_artifact.ok());
  EXPECT_NE(via_artifact->artifact, nullptr);
  auto via_snapshot = OpenServingTable(dir + "/table.snap");
  ASSERT_TRUE(via_snapshot.ok());
  EXPECT_NE(via_snapshot->eager, nullptr);
  EXPECT_EQ(via_artifact->view().fingerprint,
            via_snapshot->view().fingerprint);
  EXPECT_FALSE(OpenServingTable(dir + "/garbage.bin").ok());
}

}  // namespace
}  // namespace serve
}  // namespace divexp
