// Differential oracle for the serving path: every query must be
// bit-identical across the in-memory PatternTable (the reference
// implementation in core/), the mmap'd artifact backing and the eager
// snapshot backing. Exact double equality throughout — the serve
// engine replicates the core algorithms including their tie-breaks and
// scan orders, so any drift is a bug, not tolerance noise.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/corrective.h"
#include "core/lattice.h"
#include "core/shapley.h"
#include "core/table_snapshot.h"
#include "recovery/atomic_file.h"
#include "serve/artifact.h"
#include "serve/query.h"
#include "testing/test_explore.h"
#include "util/random.h"

namespace divexp {
namespace serve {
namespace {

using divexp::testing::ExploreForTest;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_query_diff_test/" + leaf;
  DIVEXP_CHECK_OK(recovery::EnsureDirectory(dir));
  return dir;
}

PatternTable MakeRandomTable(uint64_t seed, size_t rows = 160,
                             size_t attrs = 4, int domain = 2,
                             double support = 0.02) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells(rows, std::vector<int>(attrs));
  std::string outcomes;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < attrs; ++a) {
      cells[r][a] = static_cast<int>(rng.Below(domain));
    }
    const double u = rng.Uniform();
    outcomes += (u < 0.35 ? 'T' : u < 0.8 ? 'F' : 'B');
  }
  return ExploreForTest(cells, std::vector<int>(attrs, domain), outcomes,
                        support);
}

/// The reference table plus both serving backings over it.
struct Harness {
  PatternTable table;
  std::unique_ptr<PatternTableArtifact> artifact;
  std::unique_ptr<EagerTableBacking> eager;
  std::vector<std::pair<const char*, const TableView*>> views;

  explicit Harness(uint64_t seed, const std::string& leaf)
      : table(MakeRandomTable(seed)) {
    const std::string path = TempDir(leaf) + "/table.dvt";
    DIVEXP_CHECK_OK(WritePatternTableArtifact(path, table));
    auto opened = PatternTableArtifact::Open(path);
    DIVEXP_CHECK_OK(opened.status());
    artifact = std::move(opened).value();
    auto from_table = EagerTableBacking::FromTable(table);
    DIVEXP_CHECK_OK(from_table.status());
    eager = std::move(from_table).value();
    views = {{"mmap", &artifact->view()}, {"eager", &eager->view()}};
  }
};

TEST(QueryDifferentialTest, TopKMatchesPatternTableTopK) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Harness h(seed, "topk" + std::to_string(seed));
    for (size_t k : {size_t{1}, size_t{5}, size_t{10000}}) {
      for (bool descending : {true, false}) {
        for (double min_support : {0.0, 0.05}) {
          const std::vector<size_t> expected =
              h.table.TopK(k, descending, min_support, /*min_len=*/1,
                           /*max_len=*/2);
          TopKQuery query;
          query.k = k;
          query.descending = descending;
          query.min_support = min_support;
          query.max_len = 2;
          for (const auto& [name, view] : h.views) {
            QueryEngine engine(view);
            auto got = engine.TopK(query);
            ASSERT_TRUE(got.ok()) << name;
            EXPECT_EQ(*got, expected)
                << name << " k=" << k << " desc=" << descending
                << " min_support=" << min_support;
          }
        }
      }
    }
  }
}

TEST(QueryDifferentialTest, UnboundedTopKMatchesRankForEveryKey) {
  Harness h(4, "rank");
  for (const auto key :
       {PatternTable::RankKey::kDivergence,
        PatternTable::RankKey::kSignificance,
        PatternTable::RankKey::kSupport}) {
    for (bool descending : {true, false}) {
      const std::vector<size_t> expected = h.table.Rank(key, descending);
      TopKQuery query;
      query.k = h.table.size() + 1;  // no truncation: Rank equivalence
      query.key = key;
      query.descending = descending;
      for (const auto& [name, view] : h.views) {
        QueryEngine engine(view);
        auto got = engine.TopK(query);
        ASSERT_TRUE(got.ok()) << name;
        EXPECT_EQ(*got, expected) << name << " desc=" << descending;
      }
    }
  }
}

TEST(QueryDifferentialTest, ShapleyIsBitIdenticalForEveryRow) {
  for (uint64_t seed : {5u, 6u}) {
    Harness h(seed, "shapley" + std::to_string(seed));
    for (size_t i = 0; i < h.table.size(); ++i) {
      const Itemset& items = h.table.row(i).items;
      if (items.empty()) continue;
      auto expected = ShapleyContributions(h.table, items);
      ASSERT_TRUE(expected.ok());
      for (const auto& [name, view] : h.views) {
        QueryEngine engine(view);
        auto got = engine.Shapley(items);
        ASSERT_TRUE(got.ok()) << name;
        ASSERT_EQ(got->size(), expected->size()) << name;
        for (size_t j = 0; j < got->size(); ++j) {
          EXPECT_EQ((*got)[j].item, (*expected)[j].item) << name;
          // Bit-identical, not approximately equal.
          EXPECT_EQ((*got)[j].contribution, (*expected)[j].contribution)
              << name << " row " << i << " item " << j;
        }
      }
    }
  }
}

TEST(QueryDifferentialTest, BrowseMatchesBuildLattice) {
  Harness h(7, "browse");
  size_t targets = 0;
  for (size_t i = 0; i < h.table.size(); ++i) {
    const Itemset& target = h.table.row(i).items;
    if (target.size() < 2) continue;
    ++targets;
    auto expected = BuildLattice(h.table, target);
    ASSERT_TRUE(expected.ok());
    for (const auto& [name, view] : h.views) {
      QueryEngine engine(view);
      auto got = engine.Browse(target);
      ASSERT_TRUE(got.ok()) << name;
      ASSERT_EQ(got->nodes.size(), expected->nodes.size()) << name;
      for (size_t n = 0; n < got->nodes.size(); ++n) {
        const LatticeNode& a = got->nodes[n];
        const LatticeNode& b = expected->nodes[n];
        EXPECT_EQ(a.items, b.items) << name;
        EXPECT_EQ(a.level, b.level) << name;
        EXPECT_EQ(a.divergence, b.divergence) << name;
        EXPECT_EQ(a.t, b.t) << name;
        EXPECT_EQ(a.frequent, b.frequent) << name;
        EXPECT_EQ(a.corrective, b.corrective) << name;
      }
      ASSERT_EQ(got->edges.size(), expected->edges.size()) << name;
      for (size_t e = 0; e < got->edges.size(); ++e) {
        EXPECT_EQ(got->edges[e].from, expected->edges[e].from) << name;
        EXPECT_EQ(got->edges[e].to, expected->edges[e].to) << name;
      }
    }
  }
  ASSERT_GT(targets, 0u) << "test table has no multi-item patterns";
}

TEST(QueryDifferentialTest, CorrectiveMatchesFindCorrectiveItems) {
  Harness h(8, "corrective");
  for (double min_factor : {0.0, 0.01}) {
    for (size_t top_k : {size_t{0}, size_t{5}}) {
      CorrectiveOptions options;
      options.min_factor = min_factor;
      options.top_k = top_k;
      const std::vector<CorrectiveItem> expected =
          FindCorrectiveItems(h.table, options);
      for (const auto& [name, view] : h.views) {
        QueryEngine engine(view);
        auto got = engine.Corrective(options);
        ASSERT_TRUE(got.ok()) << name;
        ASSERT_EQ(got->size(), expected.size())
            << name << " min_factor=" << min_factor << " k=" << top_k;
        for (size_t j = 0; j < got->size(); ++j) {
          EXPECT_EQ((*got)[j].base, expected[j].base) << name;
          EXPECT_EQ((*got)[j].item, expected[j].item) << name;
          EXPECT_EQ((*got)[j].base_divergence,
                    expected[j].base_divergence)
              << name;
          EXPECT_EQ((*got)[j].with_divergence,
                    expected[j].with_divergence)
              << name;
          EXPECT_EQ((*got)[j].factor, expected[j].factor) << name;
          EXPECT_EQ((*got)[j].t, expected[j].t) << name;
        }
      }
    }
  }
}

TEST(QueryDifferentialTest, SnapshotLoadedBackingMatchesArtifact) {
  // The full migration path: explore → snapshot → (a) eager load,
  // (b) migrate to artifact. Both serve identical bits.
  Harness h(9, "snapshot");
  const std::string dir = TempDir("snapshot_load");
  const std::string snap = dir + "/table.snap";
  const std::string dvt = dir + "/table.dvt";
  ASSERT_TRUE(SavePatternTable(snap, h.table).ok());
  ASSERT_TRUE(MigrateSnapshotToArtifact(snap, dvt).ok());
  auto eager = EagerTableBacking::Load(snap);
  ASSERT_TRUE(eager.ok());
  auto artifact = PatternTableArtifact::Open(dvt);
  ASSERT_TRUE(artifact.ok());

  QueryEngine via_eager(&(*eager)->view());
  QueryEngine via_artifact(&(*artifact)->view());
  TopKQuery query;
  query.k = h.table.size();
  auto a = via_eager.TopK(query);
  auto b = via_artifact.TopK(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*a, h.table.TopK(h.table.size()));
}

TEST(QueryDifferentialTest, ErrorMessagesMatchTheCoreImplementations) {
  Harness h(10, "errors");
  // Two items of the same attribute never co-occur, so this itemset is
  // guaranteed infrequent whatever the seed produced.
  const Itemset missing{0, 1};
  ASSERT_FALSE(h.table.Contains(missing));
  auto core_shapley = ShapleyContributions(h.table, missing);
  auto core_lattice = BuildLattice(h.table, missing);
  for (const auto& [name, view] : h.views) {
    QueryEngine engine(view);
    auto shapley = engine.Shapley(missing);
    ASSERT_FALSE(shapley.ok()) << name;
    EXPECT_EQ(shapley.status().ToString(),
              core_shapley.status().ToString())
        << name;
    auto browse = engine.Browse(missing);
    ASSERT_FALSE(browse.ok()) << name;
    EXPECT_EQ(browse.status().ToString(),
              core_lattice.status().ToString())
        << name;
  }
}

TEST(QueryDifferentialTest, CancelledGuardStopsEveryQuery) {
  Harness h(11, "guard");
  RunGuard guard;
  guard.RequestCancel();
  QueryEngine engine(&h.artifact->view());
  EXPECT_EQ(engine.TopK(TopKQuery{}, &guard).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(engine.Corrective(CorrectiveOptions{}, &guard).status().code(),
            StatusCode::kCancelled);
  // Browse / Shapley need a valid multi-item target to reach the
  // guarded loops.
  for (size_t i = 0; i < h.table.size(); ++i) {
    const Itemset& items = h.table.row(i).items;
    if (items.size() < 2) continue;
    EXPECT_EQ(engine.Browse(items, &guard).status().code(),
              StatusCode::kCancelled);
    EXPECT_EQ(engine.Shapley(items, &guard).status().code(),
              StatusCode::kCancelled);
    break;
  }
}

}  // namespace
}  // namespace serve
}  // namespace divexp
