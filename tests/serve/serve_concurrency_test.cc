// Concurrency coverage for the serving stack: many threads over one
// QueryService (shared immutable mapping + sharded cache), and a real
// unix-socket daemon exercised by concurrent clients. CI's serve-smoke
// job reruns this binary under TSan.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "recovery/atomic_file.h"
#include "serve/artifact.h"
#include "serve/server.h"
#include "testing/test_explore.h"
#include "util/random.h"

namespace divexp {
namespace serve {
namespace {

using divexp::testing::ExploreForTest;

std::string TempDir(const std::string& leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr ? base : "/tmp") +
                    "/divexp_serve_conc_test/" + leaf;
  DIVEXP_CHECK_OK(recovery::EnsureDirectory(dir));
  return dir;
}

ServingTable OpenTestTable(const std::string& leaf) {
  Rng rng(42);
  std::vector<std::vector<int>> cells(200, std::vector<int>(4));
  std::string outcomes;
  for (size_t r = 0; r < 200; ++r) {
    for (size_t a = 0; a < 4; ++a) {
      cells[r][a] = static_cast<int>(rng.Below(2));
    }
    const double u = rng.Uniform();
    outcomes += (u < 0.35 ? 'T' : u < 0.8 ? 'F' : 'B');
  }
  const PatternTable table =
      ExploreForTest(cells, {2, 2, 2, 2}, outcomes, 0.02);
  const std::string path = TempDir(leaf) + "/table.dvt";
  DIVEXP_CHECK_OK(WritePatternTableArtifact(path, table));
  auto opened = OpenServingTable(path);
  DIVEXP_CHECK_OK(opened.status());
  return std::move(opened).value();
}

/// A request mix covering every verb plus parse errors; indexed
/// per-thread so workloads interleave differently.
std::vector<std::string> RequestMix(const TableView& view) {
  std::vector<std::string> mix = {
      "topk k=5",
      "topk k=5 order=asc",
      "topk k=3 key=support",
      "corrective k=4",
      "stats",
      "topk k=banana",  // parse error; must not poison shared state
  };
  for (size_t i = 0; i < view.size() && mix.size() < 10; ++i) {
    const ItemSpan items = view.row_items(i);
    if (items.size() != 2) continue;
    std::string spec;
    for (size_t j = 0; j < items.size(); ++j) {
      if (j) spec += ',';
      spec += view.catalog->ItemName(items[j]);
    }
    mix.push_back("shapley items=" + spec);
    mix.push_back("browse items=" + spec);
  }
  return mix;
}

TEST(ServeConcurrencyTest, ManyThreadsOneServiceAgreeWithSequential) {
  ServingTable table = OpenTestTable("service");
  QueryService service(&table);
  const std::vector<std::string> mix = RequestMix(table.view());

  // Sequential reference answers (from a separate service so the
  // shared one starts cold).
  QueryService reference(&table);
  std::vector<std::string> expected;
  for (const std::string& line : mix) {
    expected.push_back(reference.HandleLine(line));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const size_t q = (t + r) % mix.size();
        const std::string response = service.HandleLine(mix[q]);
        if (mix[q] == "stats") {
          // stats reads live cache counters, so only the envelope is
          // deterministic under concurrency.
          if (response.find("\"ok\":true") == std::string::npos) {
            mismatches.fetch_add(1);
          }
        } else if (response != expected[q]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Conservation: every cacheable request was either a hit or a miss.
  const ResultCache::Stats stats = service.cache().stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

/// Minimal blocking line client against a unix socket.
class LineClient {
 public:
  explicit LineClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DIVEXP_CHECK(fd_ >= 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    DIVEXP_CHECK(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0);
  }
  ~LineClient() { ::close(fd_); }

  std::string RoundTrip(const std::string& line) {
    const std::string request = line + "\n";
    DIVEXP_CHECK(::write(fd_, request.data(), request.size()) ==
                 static_cast<ssize_t>(request.size()));
    std::string response;
    char c;
    while (::read(fd_, &c, 1) == 1) {
      if (c == '\n') return response;
      response += c;
    }
    return response;
  }

  /// Blocks until the server closes the connection; true on clean EOF.
  bool WaitForEof() {
    char c;
    ssize_t n;
    while ((n = ::read(fd_, &c, 1)) == 1) {
    }
    return n == 0;
  }

 private:
  int fd_ = -1;
};

TEST(ServeConcurrencyTest, SocketDaemonServesConcurrentClients) {
  ServingTable table = OpenTestTable("daemon");
  QueryService service(&table);
  SocketServer server(&service);
  const std::string socket_path = TempDir("daemon") + "/serve.sock";
  ASSERT_TRUE(server.Start(socket_path, /*num_threads=*/4).ok());

  const std::vector<std::string> mix = RequestMix(table.view());
  QueryService reference(&table);
  std::vector<std::string> expected;
  for (const std::string& line : mix) {
    expected.push_back(reference.HandleLine(line));
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LineClient client(socket_path);
      for (int r = 0; r < kRounds; ++r) {
        const size_t q = (c * 3 + r) % mix.size();
        const std::string response = client.RoundTrip(mix[q]);
        if (mix[q] == "stats") {
          if (response.find("\"ok\":true") == std::string::npos) {
            mismatches.fetch_add(1);
          }
        } else if (response != expected[q]) {
          mismatches.fetch_add(1);
        }
      }
      // quit closes this connection; the daemon keeps serving others.
      client.RoundTrip("quit");
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  server.Stop();
  // Stop is idempotent and removes the socket file.
  server.Stop();
  EXPECT_FALSE(recovery::FileExists(socket_path));
}

uint64_t IdleDisconnects() {
  return obs::MetricsRegistry::Default()
      .GetCounter("serve.idle_disconnects")
      ->Value();
}

TEST(ServeConcurrencyTest, SilentConnectionIsDisconnectedAtIdleDeadline) {
  ServingTable table = OpenTestTable("idle");
  QueryService service(&table);
  SocketServerOptions options;
  options.idle_timeout_ms = 200;
  SocketServer server(&service, options);
  const std::string socket_path = TempDir("idle") + "/serve.sock";
  ASSERT_TRUE(server.Start(socket_path, /*num_threads=*/2).ok());

  const uint64_t idle_before = IdleDisconnects();
  LineClient quiet(socket_path);
  // One request proves the connection is live; then go silent. The
  // server must hang up on its own — a walked-away client can never
  // pin a server thread forever.
  ASSERT_FALSE(quiet.RoundTrip("stats").empty());
  EXPECT_TRUE(quiet.WaitForEof());
  EXPECT_GT(IdleDisconnects(), idle_before);
  server.Stop();
}

TEST(ServeConcurrencyTest, ActiveConnectionOutlivesTheIdleDeadline) {
  ServingTable table = OpenTestTable("active");
  QueryService service(&table);
  SocketServerOptions options;
  options.idle_timeout_ms = 300;
  SocketServer server(&service, options);
  const std::string socket_path = TempDir("active") + "/serve.sock";
  ASSERT_TRUE(server.Start(socket_path, /*num_threads=*/2).ok());

  // Requests spaced well inside the deadline, for several deadlines'
  // worth of wall clock: every byte read must refresh the countdown.
  LineClient client(socket_path);
  for (int i = 0; i < 10; ++i) {
    const std::string response = client.RoundTrip("topk k=1");
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
}

TEST(ServeConcurrencyTest, DrainStopDeliversResponsesThenEof) {
  ServingTable table = OpenTestTable("drain");
  QueryService service(&table);
  SocketServer server(&service);
  const std::string socket_path = TempDir("drain") + "/serve.sock";
  ASSERT_TRUE(server.Start(socket_path, /*num_threads=*/2).ok());

  LineClient client(socket_path);
  const std::string response = client.RoundTrip("stats");
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  // Drain half-closes the read side only: the connection winds down
  // with a clean EOF (the daemon's SIGTERM path), never a mid-response
  // cut or an ECONNRESET.
  std::thread stopper(
      [&server] { server.Stop(SocketServer::StopMode::kDrain); });
  EXPECT_TRUE(client.WaitForEof());
  stopper.join();
}

TEST(ServeConcurrencyTest, StopUnblocksIdleConnections) {
  ServingTable table = OpenTestTable("stop");
  QueryService service(&table);
  SocketServer server(&service);
  const std::string socket_path = TempDir("stop") + "/serve.sock";
  ASSERT_TRUE(server.Start(socket_path, /*num_threads=*/2).ok());

  // An idle client holds a connection open; Stop must still return
  // (shutting the connection down) instead of joining forever.
  LineClient idle(socket_path);
  ASSERT_FALSE(idle.RoundTrip("stats").empty());
  server.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace serve
}  // namespace divexp
