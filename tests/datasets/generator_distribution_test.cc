// Distributional sanity checks for the synthetic generators — the
// properties the experiments depend on (docs/data-generators.md).
#include <gtest/gtest.h>

#include <cmath>

#include "datasets/datasets.h"

namespace divexp {
namespace {

double CategoryFraction(const Column& col, const std::string& value) {
  int32_t code = -1;
  for (size_t i = 0; i < col.categories().size(); ++i) {
    if (col.categories()[i] == value) code = static_cast<int32_t>(i);
  }
  EXPECT_GE(code, 0) << value;
  size_t hits = 0;
  for (int32_t c : col.codes()) hits += c == code;
  return static_cast<double>(hits) / static_cast<double>(col.size());
}

double PositiveFraction(const std::vector<int>& v) {
  size_t hits = 0;
  for (int x : v) hits += x;
  return static_cast<double>(hits) / static_cast<double>(v.size());
}

TEST(CompasDistributionTest, DemographicMarginals) {
  auto ds = MakeCompas();
  ASSERT_TRUE(ds.ok());
  const Column& race = ds->discretized.Get("race");
  EXPECT_NEAR(CategoryFraction(race, "Afr-Am"), 0.51, 0.03);
  EXPECT_NEAR(CategoryFraction(race, "Cauc"), 0.34, 0.03);
  const Column& sex = ds->discretized.Get("sex");
  EXPECT_NEAR(CategoryFraction(sex, "Male"), 0.81, 0.03);
}

TEST(CompasDistributionTest, PriorTailSupportsFinerBins) {
  CompasOptions opts;
  opts.prior_bins = 6;
  auto ds = MakeCompas(opts);
  ASSERT_TRUE(ds.ok());
  // The ">7" bin must clear the Fig. 1 support threshold of 0.05.
  EXPECT_GT(CategoryFraction(ds->discretized.Get("#prior"), ">7"), 0.05);
}

TEST(CompasDistributionTest, BaseRateRealistic) {
  auto ds = MakeCompas();
  ASSERT_TRUE(ds.ok());
  const double recid = PositiveFraction(ds->truth);
  EXPECT_GT(recid, 0.35);
  EXPECT_LT(recid, 0.60);
  // Flag rate matches the calibrated 22% (± quantile rounding).
  EXPECT_NEAR(PositiveFraction(ds->predictions), 0.22, 0.02);
}

TEST(AdultDistributionTest, IncomeBaseRateAndSkew) {
  SizeOptions opts;
  opts.num_rows = 8000;
  auto ds = MakeAdult(opts);
  ASSERT_TRUE(ds.ok());
  const double rate = PositiveFraction(ds->truth);
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.40);  // real adult: ~0.25 high income
  // Married earners dominate the positive class.
  const Column& status = ds->discretized.Get("status");
  size_t married_pos = 0, pos = 0;
  for (size_t i = 0; i < ds->truth.size(); ++i) {
    if (ds->truth[i] == 1) {
      ++pos;
      married_pos += status.ValueString(i) == "Married";
    }
  }
  EXPECT_GT(static_cast<double>(married_pos) / pos, 0.6);
}

TEST(BankDistributionTest, SubscriptionRateAndDurationSignal) {
  SizeOptions opts;
  opts.num_rows = 6000;
  auto ds = MakeBank(opts);
  ASSERT_TRUE(ds.ok());
  const double rate = PositiveFraction(ds->truth);
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.6);
  // Long calls convert more (the classic bank-marketing signal).
  const Column& duration = ds->raw.Get("duration");
  double pos_mean = 0.0, neg_mean = 0.0;
  size_t pos = 0, neg = 0;
  for (size_t i = 0; i < ds->truth.size(); ++i) {
    if (ds->truth[i] == 1) {
      pos_mean += duration.Numeric(i);
      ++pos;
    } else {
      neg_mean += duration.Numeric(i);
      ++neg;
    }
  }
  EXPECT_GT(pos_mean / pos, neg_mean / neg);
}

TEST(GermanDistributionTest, GoodRiskMajorityAndDominantCategories) {
  auto ds = MakeGerman();
  ASSERT_TRUE(ds.ok());
  const double rate = PositiveFraction(ds->truth);
  EXPECT_GT(rate, 0.5);  // real german: 70% good credit
  EXPECT_LT(rate, 0.85);
  // Dominant categories produce the deep-itemset explosion of Fig. 7.
  EXPECT_GT(CategoryFraction(ds->discretized.Get("foreign-worker"),
                             "yes"),
            0.9);
  EXPECT_GT(CategoryFraction(ds->discretized.Get("debtors"), "none"),
            0.85);
}

TEST(HeartDistributionTest, DiseasePrevalenceAndRiskFactors) {
  auto ds = MakeHeart();
  ASSERT_TRUE(ds.ok());
  const double rate = PositiveFraction(ds->truth);
  EXPECT_GT(rate, 0.3);
  EXPECT_LT(rate, 0.65);
  // Asymptomatic chest pain is the strongest classic predictor.
  const Column& cp = ds->discretized.Get("cp");
  size_t asympt_pos = 0, asympt = 0;
  for (size_t i = 0; i < ds->truth.size(); ++i) {
    if (cp.ValueString(i) == "asymptomatic") {
      ++asympt;
      asympt_pos += ds->truth[i];
    }
  }
  ASSERT_GT(asympt, 0u);
  EXPECT_GT(static_cast<double>(asympt_pos) / asympt, rate);
}

TEST(ArtificialDistributionTest, UniformIndependentAttributes) {
  SizeOptions opts;
  opts.num_rows = 20000;
  auto ds = MakeArtificial(opts);
  ASSERT_TRUE(ds.ok());
  for (size_t c = 0; c < ds->discretized.num_columns(); ++c) {
    const Column& col = ds->discretized.GetAt(c);
    EXPECT_NEAR(CategoryFraction(col, "1"), 0.5, 0.02) << col.name();
  }
  // Pairwise independence spot-check: P(a=1, d=1) ≈ 0.25.
  const auto& a = ds->discretized.Get("a").codes();
  const auto& d = ds->discretized.Get("d").codes();
  size_t both = 0;
  for (size_t i = 0; i < a.size(); ++i) both += (a[i] == 1 && d[i] == 1);
  EXPECT_NEAR(static_cast<double>(both) / a.size(), 0.25, 0.02);
}

}  // namespace
}  // namespace divexp
