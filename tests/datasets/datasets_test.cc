#include "datasets/datasets.h"

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "data/csv.h"
#include "data/encoder.h"
#include "model/metrics.h"

namespace divexp {
namespace {

TEST(DatasetFactoryTest, AllNamesResolve) {
  for (const std::string& name : AllDatasetNames()) {
    auto ds = MakeByName(name);
    ASSERT_TRUE(ds.ok()) << name;
    EXPECT_EQ(ds->name, name);
    EXPECT_EQ(ds->truth.size(), ds->discretized.num_rows());
    EXPECT_EQ(ds->raw.num_rows(), ds->discretized.num_rows());
  }
  EXPECT_FALSE(MakeByName("nope").ok());
}

struct TableFourRow {
  const char* name;
  size_t rows, attrs, cont, cat;
};

class TableFourTest : public ::testing::TestWithParam<TableFourRow> {};

TEST_P(TableFourTest, MatchesPaperCharacteristics) {
  const TableFourRow& expected = GetParam();
  auto ds = MakeByName(expected.name);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->discretized.num_rows(), expected.rows);
  EXPECT_EQ(ds->discretized.num_columns(), expected.attrs);
  EXPECT_EQ(ds->num_continuous, expected.cont);
  EXPECT_EQ(ds->num_categorical, expected.cat);
  // Discretized frame is ready for encoding.
  auto encoded = EncodeDataFrame(ds->discretized);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->catalog.num_attributes(), expected.attrs);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable4, TableFourTest,
    ::testing::Values(TableFourRow{"adult", 45222, 11, 4, 7},
                      TableFourRow{"bank", 11162, 15, 6, 9},
                      TableFourRow{"compas", 6172, 6, 2, 4},
                      TableFourRow{"german", 1000, 21, 7, 14},
                      TableFourRow{"heart", 296, 13, 5, 8},
                      TableFourRow{"artificial", 50000, 10, 0, 10}),
    [](const ::testing::TestParamInfo<TableFourRow>& info) {
      return std::string(info.param.name);
    });

TEST(CompasDatasetTest, OverallRatesNearPaperAnchors) {
  auto ds = MakeCompas();
  ASSERT_TRUE(ds.ok());
  ASSERT_FALSE(ds->predictions.empty());
  const ConfusionMatrix cm = ComputeConfusion(ds->predictions, ds->truth);
  // Paper Table 1: FPR = 0.088, FNR = 0.698. The synthetic stand-in is
  // calibrated to land near those anchors.
  EXPECT_GT(cm.FalsePositiveRate(), 0.04);
  EXPECT_LT(cm.FalsePositiveRate(), 0.16);
  EXPECT_GT(cm.FalseNegativeRate(), 0.55);
  EXPECT_LT(cm.FalseNegativeRate(), 0.82);
}

TEST(CompasDatasetTest, TargetSubgroupHasPositiveFprDivergence) {
  // The paper's headline finding: African-American males with many
  // priors in age 25-45 have much higher FPR than overall (Table 2).
  auto ds = MakeCompas();
  ASSERT_TRUE(ds.ok());
  auto encoded = EncodeDataFrame(ds->discretized);
  ASSERT_TRUE(encoded.ok());
  ExplorerOptions opts;
  opts.min_support = 0.05;
  DivergenceExplorer explorer(opts);
  auto table = explorer.Explore(*encoded, ds->predictions, ds->truth,
                                Metric::kFalsePositiveRate);
  ASSERT_TRUE(table.ok());
  auto target = table->ParseItemset(
      {{"race", "Afr-Am"}, {"sex", "Male"}, {"#prior", ">3"}});
  ASSERT_TRUE(target.ok());
  auto div = table->Divergence(*target);
  ASSERT_TRUE(div.ok()) << "target pattern must be frequent";
  EXPECT_GT(*div, 0.05);
}

TEST(CompasDatasetTest, OlderCaucasianHasPositiveFnrDivergence) {
  auto ds = MakeCompas();
  ASSERT_TRUE(ds.ok());
  auto encoded = EncodeDataFrame(ds->discretized);
  ASSERT_TRUE(encoded.ok());
  ExplorerOptions opts;
  opts.min_support = 0.05;
  DivergenceExplorer explorer(opts);
  auto table = explorer.Explore(*encoded, ds->predictions, ds->truth,
                                Metric::kFalseNegativeRate);
  ASSERT_TRUE(table.ok());
  auto target =
      table->ParseItemset({{"age", ">45"}, {"race", "Cauc"}});
  ASSERT_TRUE(target.ok());
  auto div = table->Divergence(*target);
  ASSERT_TRUE(div.ok());
  EXPECT_GT(*div, 0.02);
}

TEST(CompasDatasetTest, FinerPriorBinsAvailable) {
  CompasOptions opts;
  opts.prior_bins = 6;
  auto ds = MakeCompas(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->discretized.Get("#prior").num_categories(), 6u);
  opts.prior_bins = 4;
  EXPECT_FALSE(MakeCompas(opts).ok());
}

TEST(ArtificialDatasetTest, MatchesPaperConstruction) {
  SizeOptions opts;
  opts.num_rows = 20000;  // smaller for test speed
  auto ds = MakeArtificial(opts);
  ASSERT_TRUE(ds.ok());
  // The classifier must have learned a=b=c almost perfectly.
  size_t agree = 0;
  const auto& a = ds->discretized.Get("a").codes();
  const auto& b = ds->discretized.Get("b").codes();
  const auto& c = ds->discretized.Get("c").codes();
  size_t abc = 0;
  size_t flipped = 0;
  for (size_t i = 0; i < ds->predictions.size(); ++i) {
    const bool abc_equal = a[i] == b[i] && b[i] == c[i];
    abc += abc_equal;
    if (ds->predictions[i] == (abc_equal ? 1 : 0)) ++agree;
    if (abc_equal && ds->truth[i] == 0) ++flipped;
  }
  EXPECT_GT(static_cast<double>(agree) / ds->predictions.size(), 0.99);
  // About one quarter of the data is a=b=c; about half of it flipped.
  EXPECT_NEAR(static_cast<double>(abc) / ds->predictions.size(), 0.25,
              0.02);
  EXPECT_NEAR(static_cast<double>(flipped) / abc, 0.5, 0.05);
}

TEST(EnsurePredictionsTest, TrainsForestWhenMissing) {
  SizeOptions opts;
  opts.num_rows = 2000;
  auto ds = MakeAdult(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->predictions.empty());
  ForestOptions fopts;
  fopts.num_trees = 8;
  ASSERT_TRUE(EnsurePredictions(&(*ds), fopts).ok());
  ASSERT_EQ(ds->predictions.size(), ds->truth.size());
  const ConfusionMatrix cm = ComputeConfusion(ds->predictions, ds->truth);
  EXPECT_GT(cm.Accuracy(), 0.6);  // far better than chance
  // Idempotent: second call keeps existing predictions.
  const std::vector<int> before = ds->predictions;
  ASSERT_TRUE(EnsurePredictions(&(*ds), fopts).ok());
  EXPECT_EQ(ds->predictions, before);
}

TEST(DatasetDeterminismTest, SameSeedSameData) {
  auto a = MakeByName("bank", 5);
  auto b = MakeByName("bank", 5);
  auto c = MakeByName("bank", 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->truth, b->truth);
  EXPECT_NE(a->truth, c->truth);
  EXPECT_EQ(WriteCsvString(a->discretized).substr(0, 4000),
            WriteCsvString(b->discretized).substr(0, 4000));
}

TEST(SmallSizeOverrideTest, GeneratorsHonorNumRows) {
  for (const std::string& name : {"adult", "bank", "german", "heart"}) {
    SizeOptions opts;
    opts.num_rows = 123;
    auto ds = MakeByName(name) /* default size */;
    ASSERT_TRUE(ds.ok());
    auto small = name == "adult"   ? MakeAdult(opts)
                 : name == "bank"  ? MakeBank(opts)
                 : name == "german" ? MakeGerman(opts)
                                    : MakeHeart(opts);
    ASSERT_TRUE(small.ok());
    EXPECT_EQ(small->discretized.num_rows(), 123u);
  }
}

}  // namespace
}  // namespace divexp
