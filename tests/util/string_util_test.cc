#include "util/string_util.h"

#include <gtest/gtest.h>

namespace divexp {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyStringGivesOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_FALSE(StartsWith("barfoo", "foo"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(PadTest, LeftAndRightAlign) {
  EXPECT_EQ(Pad("ab", 5), "ab   ");
  EXPECT_EQ(Pad("ab", 5, true), "   ab");
  EXPECT_EQ(Pad("abcdef", 3), "abc");  // truncation
  EXPECT_EQ(Pad("ab", 2), "ab");
}

}  // namespace
}  // namespace divexp
