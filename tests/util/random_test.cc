#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace divexp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, IntInclusiveBounds) {
  Rng rng(19);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.Int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsLast) {
  Rng rng(43);
  EXPECT_EQ(rng.Categorical({0.0, 0.0, 0.0}), 2u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyVectorIsNoop) {
  Rng rng(53);
  std::vector<int> v;
  rng.Shuffle(&v);
  EXPECT_TRUE(v.empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(59);
  Rng forked = a.Fork();
  // Forked stream should not reproduce the parent's next outputs.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == forked.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace divexp
