// Death tests for the library's programmer-error contracts: misuse
// aborts loudly instead of corrupting state.
#include <gtest/gtest.h>

#include "fpm/itemset.h"
#include "util/random.h"
#include "util/status.h"

namespace divexp {
namespace {

TEST(CheckDeathTest, CheckMacroAborts) {
  EXPECT_DEATH({ DIVEXP_CHECK(1 == 2); }, "CHECK failed");
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH({ DIVEXP_CHECK_OK(Status::NotFound("gone")); },
               "CHECK_OK failed");
}

TEST(CheckDeathTest, ResultValueOnErrorAborts) {
  EXPECT_DEATH(
      {
        Result<int> r(Status::Internal("boom"));
        (void)r.value();
      },
      "Result accessed while holding error");
}

TEST(CheckDeathTest, ResultFromOkStatusAborts) {
  EXPECT_DEATH({ Result<int> r((Status())); },
               "Result constructed from OK status");
}

TEST(CheckDeathTest, RngBelowZeroAborts) {
  EXPECT_DEATH(
      {
        Rng rng(1);
        (void)rng.Below(0);
      },
      "CHECK failed");
}

TEST(CheckDeathTest, WithoutMissingItemAborts) {
  EXPECT_DEATH({ (void)Without(Itemset{1, 2}, 9); }, "CHECK failed");
}

TEST(CheckDeathTest, WithDuplicateItemAborts) {
  EXPECT_DEATH({ (void)With(Itemset{1, 2}, 2); }, "CHECK failed");
}

}  // namespace
}  // namespace divexp
