#include "util/run_guard.h"

#include <gtest/gtest.h>

#include <thread>

namespace divexp {
namespace {

TEST(RunLimitsTest, DefaultIsUnlimited) {
  RunLimits limits;
  EXPECT_TRUE(limits.unlimited());
  limits.deadline_ms = 1;
  EXPECT_FALSE(limits.unlimited());
  limits = RunLimits{};
  limits.max_patterns = 1;
  EXPECT_FALSE(limits.unlimited());
  limits = RunLimits{};
  limits.max_memory_mb = 1;
  EXPECT_FALSE(limits.unlimited());
}

TEST(RunGuardTest, UnlimitedGuardNeverStops) {
  RunGuard guard;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(guard.Tick());
  }
  EXPECT_TRUE(guard.AddMemory(1ull << 40));
  EXPECT_FALSE(guard.stopped());
  EXPECT_EQ(guard.breach(), LimitBreach::kNone);
  EXPECT_TRUE(guard.ToStatus().ok());
}

TEST(RunGuardTest, CancellationStopsTicks) {
  RunGuard guard;
  EXPECT_TRUE(guard.Tick());
  guard.RequestCancel();
  EXPECT_TRUE(guard.cancel_requested());
  EXPECT_FALSE(guard.Tick());
  EXPECT_TRUE(guard.hard_stopped());
  EXPECT_EQ(guard.breach(), LimitBreach::kCancelled);
  EXPECT_EQ(guard.ToStatus().code(), StatusCode::kCancelled);
}

TEST(RunGuardTest, CancellationIsStickyAcrossReset) {
  RunGuard guard;
  guard.RequestCancel();
  EXPECT_FALSE(guard.Tick());
  guard.Reset();
  // The cancel request survives the reset.
  EXPECT_FALSE(guard.Tick());
  EXPECT_EQ(guard.breach(), LimitBreach::kCancelled);
}

TEST(RunGuardTest, DeadlineTripsAfterExpiry) {
  RunLimits limits;
  limits.deadline_ms = 1;
  RunGuard guard(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The first Tick reads the clock, so expiry is noticed immediately.
  EXPECT_FALSE(guard.Tick());
  EXPECT_EQ(guard.breach(), LimitBreach::kDeadline);
  EXPECT_EQ(guard.ToStatus().code(), StatusCode::kDeadlineExceeded);
  // Once latched, every further Tick fails without reading the clock.
  EXPECT_FALSE(guard.Tick());
}

TEST(RunGuardTest, GenerousDeadlineDoesNotTrip) {
  RunLimits limits;
  limits.deadline_ms = 60000;
  RunGuard guard(limits);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(guard.Tick());
  EXPECT_FALSE(guard.stopped());
}

TEST(RunGuardTest, MemoryBudgetTripsAndLatches) {
  RunLimits limits;
  limits.max_memory_mb = 1;
  RunGuard guard(limits);
  EXPECT_TRUE(guard.AddMemory(512 * 1024));
  EXPECT_FALSE(guard.stopped());
  EXPECT_FALSE(guard.AddMemory(1024 * 1024));
  EXPECT_EQ(guard.breach(), LimitBreach::kMemoryBudget);
  EXPECT_EQ(guard.ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(guard.Tick());
}

TEST(RunGuardTest, SubMemoryTracksLiveAndPeak) {
  RunGuard guard;
  EXPECT_TRUE(guard.AddMemory(100));
  EXPECT_TRUE(guard.AddMemory(50));
  guard.SubMemory(100);
  EXPECT_EQ(guard.memory_bytes(), 50u);
  EXPECT_EQ(guard.peak_memory_bytes(), 150u);
  guard.SubMemory(50);
  EXPECT_EQ(guard.memory_bytes(), 0u);
  EXPECT_EQ(guard.peak_memory_bytes(), 150u);
}

TEST(RunGuardTest, PatternBudgetBreachIsSoft) {
  RunLimits limits;
  limits.max_patterns = 10;
  RunGuard guard(limits);
  guard.NotePatternBudgetBreach();
  // Soft breach: reported, but does not hard-stop other shards.
  EXPECT_TRUE(guard.stopped());
  EXPECT_FALSE(guard.hard_stopped());
  EXPECT_TRUE(guard.Tick());
  EXPECT_EQ(guard.breach(), LimitBreach::kPatternBudget);
  EXPECT_EQ(guard.ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(RunGuardTest, HardBreachTakesPrecedenceOverBudget) {
  RunGuard guard;
  guard.NotePatternBudgetBreach();
  guard.RequestCancel();
  guard.Tick();
  EXPECT_EQ(guard.breach(), LimitBreach::kCancelled);
}

TEST(RunGuardTest, FirstHardBreachWins) {
  RunLimits limits;
  limits.max_memory_mb = 1;
  RunGuard guard(limits);
  EXPECT_FALSE(guard.AddMemory(2 * 1024 * 1024));
  guard.RequestCancel();
  guard.Tick();
  EXPECT_EQ(guard.breach(), LimitBreach::kMemoryBudget);
}

TEST(RunGuardTest, ResetClearsBreachAndCounters) {
  RunLimits limits;
  limits.max_memory_mb = 1;
  RunGuard guard(limits);
  EXPECT_FALSE(guard.AddMemory(2 * 1024 * 1024));
  EXPECT_TRUE(guard.stopped());
  guard.Reset();
  EXPECT_FALSE(guard.stopped());
  EXPECT_EQ(guard.memory_bytes(), 0u);
  EXPECT_EQ(guard.peak_memory_bytes(), 0u);
  EXPECT_TRUE(guard.Tick());
  EXPECT_TRUE(guard.AddMemory(100));
}

TEST(RunGuardTest, CancelFromAnotherThreadIsObserved) {
  RunGuard guard;
  std::thread canceller([&guard] { guard.RequestCancel(); });
  canceller.join();
  EXPECT_FALSE(guard.Tick());
  EXPECT_EQ(guard.breach(), LimitBreach::kCancelled);
}

TEST(RunGuardTest, ElapsedMsIsMonotonic) {
  RunGuard guard;
  const double t0 = guard.elapsed_ms();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(guard.elapsed_ms(), t0);
}

TEST(LimitBreachTest, Names) {
  EXPECT_STREQ(LimitBreachName(LimitBreach::kNone), "none");
  EXPECT_STREQ(LimitBreachName(LimitBreach::kCancelled), "cancelled");
  EXPECT_STREQ(LimitBreachName(LimitBreach::kDeadline), "deadline");
  EXPECT_STREQ(LimitBreachName(LimitBreach::kPatternBudget),
               "pattern-budget");
  EXPECT_STREQ(LimitBreachName(LimitBreach::kMemoryBudget),
               "memory-budget");
}

}  // namespace
}  // namespace divexp
