#include "util/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace divexp {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch sw;
  const double a = sw.Seconds();
  const double b = sw.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, MeasuresSleep) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.Millis(), 15.0);
  EXPECT_LT(sw.Seconds(), 5.0);  // sanity upper bound
}

TEST(StopwatchTest, RestartResetsTheClock) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.Restart();
  EXPECT_LT(sw.Millis(), 15.0);
}

TEST(StopwatchTest, MillisMatchesSeconds) {
  Stopwatch sw;
  const double s = sw.Seconds();
  const double ms = sw.Millis();
  EXPECT_GE(ms, s * 1e3);
  EXPECT_LT(ms, s * 1e3 + 50.0);
}

}  // namespace
}  // namespace divexp
