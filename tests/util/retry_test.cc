// RetryPolicy unit tests: validation, deterministic backoff/jitter,
// timeout escalation, and the RetryWithBackoff loop with an injected
// fake sleeper.
#include "util/retry.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace divexp {
namespace {

TEST(RetryPolicyTest, DefaultPolicyIsValid) {
  EXPECT_TRUE(ValidateRetryPolicy(RetryPolicy{}).ok());
}

TEST(RetryPolicyTest, RejectsNonsensicalPolicies) {
  RetryPolicy p;
  p.backoff_multiplier = 0.5;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());

  p = RetryPolicy{};
  p.jitter = 1.0;  // must be strictly below 1
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
  p.jitter = -0.1;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());

  p = RetryPolicy{};
  p.max_backoff_ms = 5;
  p.initial_backoff_ms = 10;  // cap below the starting point
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());

  p = RetryPolicy{};
  p.timeout_escalation = 0.9;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());

  p = RetryPolicy{};
  p.attempt_timeout_ms = -1;
  EXPECT_FALSE(ValidateRetryPolicy(p).ok());
}

TEST(RetryBackoffTest, GrowsGeometricallyAndCaps) {
  RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.backoff_multiplier = 2.0;
  p.max_backoff_ms = 50;
  p.jitter = 0.0;  // exact values
  EXPECT_EQ(RetryBackoffMs(p, 0, 0), 10u);
  EXPECT_EQ(RetryBackoffMs(p, 0, 1), 20u);
  EXPECT_EQ(RetryBackoffMs(p, 0, 2), 40u);
  EXPECT_EQ(RetryBackoffMs(p, 0, 3), 50u);   // capped
  EXPECT_EQ(RetryBackoffMs(p, 0, 20), 50u);  // stays capped
}

TEST(RetryBackoffTest, JitterIsDeterministicAndBounded) {
  RetryPolicy p;
  p.initial_backoff_ms = 1000;
  p.jitter = 0.25;
  for (uint64_t token : {0ull, 1ull, 42ull}) {
    for (size_t retry = 0; retry < 4; ++retry) {
      const uint64_t a = RetryBackoffMs(p, token, retry);
      const uint64_t b = RetryBackoffMs(p, token, retry);
      EXPECT_EQ(a, b) << "same inputs must give the same backoff";
    }
  }
  // Jitter shaves at most `jitter` off the base and never adds.
  const uint64_t first = RetryBackoffMs(p, 7, 0);
  EXPECT_LE(first, 1000u);
  EXPECT_GE(first, 750u);
  // Different tokens draw from different jitter streams; at least one
  // of a handful must differ (all-equal would mean jitter is dead).
  bool any_diff = false;
  for (uint64_t token = 0; token < 8 && !any_diff; ++token) {
    any_diff = RetryBackoffMs(p, token, 0) != first;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RetryBackoffTest, SeedChangesTheSchedule) {
  RetryPolicy a;
  a.initial_backoff_ms = 100000;
  a.jitter = 0.5;
  RetryPolicy b = a;
  b.jitter_seed = a.jitter_seed + 1;
  bool any_diff = false;
  for (size_t retry = 0; retry < 8 && !any_diff; ++retry) {
    any_diff = RetryBackoffMs(a, 3, retry) != RetryBackoffMs(b, 3, retry);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RetryTimeoutTest, EscalatesPerAttemptAndSaturates) {
  RetryPolicy p;
  p.attempt_timeout_ms = 100;
  p.timeout_escalation = 2.0;
  EXPECT_EQ(RetryAttemptTimeoutMs(p, 0), 100);
  EXPECT_EQ(RetryAttemptTimeoutMs(p, 1), 200);
  EXPECT_EQ(RetryAttemptTimeoutMs(p, 2), 400);
  // Huge attempt index saturates instead of overflowing.
  EXPECT_GT(RetryAttemptTimeoutMs(p, 200), 0);
  // No deadline configured -> no deadline, regardless of attempt.
  p.attempt_timeout_ms = 0;
  EXPECT_EQ(RetryAttemptTimeoutMs(p, 5), 0);
}

TEST(RetryStatusTest, CancellationIsNotRetryable) {
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
  EXPECT_TRUE(IsRetryableStatus(Status::Internal("boom")));
  EXPECT_TRUE(IsRetryableStatus(Status::IOError("disk")));
  EXPECT_FALSE(IsRetryableStatus(Status::Cancelled("user said stop")));
}

TEST(RetryWithBackoffTest, SucceedsFirstTryWithoutSleeping) {
  std::vector<uint64_t> sleeps;
  const RetryOutcome out = RetryWithBackoff(
      RetryPolicy{}, 0, [](size_t) { return Status::OK(); },
      [&](uint64_t ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_TRUE(sleeps.empty());
}

TEST(RetryWithBackoffTest, RetriesUntilSuccess) {
  RetryPolicy p;
  p.max_retries = 5;
  p.jitter = 0.0;
  p.initial_backoff_ms = 10;
  std::vector<uint64_t> sleeps;
  size_t calls = 0;
  const RetryOutcome out = RetryWithBackoff(
      p, 9,
      [&](size_t attempt) {
        EXPECT_EQ(attempt, calls);
        ++calls;
        return calls < 3 ? Status::Internal("transient") : Status::OK();
      },
      [&](uint64_t ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(out.retries, 2u);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 10u);
  EXPECT_EQ(sleeps[1], 20u);
  EXPECT_EQ(out.backoff_ms_total, 30u);
}

TEST(RetryWithBackoffTest, ExhaustsBudgetAndReturnsLastError) {
  RetryPolicy p;
  p.max_retries = 2;
  size_t calls = 0;
  const RetryOutcome out = RetryWithBackoff(
      p, 0,
      [&](size_t) {
        ++calls;
        return Status::Internal("always fails " + std::to_string(calls));
      },
      [](uint64_t) {});
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(calls, 3u);  // 1 attempt + 2 retries
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(out.retries, 2u);
  EXPECT_NE(out.status.message().find("always fails 3"),
            std::string::npos);
}

TEST(RetryWithBackoffTest, DoesNotRetryCancellation) {
  RetryPolicy p;
  p.max_retries = 5;
  size_t calls = 0;
  const RetryOutcome out = RetryWithBackoff(
      p, 0,
      [&](size_t) {
        ++calls;
        return Status::Cancelled("stop");
      },
      [](uint64_t) {});
  EXPECT_EQ(out.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(out.retries, 0u);
}

TEST(RetryTimeoutTest, EscalationSaturatesNearOverflow) {
  RetryPolicy p;
  p.attempt_timeout_ms = 1000;
  p.timeout_escalation = 10.0;
  // 1000 * 10^40 overflows double->int64 conversion unless the policy
  // saturates; the cap is 1e15 ms (~31k years), far below INT64_MAX.
  const int64_t far = RetryAttemptTimeoutMs(p, 40);
  EXPECT_EQ(far, static_cast<int64_t>(1e15));
  // Saturation is sticky: later attempts stay pinned at the cap.
  EXPECT_EQ(RetryAttemptTimeoutMs(p, 400), far);
  // Pre-saturation attempts still escalate normally.
  EXPECT_EQ(RetryAttemptTimeoutMs(p, 0), 1000);
  EXPECT_EQ(RetryAttemptTimeoutMs(p, 3), 1000000);
}

TEST(RetryTimeoutTest, MaximalPolicyValuesDoNotOverflow) {
  RetryPolicy p;
  p.attempt_timeout_ms = std::numeric_limits<int64_t>::max();
  p.timeout_escalation = 1e9;
  const int64_t t = RetryAttemptTimeoutMs(p, 100);
  EXPECT_GT(t, 0);
  EXPECT_EQ(t, static_cast<int64_t>(1e15));
}

TEST(RetryBackoffTest, IndexBeyondRetryBudgetStaysCapped) {
  RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.backoff_multiplier = 3.0;
  p.max_backoff_ms = 500;
  p.jitter = 0.0;
  p.max_retries = 2;
  // Callers may probe indices past max_retries (e.g. logging the
  // would-be schedule); the curve must stay capped, not overflow the
  // double accumulation.
  EXPECT_EQ(RetryBackoffMs(p, 7, 2), 90u);
  EXPECT_EQ(RetryBackoffMs(p, 7, 10), 500u);
  EXPECT_EQ(RetryBackoffMs(p, 7, 1000), 500u);
}

TEST(RetryBackoffTest, JitterStaysInsideDocumentedBounds) {
  RetryPolicy p;
  p.initial_backoff_ms = 1000;
  p.backoff_multiplier = 1.0;
  p.max_backoff_ms = 1000;
  p.jitter = 0.25;
  for (uint64_t token = 0; token < 64; ++token) {
    for (size_t retry = 0; retry < 8; ++retry) {
      const uint64_t b = RetryBackoffMs(p, token, retry);
      // Documented contract: uniform in [(1 - jitter) * base, base].
      EXPECT_GE(b, 750u) << "token=" << token << " retry=" << retry;
      EXPECT_LE(b, 1000u) << "token=" << token << " retry=" << retry;
    }
  }
}

TEST(RetryBackoffTest, JitterIsDeterministicPerSeedTokenIndex) {
  RetryPolicy p;
  p.jitter = 0.5;
  p.initial_backoff_ms = 1000;
  p.max_backoff_ms = 4000;
  // Same (seed, token, retry) triple replays the same delay, so a
  // resumed run reproduces the original backoff schedule exactly.
  EXPECT_EQ(RetryBackoffMs(p, 42, 1), RetryBackoffMs(p, 42, 1));
  // Each coordinate perturbs the stream.
  RetryPolicy q = p;
  q.jitter_seed = p.jitter_seed + 1;
  const uint64_t base_case = RetryBackoffMs(p, 42, 1);
  EXPECT_TRUE(RetryBackoffMs(q, 42, 1) != base_case ||
              RetryBackoffMs(q, 43, 1) != RetryBackoffMs(p, 43, 1));
  EXPECT_NE(RetryBackoffMs(p, 42, 1), RetryBackoffMs(p, 43, 1));
}

TEST(RetryWithBackoffTest, ZeroRetriesMeansSingleAttempt) {
  RetryPolicy p;
  p.max_retries = 0;
  size_t calls = 0;
  const RetryOutcome out = RetryWithBackoff(
      p, 0,
      [&](size_t) {
        ++calls;
        return Status::Internal("no");
      },
      [](uint64_t) {});
  EXPECT_FALSE(out.status.ok());
  EXPECT_EQ(calls, 1u);
}

}  // namespace
}  // namespace divexp
