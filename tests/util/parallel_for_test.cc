// Unit tests for ParallelFor's range handling, in particular the empty
// range: n == 0 with any thread count must spawn no workers, invoke the
// body zero times, and return immediately.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace divexp {
namespace {

TEST(ParallelForTest, EmptyRangeInvokesNothing) {
  for (size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{64}}) {
    std::atomic<uint64_t> calls{0};
    std::mutex mu;
    std::set<std::thread::id> worker_ids;
    ParallelFor(threads, 0, [&](size_t) {
      calls.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      worker_ids.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(calls.load(), 0u) << "threads=" << threads;
    EXPECT_TRUE(worker_ids.empty()) << "threads=" << threads;
  }
}

TEST(ParallelForTest, SingleElementRunsInline) {
  // n == 1 short-circuits to a plain loop on the calling thread.
  const std::thread::id caller = std::this_thread::get_id();
  size_t calls = 0;
  ParallelFor(16, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (size_t n : {size_t{1}, size_t{2}, size_t{7}, size_t{100}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(threads, n, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, MoreThreadsThanWorkStillCoversRange) {
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  ParallelFor(32, 3, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, WorkerExceptionRethrownOnCaller) {
  EXPECT_THROW(
      ParallelFor(4, 100,
                  [&](size_t i) {
                    if (i == 42) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

}  // namespace
}  // namespace divexp
