// util/subprocess: the tree's only fork/exec site. Covers the spawn /
// status-pipe / reap lifecycle against real children (/bin/sh), exit
// classification (codes, signals, exec failure), argument validation,
// the EINTR-safe IO helpers, and the spawn/reap accounting the shard
// coordinator's zombie invariant is built on.
#include "util/subprocess.h"

#include <signal.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace divexp {
namespace {

std::string Sh(const std::string& script, ChildProcess* child) {
  auto spawned =
      SpawnWithStatusPipe({"/bin/sh", "-c", script}, /*child_status_fd=*/3);
  EXPECT_TRUE(spawned.ok()) << spawned.status().ToString();
  *child = spawned.value();
  return script;
}

std::string DrainPipe(int fd) {
  std::string out;
  char buf[256];
  for (;;) {
    auto n = ReadSome(fd, buf, sizeof(buf));
    EXPECT_TRUE(n.ok()) << n.status().ToString();
    if (!n.ok() || n.value() == 0) break;
    out.append(buf, n.value());
  }
  return out;
}

TEST(SubprocessTest, ChildWritesStatusPipeAndExitsZero) {
  ChildProcess child;
  Sh("printf hello >&3", &child);
  EXPECT_EQ(DrainPipe(child.status_fd), "hello");
  ::close(child.status_fd);
  auto exit = WaitForExit(child.pid);
  ASSERT_TRUE(exit.ok()) << exit.status().ToString();
  EXPECT_EQ(exit.value().kind, ExitKind::kExited);
  EXPECT_EQ(exit.value().exit_code, 0);
}

TEST(SubprocessTest, ChildExitSurfacesAsPipeEofThenExitCode) {
  ChildProcess child;
  Sh("exit 7", &child);
  // The parent's copy of the write end is closed inside spawn, so the
  // child dying is exactly one EOF — no dangling writer keeps the read
  // side open.
  EXPECT_EQ(DrainPipe(child.status_fd), "");
  ::close(child.status_fd);
  auto exit = WaitForExit(child.pid);
  ASSERT_TRUE(exit.ok());
  EXPECT_EQ(exit.value().kind, ExitKind::kExited);
  EXPECT_EQ(exit.value().exit_code, 7);
}

TEST(SubprocessTest, SigkilledChildReportsKSignaled) {
  ChildProcess child;
  // Signal readiness over the pipe first so the kill cannot race the
  // exec (a pre-exec SIGKILL would still be kSignaled, but make the
  // test deterministic about *which* process state is killed). `exec`
  // keeps it a single process: a forked `sleep` grandchild would
  // inherit the pipe's write end and hold the drain open long after
  // the shell died.
  Sh("printf r >&3; exec sleep 30", &child);
  char c = 0;
  auto n = ReadSome(child.status_fd, &c, 1);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 1u);
  ASSERT_TRUE(KillProcess(child.pid, SIGKILL).ok());
  EXPECT_EQ(DrainPipe(child.status_fd), "");
  ::close(child.status_fd);
  auto exit = WaitForExit(child.pid);
  ASSERT_TRUE(exit.ok());
  EXPECT_EQ(exit.value().kind, ExitKind::kSignaled);
  EXPECT_EQ(exit.value().term_signal, SIGKILL);
}

TEST(SubprocessTest, ExecFailureExitsOneTwentySeven) {
  auto spawned = SpawnWithStatusPipe({"/nonexistent/divexp-no-such-exe"},
                                     /*child_status_fd=*/3);
  ASSERT_TRUE(spawned.ok()) << spawned.status().ToString();
  EXPECT_EQ(DrainPipe(spawned.value().status_fd), "");
  ::close(spawned.value().status_fd);
  auto exit = WaitForExit(spawned.value().pid);
  ASSERT_TRUE(exit.ok());
  EXPECT_EQ(exit.value().kind, ExitKind::kExited);
  EXPECT_EQ(exit.value().exit_code, 127);
}

TEST(SubprocessTest, InvalidSpawnArgumentsAreRejected) {
  EXPECT_FALSE(SpawnWithStatusPipe({}, 3).ok());
  EXPECT_FALSE(
      SpawnWithStatusPipe({"/bin/sh", "-c", "true"}, /*child_status_fd=*/-1)
          .ok());
}

TEST(SubprocessTest, KillProcessRefusesNonPositivePids) {
  // pid 0 signals the whole process group and pid -1 "every process we
  // may signal"; a coordinator bug must never reach kill(2) with them.
  EXPECT_FALSE(KillProcess(0, SIGKILL).ok());
  EXPECT_FALSE(KillProcess(-1, SIGKILL).ok());
  EXPECT_FALSE(KillProcess(-42, SIGKILL).ok());
}

TEST(SubprocessTest, WaitForExitRejectsNonPositivePids) {
  EXPECT_FALSE(WaitForExit(0).ok());
  EXPECT_FALSE(WaitForExit(-1).ok());
}

TEST(SubprocessTest, WriteAllReadSomeRoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Below any plausible pipe capacity, so the single-threaded write
  // cannot block; short writes are exercised by the chunked reader.
  std::string payload;
  for (int i = 0; i < 4096; ++i) payload += static_cast<char>('a' + i % 26);
  ASSERT_TRUE(WriteAll(fds[1], payload.data(), payload.size()).ok());
  ::close(fds[1]);
  EXPECT_EQ(DrainPipe(fds[0]), payload);
  ::close(fds[0]);
}

TEST(SubprocessTest, WriteAllToClosedReaderFailsCleanly) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  // EPIPE path: the worker ignores SIGPIPE and relies on WriteAll
  // surfacing a Status instead. The test process may have SIGPIPE at
  // default disposition, so mask it around the write.
  struct sigaction ignore_action {};
  struct sigaction old_action {};
  ignore_action.sa_handler = SIG_IGN;
  ASSERT_EQ(sigaction(SIGPIPE, &ignore_action, &old_action), 0);
  const char byte = 'x';
  EXPECT_FALSE(WriteAll(fds[1], &byte, 1).ok());
  ASSERT_EQ(sigaction(SIGPIPE, &old_action, nullptr), 0);
  ::close(fds[1]);
}

TEST(SubprocessTest, SpawnAndReapCountsStayBalanced) {
  const uint64_t spawned_before = SubprocessSpawnCount();
  const uint64_t reaped_before = SubprocessReapCount();
  constexpr int kChildren = 5;
  std::vector<ChildProcess> children;
  for (int i = 0; i < kChildren; ++i) {
    ChildProcess child;
    Sh(i % 2 == 0 ? "exit 0" : "exit 3", &child);
    children.push_back(child);
  }
  EXPECT_EQ(SubprocessSpawnCount() - spawned_before,
            static_cast<uint64_t>(kChildren));
  for (const ChildProcess& child : children) {
    ::close(child.status_fd);
    EXPECT_TRUE(WaitForExit(child.pid).ok());
  }
  EXPECT_EQ(SubprocessReapCount() - reaped_before,
            static_cast<uint64_t>(kChildren));
  EXPECT_EQ(SubprocessSpawnCount() - spawned_before,
            SubprocessReapCount() - reaped_before);
}

TEST(SubprocessTest, SelfExecutablePathIsAbsoluteAndRunnable) {
  const std::string self = SelfExecutablePath();
  ASSERT_FALSE(self.empty());
  EXPECT_EQ(self.front(), '/');
  EXPECT_EQ(::access(self.c_str(), X_OK), 0) << self;
}

}  // namespace
}  // namespace divexp
