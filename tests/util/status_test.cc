#include "util/status.h"

#include <gtest/gtest.h>

namespace divexp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, LimitCodesRenderTheirNames) {
  EXPECT_EQ(Status::Cancelled("c").ToString(), "Cancelled: c");
  EXPECT_EQ(Status::DeadlineExceeded("d").ToString(),
            "DeadlineExceeded: d");
  EXPECT_EQ(Status::ResourceExhausted("r").ToString(),
            "ResourceExhausted: r");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

namespace {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  DIVEXP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UsesAssignOrReturn(int x) {
  DIVEXP_ASSIGN_OR_RETURN(int d, Doubled(x));
  return d + 1;
}

}  // namespace

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_FALSE(Propagates(-1).ok());
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsOrPropagates) {
  Result<int> ok = UsesAssignOrReturn(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  Result<int> err = UsesAssignOrReturn(-5);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace divexp
