// Tests for the debug-build lock-cycle detector (util/deadlock.h).
//
// Every test is skipped when the detector is compiled out (the
// default Release tier-1 build): there is nothing to exercise — the
// hooks do not exist. CI's sanitizer jobs configure with
// -DDIVEXP_DEADLOCK_DETECTOR=ON and run these for real.
#include "util/deadlock.h"

#include <thread>

#include <gtest/gtest.h>
#include "util/mutex.h"

namespace divexp {
namespace {

class DeadlockDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!deadlock::kDeadlockDetectorEnabled) {
      GTEST_SKIP() << "detector compiled out in this build";
    }
    deadlock::ResetForTest();
  }
};

TEST_F(DeadlockDetectorTest, CleanNestedOrderRunsQuietly) {
  Mutex a;
  Mutex b;
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  const deadlock::Stats stats = deadlock::GetStats();
  EXPECT_GE(stats.locks_tracked, 2u);
  EXPECT_GE(stats.edges, 1u);
}

TEST_F(DeadlockDetectorTest, InvertedOrderAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock la(a);
        }
      },
      "lock-order inversion");
}

TEST_F(DeadlockDetectorTest, InversionAcrossThreadsAborts) {
  // The graph is global: thread 1 records a->b, the main thread's b->a
  // closes the cycle even though neither thread deadlocks by itself.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a;
        Mutex b;
        std::thread t([&] {
          MutexLock la(a);
          MutexLock lb(b);
        });
        t.join();
        MutexLock lb(b);
        MutexLock la(a);
      },
      "lock-order inversion");
}

TEST_F(DeadlockDetectorTest, RecursiveAcquisitionAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a;
        MutexLock outer(a);
        a.Lock();  // deliberate self-deadlock, caught under EXPECT_DEATH
      },
      "recursive acquisition");
}

TEST_F(DeadlockDetectorTest, TryLockRecordsButNeverAborts) {
  Mutex a;
  Mutex b;
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    // Reverse ordering through TryLock: an inversion that backs off
    // cannot deadlock, so the detector records it without aborting.
    MutexLock lb(b);
    ASSERT_TRUE(a.TryLock());
    a.Unlock();
  }
  const deadlock::Stats stats = deadlock::GetStats();
  EXPECT_GE(stats.edges, 2u);
}

TEST_F(DeadlockDetectorTest, DestroyedMutexForgotten) {
  deadlock::ResetForTest();
  {
    Mutex a;
    Mutex b;
    MutexLock la(a);
    MutexLock lb(b);
  }
  // Both nodes were erased on destruction; a fresh pair reusing the
  // stack addresses must not inherit the old edge in reverse.
  const deadlock::Stats stats = deadlock::GetStats();
  EXPECT_EQ(stats.locks_tracked, 0u);
  EXPECT_EQ(stats.edges, 0u);
  Mutex c;
  Mutex d;
  MutexLock lc(c);
  MutexLock ld(d);
}

}  // namespace
}  // namespace divexp
