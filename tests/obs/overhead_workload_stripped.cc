// Stripped arm of the overhead workload: every obs call preprocessed
// out, the DIVEXP_OBS_STRIPPED-equivalent baseline.
#define DIVEXP_OVERHEAD_USE_OBS 0
#define DIVEXP_OVERHEAD_FN RunWorkloadStripped
#include "overhead_workload.inc"
