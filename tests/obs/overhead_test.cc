// Metrics-overhead regression test (ISSUE 2):
//  * with observability disabled at runtime, an instrumented mining
//    run over a fixed 50k-row synthetic table must stay within 3% of
//    the build-time-stripped baseline (min-of-N, alternating arms);
//  * with it enabled, snapshot totals must sum consistently — a child
//    span's aggregated time never exceeds its parent's.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/test_data.h"
#include "obs/overhead_workload.h"
#include "util/random.h"

// Sanitizers distort relative timings by an order of magnitude; the
// overhead bound is only meaningful in a plain build.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DIVEXP_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DIVEXP_UNDER_SANITIZER 1
#endif
#endif

namespace divexp {
namespace {

using obs_test::RunWorkloadInstrumented;
using obs_test::RunWorkloadStripped;
using obs_test::WorkloadInput;
using obs_test::WorkloadResult;

struct Fixture {
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
  TransactionDatabase db;
};

/// The fixed 50k-row synthetic table (seeded PRNG, built once).
const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    constexpr size_t kRows = 50000;
    constexpr size_t kAttrs = 8;
    constexpr int kDomain = 4;
    Rng rng(271828);
    std::vector<std::vector<int>> cells(kRows, std::vector<int>(kAttrs));
    std::vector<Outcome> outcomes(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      for (size_t a = 0; a < kAttrs; ++a) {
        cells[r][a] = static_cast<int>(rng.Below(kDomain));
      }
      const double u = rng.Uniform();
      outcomes[r] = u < 0.3   ? Outcome::kTrue
                    : u < 0.7 ? Outcome::kFalse
                              : Outcome::kBottom;
    }
    auto* f = new Fixture();
    f->dataset = testing::MakeEncoded(cells, std::vector<int>(kAttrs, kDomain));
    f->outcomes = std::move(outcomes);
    auto db = TransactionDatabase::Create(f->dataset, f->outcomes);
    DIVEXP_CHECK(db.ok());
    f->db = std::move(db).value();
    return f;
  }();
  return *fixture;
}

double TimeMs(WorkloadResult (*fn)(const WorkloadInput&),
              const WorkloadInput& in, WorkloadResult* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = fn(in);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TEST(MetricsOverheadTest, DisabledInstrumentationWithinThreePercent) {
#ifdef DIVEXP_UNDER_SANITIZER
  GTEST_SKIP() << "timing bound not meaningful under a sanitizer";
#else
  obs::SetTracingEnabled(false);
  const Fixture& f = GetFixture();
  WorkloadInput in;
  in.db = &f.db;
  in.cells = &f.dataset.cells;
  in.rows = f.dataset.num_rows;
  in.min_support = 0.01;

  // Warm-up (page in code + data, settle the allocator).
  WorkloadResult stripped_result;
  WorkloadResult instrumented_result;
  RunWorkloadStripped(in);
  RunWorkloadInstrumented(in);

  // The comparison uses min-of-N per arm, which discards samples that
  // caught a scheduler interruption. Two further noise defenses for
  // loaded CI machines: the run is retried a couple of times before a
  // verdict, and a batch whose two *fastest* baseline samples disagree
  // by >10% is considered unmeasurable (skip rather than flake).
  constexpr int kSamples = 7;
  constexpr int kAttempts = 3;
  double stripped_min = 0.0;
  double instrumented_min = 0.0;
  bool measured = false;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    std::vector<double> stripped_ms;
    std::vector<double> instrumented_ms;
    for (int i = 0; i < kSamples; ++i) {
      // Alternate arms so slow drift (thermal, background load) hits
      // both equally.
      stripped_ms.push_back(
          TimeMs(&RunWorkloadStripped, in, &stripped_result));
      instrumented_ms.push_back(
          TimeMs(&RunWorkloadInstrumented, in, &instrumented_result));
    }
    // Functional equivalence: both arms computed the same thing.
    ASSERT_EQ(instrumented_result.checksum, stripped_result.checksum);
    ASSERT_EQ(instrumented_result.patterns, stripped_result.patterns);
    ASSERT_GT(instrumented_result.patterns, 0u);

    std::sort(stripped_ms.begin(), stripped_ms.end());
    if (stripped_ms[1] > stripped_ms[0] * 1.10) continue;  // unmeasurable
    measured = true;
    stripped_min = stripped_ms[0];
    instrumented_min =
        *std::min_element(instrumented_ms.begin(), instrumented_ms.end());
    if (instrumented_min <= stripped_min * 1.03) break;  // pass
  }
  if (!measured) {
    GTEST_SKIP() << "timing too noisy to measure a 3% bound";
  }
  EXPECT_LE(instrumented_min, stripped_min * 1.03)
      << "disabled instrumentation overhead above 3%: instrumented "
      << instrumented_min << " ms vs stripped " << stripped_min << " ms";
#endif
}

TEST(MetricsOverheadTest, EnabledSnapshotIsConsistent) {
  obs::SetTracingEnabled(true);
  obs::TraceCollector::Default().Reset();
  const Fixture& f = GetFixture();
  WorkloadInput in;
  in.db = &f.db;
  in.cells = &f.dataset.cells;
  in.rows = f.dataset.num_rows;
  in.min_support = 0.1;
  RunWorkloadInstrumented(in);
  obs::SetTracingEnabled(false);

  const auto spans = obs::TraceCollector::Default().Snapshot();
  // Total time per span name (a name can appear under several parents).
  std::map<std::string, uint64_t> total_by_name;
  for (const obs::SpanStats& s : spans) total_by_name[s.name] += s.total_ns;
  ASSERT_TRUE(total_by_name.count("overhead.run"));
  ASSERT_TRUE(total_by_name.count("overhead.mine"));
  ASSERT_TRUE(total_by_name.count("overhead.chunk"));

  // Children of one parent are disjoint sub-intervals of the parent's
  // lifetime, so their aggregated time cannot exceed the parent's.
  std::map<std::string, uint64_t> child_sum_by_parent;
  for (const obs::SpanStats& s : spans) {
    if (!s.parent.empty()) child_sum_by_parent[s.parent] += s.total_ns;
    if (!s.parent.empty()) {
      ASSERT_TRUE(total_by_name.count(s.parent)) << s.parent;
      EXPECT_LE(s.total_ns, total_by_name[s.parent])
          << s.name << " under " << s.parent;
    }
  }
  for (const auto& [parent, child_sum] : child_sum_by_parent) {
    EXPECT_LE(child_sum, total_by_name[parent])
        << "children of " << parent << " exceed the parent total";
  }
}

TEST(MetricsOverheadTest, ExplorerSpansAndStagesAreConsistent) {
  obs::SetTracingEnabled(true);
  obs::TraceCollector::Default().Reset();
  const Fixture& f = GetFixture();

  ExplorerOptions opts;
  opts.min_support = 0.1;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(f.dataset, f.outcomes);
  obs::SetTracingEnabled(false);
  ASSERT_TRUE(table.ok());

  // Per-stage accounting made it into the run stats, with the mining
  // stages present and nonzero.
  const ExplorerRunStats& stats = explorer.last_run_stats();
  std::map<std::string, const obs::StageStats*> by_name;
  for (const obs::StageStats& s : stats.stages) by_name[s.name] = &s;
  for (const char* stage :
       {obs::kStageTransactions, obs::kStageMineBuild, obs::kStageMineGrow,
        obs::kStageDivergence}) {
    ASSERT_TRUE(by_name.count(stage)) << stage << " missing";
    EXPECT_GE(by_name[stage]->calls, 1u) << stage;
    EXPECT_GT(by_name[stage]->wall_ms, 0.0) << stage;
  }
  EXPECT_EQ(by_name[obs::kStageTransactions]->items, f.dataset.num_rows);
  EXPECT_GT(by_name[obs::kStageMineGrow]->items, 0u);

  // The explore span encloses its stage spans.
  const auto spans = obs::TraceCollector::Default().Snapshot();
  std::map<std::string, uint64_t> total_by_name;
  uint64_t child_of_explore_ns = 0;
  for (const obs::SpanStats& s : spans) {
    total_by_name[s.name] += s.total_ns;
    if (s.parent == "explore") child_of_explore_ns += s.total_ns;
  }
  ASSERT_TRUE(total_by_name.count("explore"));
  EXPECT_LE(child_of_explore_ns, total_by_name["explore"]);
}

}  // namespace
}  // namespace divexp
