// Unit tests for the observability JSON layer: writer escaping, the
// parser, and the two schema validators the CI artifacts depend on.
#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"

namespace divexp {
namespace obs {
namespace {

TEST(JsonQuoteTest, EscapesSpecials) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonQuote("line\n"), "\"line\\n\"");
  EXPECT_EQ(JsonQuote("back\\slash"), "\"back\\\\slash\"");
}

TEST(JsonWriterTest, RoundTripsThroughParser) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").Value("mine.grow");
  w.Key("count").Value(uint64_t{42});
  w.Key("ratio").Value(0.25);
  w.Key("negative").Value(int64_t{-3});
  w.Key("ok").Value(true);
  w.Key("list").BeginArray();
  w.Value(uint64_t{1}).Value(uint64_t{2});
  w.EndArray();
  w.Key("nested").BeginObject();
  w.Key("k").Value("v");
  w.EndObject();
  w.EndObject();

  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Find("name")->string, "mine.grow");
  EXPECT_EQ(parsed->Find("count")->number, 42.0);
  EXPECT_EQ(parsed->Find("ratio")->number, 0.25);
  EXPECT_EQ(parsed->Find("negative")->number, -3.0);
  EXPECT_TRUE(parsed->Find("ok")->boolean);
  ASSERT_TRUE(parsed->Find("list")->is_array());
  EXPECT_EQ(parsed->Find("list")->array.size(), 2u);
  EXPECT_EQ(parsed->Find("nested")->Find("k")->string, "v");
}

TEST(ParseJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_TRUE(ParseJson("  {\"a\": [1, 2.5, \"x\", null, false]} ").ok());
}

MetricsReport MakeReport() {
  MetricsReport report;
  report.run.tool = "divexp-cli";
  report.run.elapsed_ms = 12.5;
  report.run.patterns = 9;
  report.run.peak_memory_bytes = 4096;
  report.run.effective_min_support = 0.05;

  StageStats stage;
  stage.name = kStageMineGrow;
  stage.wall_ms = 3.5;
  stage.items = 9;
  stage.calls = 1;
  report.stages.push_back(stage);
  stage.name = kStageDivergence;
  stage.wall_ms = 0.5;
  report.stages.push_back(stage);

  report.metrics.counters["explore.runs"] = 1;
  report.metrics.gauges["explore.peak_memory_bytes"] = 4096;
  MetricsSnapshot::HistogramData hist;
  hist.count = 2;
  hist.sum = 10;
  hist.buckets = {0, 1, 1};
  report.metrics.histograms["explore.mining_ms"] = hist;

  SpanStats span;
  span.name = "explore";
  span.count = 1;
  span.total_ns = span.min_ns = span.max_ns = 1000;
  report.spans.push_back(span);
  return report;
}

TEST(ValidateMetricsJsonTest, AcceptsSerializedReport) {
  const std::string text = MetricsReportToJson(MakeReport());
  EXPECT_TRUE(ValidateMetricsJson(text).ok());
  EXPECT_TRUE(
      ValidateMetricsJson(text, {kStageMineGrow, kStageDivergence}).ok());
}

TEST(ValidateMetricsJsonTest, RejectsMissingRequiredStage) {
  const std::string text = MetricsReportToJson(MakeReport());
  const Status status = ValidateMetricsJson(text, {kStageCsvLoad});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find(kStageCsvLoad), std::string::npos);
}

TEST(ValidateMetricsJsonTest, RejectsZeroWallTimeForRequiredStage) {
  MetricsReport report = MakeReport();
  report.stages[0].wall_ms = 0.0;
  const std::string text = MetricsReportToJson(report);
  EXPECT_TRUE(ValidateMetricsJson(text).ok());
  EXPECT_FALSE(ValidateMetricsJson(text, {kStageMineGrow}).ok());
}

TEST(ValidateMetricsJsonTest, RequiresRecoveryFields) {
  // Schema v2: the run summary must carry the crash-recovery fields.
  const std::string good = MetricsReportToJson(MakeReport());
  for (const char* field :
       {"\"resumed_from_checkpoint\":false", "\"checkpoints_written\":0",
        "\"checkpoint_bytes\":0", "\"faults_injected\":0"}) {
    EXPECT_NE(good.find(field), std::string::npos) << field;
  }
  // Removing one of them must fail validation.
  std::string bad = good;
  const std::string victim = ",\"faults_injected\":0";
  ASSERT_NE(bad.find(victim), std::string::npos);
  bad.erase(bad.find(victim), victim.size());
  EXPECT_FALSE(ValidateMetricsJson(bad).ok());
}

TEST(ValidateMetricsJsonTest, RequiresShardFields) {
  // Schema v3: the run summary must carry the sharding fields.
  const std::string good = MetricsReportToJson(MakeReport());
  for (const char* field :
       {"\"shards\":1", "\"shards_failed\":0", "\"shards_dropped\":0",
        "\"shards_stale\":0", "\"retries_total\":0",
        "\"rows_covered_fraction\":1", "\"checkpoint_write_failures\":0"}) {
    EXPECT_NE(good.find(field), std::string::npos) << field;
  }
  std::string bad = good;
  const std::string victim = ",\"shards_failed\":0";
  ASSERT_NE(bad.find(victim), std::string::npos);
  bad.erase(bad.find(victim), victim.size());
  EXPECT_FALSE(ValidateMetricsJson(bad).ok());
}

TEST(ValidateMetricsJsonTest, RejectsCoverageOutsideUnitInterval) {
  MetricsReport report = MakeReport();
  report.run.rows_covered_fraction = 0.75;
  EXPECT_TRUE(ValidateMetricsJson(MetricsReportToJson(report)).ok());
  report.run.rows_covered_fraction = 1.5;
  EXPECT_FALSE(ValidateMetricsJson(MetricsReportToJson(report)).ok());
  report.run.rows_covered_fraction = -0.1;
  EXPECT_FALSE(ValidateMetricsJson(MetricsReportToJson(report)).ok());
}

TEST(ValidateMetricsJsonTest, RejectsTamperedDocuments) {
  const std::string good = MetricsReportToJson(MakeReport());
  // Not JSON at all.
  EXPECT_FALSE(ValidateMetricsJson("not json").ok());
  // Wrong schema version.
  std::string bad = good;
  const std::string version =
      "\"schema_version\":" + std::to_string(kMetricsSchemaVersion);
  ASSERT_NE(bad.find(version), std::string::npos);
  bad.replace(bad.find(version), version.size(), "\"schema_version\":99");
  EXPECT_FALSE(ValidateMetricsJson(bad).ok());
  // Empty document.
  EXPECT_FALSE(ValidateMetricsJson("{}").ok());
}

TEST(ValidateMetricsJsonTest, RequiresMinerAndKernelFields) {
  // Schema v4: the run summary names the resolved backend and kernel.
  const std::string good = MetricsReportToJson(MakeReport());
  for (const char* field :
       {"\"miner\":\"fpgrowth\"", "\"kernel\":\"scalar\""}) {
    EXPECT_NE(good.find(field), std::string::npos) << field;
  }
  for (const char* victim_cstr :
       {",\"miner\":\"fpgrowth\"", ",\"kernel\":\"scalar\""}) {
    std::string bad = good;
    const std::string victim = victim_cstr;
    ASSERT_NE(bad.find(victim), std::string::npos);
    bad.erase(bad.find(victim), victim.size());
    EXPECT_FALSE(ValidateMetricsJson(bad).ok()) << victim;
  }
}

TEST(ValidateBenchJsonTest, AcceptsWellFormedRecords) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Value(int64_t{kMetricsSchemaVersion});
  w.Key("benchmark").Value("fig6_runtime");
  w.Key("records").BeginArray();
  w.BeginObject();
  w.Key("name").Value("fig6/compas/s=0.05");
  w.Key("dataset").Value("compas");
  w.Key("min_support").Value(0.05);
  w.Key("wall_ms").Value(12.0);
  w.Key("mining_ms").Value(10.0);
  w.Key("divergence_ms").Value(1.5);
  w.Key("patterns").Value(uint64_t{250});
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_TRUE(ValidateBenchJson(w.str()).ok());
}

TEST(ValidateBenchJsonTest, RejectsEmptyOrIncompleteRecords) {
  EXPECT_FALSE(ValidateBenchJson("{}").ok());
  EXPECT_FALSE(ValidateBenchJson("not json").ok());
  // Record missing `patterns`.
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Value(int64_t{kMetricsSchemaVersion});
  w.Key("benchmark").Value("fig6_runtime");
  w.Key("records").BeginArray();
  w.BeginObject();
  w.Key("name").Value("x");
  w.Key("dataset").Value("y");
  w.Key("min_support").Value(0.05);
  w.Key("wall_ms").Value(1.0);
  w.Key("mining_ms").Value(0.5);
  w.Key("divergence_ms").Value(0.1);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_FALSE(ValidateBenchJson(w.str()).ok());
}

}  // namespace
}  // namespace obs
}  // namespace divexp
