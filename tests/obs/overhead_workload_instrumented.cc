// Instrumented arm of the overhead workload (runtime-disabled obs
// calls present, as shipped).
#define DIVEXP_OVERHEAD_USE_OBS 1
#define DIVEXP_OVERHEAD_FN RunWorkloadInstrumented
#include "overhead_workload.inc"
