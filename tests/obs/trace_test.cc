// Unit tests for scoped tracing spans: the runtime switch, nesting via
// the thread-local stack, early End(), and the collector's (name,
// parent) aggregation.
//
// Tracing state is process-global, so every test restores the disabled
// default and resets the collector.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.h"

namespace divexp {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTracingEnabled(false);
    TraceCollector::Default().Reset();
  }
  void TearDown() override {
    SetTracingEnabled(false);
    TraceCollector::Default().Reset();
  }
};

const SpanStats* FindEdge(const std::vector<SpanStats>& spans,
                          const std::string& name,
                          const std::string& parent) {
  for (const SpanStats& s : spans) {
    if (s.name == name && s.parent == parent) return &s;
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(TracingEnabled());
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
  }
  EXPECT_TRUE(TraceCollector::Default().Snapshot().empty());
}

TEST_F(TraceTest, NestedSpansRecordParentEdges) {
  SetTracingEnabled(true);
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
    { ScopedSpan inner("inner"); }
  }
  const auto spans = TraceCollector::Default().Snapshot();
  const SpanStats* outer = FindEdge(spans, "outer", "");
  const SpanStats* inner = FindEdge(spans, "inner", "outer");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  // Children completed strictly inside the parent's lifetime.
  EXPECT_LE(inner->total_ns, outer->total_ns);
  EXPECT_LE(inner->min_ns, inner->max_ns);
}

TEST_F(TraceTest, EndClosesEarlyAndIsIdempotent) {
  SetTracingEnabled(true);
  {
    ScopedSpan first("first");
    first.End();
    first.End();  // second End must not double-record
    ScopedSpan second("second");
  }
  const auto spans = TraceCollector::Default().Snapshot();
  const SpanStats* first = FindEdge(spans, "first", "");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->count, 1u);
  // `second` opened after `first` ended, so it is a root, not a child.
  EXPECT_NE(FindEdge(spans, "second", ""), nullptr);
  EXPECT_EQ(FindEdge(spans, "second", "first"), nullptr);
}

TEST_F(TraceTest, ResetDropsSpans) {
  SetTracingEnabled(true);
  { ScopedSpan span("x"); }
  EXPECT_FALSE(TraceCollector::Default().Snapshot().empty());
  TraceCollector::Default().Reset();
  EXPECT_TRUE(TraceCollector::Default().Snapshot().empty());
}

TEST_F(TraceTest, FormatSpanTreeShowsHierarchy) {
  SetTracingEnabled(true);
  {
    ScopedSpan outer("explore");
    { ScopedSpan inner("mine.grow"); }
  }
  const std::string tree =
      FormatSpanTree(TraceCollector::Default().Snapshot());
  EXPECT_NE(tree.find("explore"), std::string::npos);
  EXPECT_NE(tree.find("mine.grow"), std::string::npos);
  // The child is indented under its parent.
  EXPECT_LT(tree.find("explore"), tree.find("mine.grow"));
}

TEST_F(TraceTest, CollectorRecordAggregatesByEdge) {
  TraceCollector collector;
  collector.Record("a", "", 10);
  collector.Record("a", "", 30);
  collector.Record("a", "p", 5);
  const auto spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanStats* root = FindEdge(spans, "a", "");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->count, 2u);
  EXPECT_EQ(root->total_ns, 40u);
  EXPECT_EQ(root->min_ns, 10u);
  EXPECT_EQ(root->max_ns, 30u);
  const SpanStats* child = FindEdge(spans, "a", "p");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->total_ns, 5u);
}

}  // namespace
}  // namespace obs
}  // namespace divexp
