// Unit tests for the metrics primitives: sharded counters (including
// concurrent adds), gauges with monotone max updates, log2-bucket
// histograms, and the registry's stable-pointer / snapshot contract.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace divexp {
namespace obs {
namespace {

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 6u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndUpdateMax) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(5);  // lower: no effect
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(42);
  EXPECT_EQ(g.Value(), 42);
  g.Set(-3);  // Set is last-writer-wins, not monotone
  EXPECT_EQ(g.Value(), -3);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(GaugeTest, ConcurrentUpdateMaxKeepsMaximum) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 1; t <= 8; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 5000; ++i) g.UpdateMax(t * 10000 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.Value(), 8 * 10000 + 4999);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i holds v with 2^i <= v+1 < 2^(i+1): bucket 0 = {0},
  // bucket 1 = {1, 2}, bucket 2 = {3..6}, ...
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 6u);

  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(6);
  h.Record(7);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 6 + 7);
}

TEST(HistogramTest, HugeValuesLandInLastBucket) {
  Histogram h;
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, ApproxQuantile) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(0);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  // 90% of the mass is at 0; the p50 bound is bucket 0's bound.
  EXPECT_EQ(h.ApproxQuantile(0.5), 0u);
  // The p99 bound must cover the 1000s: its bucket upper bound >= 1000.
  EXPECT_GE(h.ApproxQuantile(0.99), 1000u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistryTest, StablePointersAndSnapshot) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
  c->Add(7);
  registry.GetGauge("test.gauge")->Set(11);
  registry.GetHistogram("test.histo")->Record(3);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.count("test.counter"), 1u);
  EXPECT_EQ(snap.counters.at("test.counter"), 7u);
  EXPECT_EQ(snap.gauges.at("test.gauge"), 11);
  EXPECT_EQ(snap.histograms.at("test.histo").count, 1u);
  EXPECT_EQ(snap.histograms.at("test.histo").sum, 3u);

  // ResetAll zeroes values but keeps the instruments (cached pointers
  // stay valid).
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
  EXPECT_EQ(registry.Snapshot().counters.at("test.counter"), 0u);
}

TEST(MetricsRegistryTest, ConcurrentGetReturnsOneInstance) {
  MetricsRegistry registry;
  std::vector<Counter*> seen(8, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.GetCounter("race.counter");
      c->Increment();
      seen[t] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), 8u);
}

TEST(MetricsRegistryTest, DefaultIsProcessWide) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace obs
}  // namespace divexp
