// The overhead regression test's workload, compiled twice from
// overhead_workload.inc: once with the observability calls present
// (runtime-disabled, the shipping configuration) and once with them
// preprocessed out entirely (the DIVEXP_OBS_STRIPPED baseline the
// trace.h cost model refers to). Comparing the two binariless-identical
// mining runs bounds the cost of disabled instrumentation.
#ifndef DIVEXP_TESTS_OBS_OVERHEAD_WORKLOAD_H_
#define DIVEXP_TESTS_OBS_OVERHEAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "fpm/transactions.h"

namespace divexp {
namespace obs_test {

struct WorkloadInput {
  const TransactionDatabase* db = nullptr;
  /// Raw cell values scanned by the instrumented per-chunk loop.
  const std::vector<uint32_t>* cells = nullptr;
  size_t rows = 0;
  double min_support = 0.1;
};

struct WorkloadResult {
  uint64_t checksum = 0;   ///< scan checksum (anti-dead-code)
  uint64_t patterns = 0;   ///< mined pattern count
};

/// Instrumented variant: pipeline-density obs calls (spans, stage
/// timers, counters) around a row scan plus a full FP-growth mine.
WorkloadResult RunWorkloadInstrumented(const WorkloadInput& in);

/// Identical computation with every obs call preprocessed out.
WorkloadResult RunWorkloadStripped(const WorkloadInput& in);

}  // namespace obs_test
}  // namespace divexp

#endif  // DIVEXP_TESTS_OBS_OVERHEAD_WORKLOAD_H_
