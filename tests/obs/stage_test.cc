// Unit tests for per-stage accounting: StageStats merging, the
// collector's merge-by-name / first-seen-order contract, the RAII
// StageTimer, and the stderr table renderer.
#include <gtest/gtest.h>

#include <string>

#include "obs/stage.h"

namespace divexp {
namespace obs {
namespace {

StageStats Make(const std::string& name, double wall_ms, uint64_t items,
                uint64_t peak_bytes, uint64_t guard_checks) {
  StageStats s;
  s.name = name;
  s.wall_ms = wall_ms;
  s.items = items;
  s.peak_bytes = peak_bytes;
  s.guard_checks = guard_checks;
  s.calls = 1;
  return s;
}

TEST(StageStatsTest, MergeSumsAndKeepsPeak) {
  StageStats a = Make("mine.grow", 2.0, 100, 4096, 7);
  const StageStats b = Make("mine.grow", 3.0, 50, 1024, 3);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.wall_ms, 5.0);
  EXPECT_EQ(a.items, 150u);
  EXPECT_EQ(a.peak_bytes, 4096u);  // max, not sum
  EXPECT_EQ(a.guard_checks, 10u);
  EXPECT_EQ(a.calls, 2u);
}

TEST(StageCollectorTest, MergesByNamePreservingFirstSeenOrder) {
  StageCollector c;
  c.Record(Make("load.csv", 1.0, 10, 0, 0));
  c.Record(Make("mine.grow", 2.0, 20, 100, 1));
  c.Record(Make("load.csv", 4.0, 5, 0, 0));
  ASSERT_EQ(c.stages().size(), 2u);
  EXPECT_EQ(c.stages()[0].name, "load.csv");
  EXPECT_EQ(c.stages()[1].name, "mine.grow");
  EXPECT_DOUBLE_EQ(c.stages()[0].wall_ms, 5.0);
  EXPECT_EQ(c.stages()[0].calls, 2u);
  EXPECT_DOUBLE_EQ(c.TotalWallMs(), 7.0);
}

TEST(StageCollectorTest, MergeFromAnotherRun) {
  StageCollector run;
  run.Record(Make("load.csv", 1.0, 10, 0, 0));
  StageCollector explorer;
  explorer.Record(Make("mine.build", 2.0, 10, 50, 0));
  explorer.Record(Make("mine.grow", 3.0, 8, 70, 2));
  run.MergeFrom(explorer.stages());
  ASSERT_EQ(run.stages().size(), 3u);
  EXPECT_EQ(run.stages()[2].name, "mine.grow");
  run.Reset();
  EXPECT_TRUE(run.empty());
}

TEST(StageTimerTest, RecordsOnDestruction) {
  StageCollector c;
  {
    StageTimer t(&c, kStageMineBuild);
    t.AddItems(42);
    t.SetPeakBytes(100);
    t.SetPeakBytes(60);  // lower: keeps the peak
    t.AddGuardChecks(5);
  }
  ASSERT_EQ(c.stages().size(), 1u);
  const StageStats& s = c.stages()[0];
  EXPECT_EQ(s.name, kStageMineBuild);
  EXPECT_EQ(s.items, 42u);
  EXPECT_EQ(s.peak_bytes, 100u);
  EXPECT_EQ(s.guard_checks, 5u);
  EXPECT_EQ(s.calls, 1u);
  EXPECT_GE(s.wall_ms, 0.0);
}

TEST(StageTimerTest, FinishIsIdempotent) {
  StageCollector c;
  {
    StageTimer t(&c, kStageMineGrow);
    t.AddItems(1);
    t.Finish();
    t.Finish();          // no double record
    t.AddItems(999);     // after Finish: dropped
  }                      // destructor: no double record either
  ASSERT_EQ(c.stages().size(), 1u);
  EXPECT_EQ(c.stages()[0].calls, 1u);
  EXPECT_EQ(c.stages()[0].items, 1u);
}

TEST(StageTimerTest, NullCollectorIsSafe) {
  StageTimer t(nullptr, kStageDivergence);
  t.AddItems(3);
  t.Finish();  // must not crash
}

TEST(FormatStageTableTest, ContainsEveryStageRow) {
  StageCollector c;
  c.Record(Make(kStageCsvLoad, 1.25, 1000, 2048, 0));
  c.Record(Make(kStageMineGrow, 10.5, 240, 1 << 20, 512));
  const std::string table = FormatStageTable(c.stages());
  EXPECT_NE(table.find(kStageCsvLoad), std::string::npos);
  EXPECT_NE(table.find(kStageMineGrow), std::string::npos);
  EXPECT_NE(table.find("1000"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace divexp
