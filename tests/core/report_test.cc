#include "core/report.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/test_explore.h"

namespace divexp {
namespace {

using testing::ExploreForTest;

PatternTable MakeTable() {
  return ExploreForTest(
      {{0, 0}, {0, 0}, {0, 1}, {0, 1}, {1, 0}, {1, 0}, {1, 1}, {1, 1}},
      {2, 2}, "FFFTTTTB", 0.1);
}

TEST(FormatPatternRowsTest, HeaderAndRowsRendered) {
  const PatternTable table = MakeTable();
  const auto top = table.TopK(3);
  const std::string out = FormatPatternRows(table, top, "d_FPR");
  EXPECT_NE(out.find("Itemset"), std::string::npos);
  EXPECT_NE(out.find("d_FPR"), std::string::npos);
  EXPECT_NE(out.find("Sup"), std::string::npos);
  // One header + 3 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(FormatContributionsTest, SortedWithBars) {
  const PatternTable table = MakeTable();
  auto contributions = ShapleyContributions(table, Itemset{1, 3});
  ASSERT_TRUE(contributions.ok());
  const std::string out = FormatContributions(table, *contributions);
  EXPECT_NE(out.find("a0=v1"), std::string::npos);
  EXPECT_NE(out.find("a1=v1"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);  // at least one bar
}

TEST(FormatCorrectiveItemsTest, RendersColumns) {
  const PatternTable table = MakeTable();
  std::vector<CorrectiveItem> items(1);
  items[0].base = Itemset{1};
  items[0].item = 3;
  items[0].base_divergence = 0.4;
  items[0].with_divergence = 0.1;
  items[0].factor = 0.3;
  items[0].t = 2.5;
  const std::string out = FormatCorrectiveItems(table, items, 0);
  EXPECT_NE(out.find("corr. item"), std::string::npos);
  EXPECT_NE(out.find("a0=v1"), std::string::npos);
  EXPECT_NE(out.find("a1=v1"), std::string::npos);
  EXPECT_NE(out.find("0.300"), std::string::npos);
}

TEST(FormatCorrectiveItemsTest, TopKLimitsRows) {
  const PatternTable table = MakeTable();
  std::vector<CorrectiveItem> items(5);
  for (auto& c : items) {
    c.base = Itemset{1};
    c.item = 3;
  }
  const std::string out = FormatCorrectiveItems(table, items, 2);
  // Header + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(FormatGlobalDivergenceTest, SortedByGlobal) {
  const PatternTable table = MakeTable();
  const auto globals = ComputeGlobalItemDivergence(table);
  const std::string out = FormatGlobalDivergence(table, globals);
  EXPECT_NE(out.find("global"), std::string::npos);
  EXPECT_NE(out.find("individual"), std::string::npos);
  // All four items present.
  EXPECT_NE(out.find("a0=v0"), std::string::npos);
  EXPECT_NE(out.find("a1=v1"), std::string::npos);
}

TEST(FormatGlobalDivergenceTest, TopKTruncates) {
  const PatternTable table = MakeTable();
  const auto globals = ComputeGlobalItemDivergence(table);
  const std::string out = FormatGlobalDivergence(table, globals, 2);
  // Header + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

}  // namespace
}  // namespace divexp
