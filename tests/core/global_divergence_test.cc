#include "core/global_divergence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_explore.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::ExploreForTest;

// A dataset where every complete itemset is frequent, so the
// approximation (Eq. 8) coincides with the exact definition (Eq. 6) and
// Theorem 4.1's properties must hold exactly.
PatternTable MakeFullTable(uint64_t seed, size_t attrs, int domain,
                           size_t copies_per_cell) {
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  Rng rng(seed);
  std::vector<int> cell(attrs, 0);
  // Enumerate the full grid; add `copies_per_cell` rows per cell.
  const size_t total =
      static_cast<size_t>(std::pow(domain, static_cast<double>(attrs)));
  for (size_t idx = 0; idx < total; ++idx) {
    size_t rem = idx;
    for (size_t a = 0; a < attrs; ++a) {
      cell[a] = static_cast<int>(rem % domain);
      rem /= domain;
    }
    for (size_t k = 0; k < copies_per_cell; ++k) {
      rows.push_back(cell);
      outcomes += rng.Bernoulli(0.3 + 0.4 * cell[0]) ? 'T' : 'F';
    }
  }
  return ExploreForTest(rows, std::vector<int>(attrs, domain), outcomes,
                        1e-9);
}

TEST(GlobalDivergenceTest, EfficiencyTheorem41) {
  // Σ_items Δ^g(item) == (1/|I_A|) Σ_{I ∈ I_A} Δ(I)  (Eq. 7).
  for (uint64_t seed : {1u, 5u}) {
    const PatternTable table = MakeFullTable(seed, 3, 2, 4);
    const auto globals = ComputeGlobalItemDivergence(table);
    double lhs = 0.0;
    for (const auto& g : globals) lhs += g.global;

    double rhs = 0.0;
    size_t complete = 0;
    for (size_t i = 0; i < table.size(); ++i) {
      if (table.row(i).items.size() == 3) {
        rhs += table.row(i).divergence;
        ++complete;
      }
    }
    ASSERT_EQ(complete, 8u);  // 2^3 complete itemsets all frequent
    rhs /= static_cast<double>(complete);
    EXPECT_NEAR(lhs, rhs, 1e-9);
  }
}

TEST(GlobalDivergenceTest, EfficiencyWithMixedDomains) {
  // Same theorem with m_a = {3, 2}: checks the 1/Π m_b normalization.
  const PatternTable table = MakeFullTable(3, 2, 3, 5);
  const auto globals = ComputeGlobalItemDivergence(table);
  double lhs = 0.0;
  for (const auto& g : globals) lhs += g.global;
  double rhs = 0.0;
  size_t complete = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    if (table.row(i).items.size() == 2) {
      rhs += table.row(i).divergence;
      ++complete;
    }
  }
  ASSERT_EQ(complete, 9u);
  EXPECT_NEAR(lhs, rhs / static_cast<double>(complete), 1e-9);
}

TEST(GlobalDivergenceTest, NullAttributeGetsZero) {
  // Attribute a1 never changes the divergence -> Δ^g(a1=·) == 0
  // (null-items property of Theorem 4.1). Build outcomes that depend
  // only on a0, identically distributed across a1 values.
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  for (int a0 : {0, 1}) {
    for (int a1 : {0, 1}) {
      for (int k = 0; k < 6; ++k) {
        rows.push_back({a0, a1});
        outcomes += ((a0 == 1) == (k < 4)) ? 'T' : 'F';
      }
    }
  }
  const PatternTable table = ExploreForTest(rows, {2, 2}, outcomes, 1e-9);
  const auto globals = ComputeGlobalItemDivergence(table);
  for (const auto& g : globals) {
    if (table.catalog().item(g.item).attribute == 1) {
      EXPECT_NEAR(g.global, 0.0, 1e-12);
    } else {
      EXPECT_GT(std::fabs(g.global), 1e-6);
    }
  }
}

TEST(GlobalDivergenceTest, IndividualFieldMatchesSingleItemDivergence) {
  const PatternTable table = MakeFullTable(9, 3, 2, 3);
  const auto globals = ComputeGlobalItemDivergence(table);
  for (const auto& g : globals) {
    auto idx = table.Find(Itemset{g.item});
    ASSERT_TRUE(idx.has_value());
    EXPECT_DOUBLE_EQ(g.individual, table.row(*idx).divergence);
  }
}

TEST(GlobalDivergenceTest, SingleItemMatchesGeneralItemsetForm) {
  const PatternTable table = MakeFullTable(11, 3, 2, 3);
  const auto globals = ComputeGlobalItemDivergence(table);
  for (const auto& g : globals) {
    auto general = GlobalItemsetDivergence(table, Itemset{g.item});
    ASSERT_TRUE(general.ok());
    EXPECT_NEAR(*general, g.global, 1e-12);
  }
}

TEST(GlobalDivergenceTest, Theorem42IndividualAndGlobalDiffer) {
  // Miniature of the paper's artificial construction (Theorem 4.2 /
  // Fig. 4): "false positives" (T) occur only on half of the a0 == a1
  // instances — the other half are ⊥ (they are true positives) — and
  // mismatched instances are F. Individually each item has exactly zero
  // divergence (f = 1/3 everywhere), yet jointly the items drive
  // divergence, which only the global measure attributes to them.
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  for (int a0 : {0, 1}) {
    for (int a1 : {0, 1}) {
      for (int k = 0; k < 10; ++k) {
        rows.push_back({a0, a1});
        if (a0 == a1) {
          outcomes += (k < 5) ? 'T' : 'B';
        } else {
          outcomes += 'F';
        }
      }
    }
  }
  const PatternTable table = ExploreForTest(rows, {2, 2}, outcomes, 1e-9);
  const auto globals = ComputeGlobalItemDivergence(table);
  for (const auto& g : globals) {
    EXPECT_NEAR(g.individual, 0.0, 1e-12)
        << table.catalog().ItemName(g.item);
    EXPECT_GT(std::fabs(g.global), 0.01)
        << table.catalog().ItemName(g.item);
  }
}

TEST(GlobalDivergenceTest, LinearityInTheOutcome) {
  // Theorem 4.1 linearity, specialized: global divergence of the
  // accuracy outcome equals −1 × that of the error outcome (ACC = 1−ER
  // pointwise, so Δ_ACC = −Δ_ER on every itemset).
  Rng rng(21);
  std::vector<std::vector<int>> rows;
  std::vector<int> preds, truths;
  for (int i = 0; i < 160; ++i) {
    rows.push_back({static_cast<int>(rng.Below(2)),
                    static_cast<int>(rng.Below(2))});
    preds.push_back(rng.Bernoulli(0.5) ? 1 : 0);
    truths.push_back(rng.Bernoulli(0.4 + 0.3 * rows.back()[0]) ? 1 : 0);
  }
  const EncodedDataset ds = testing::MakeEncoded(rows, {2, 2});
  ExplorerOptions opts;
  opts.min_support = 1e-9;
  DivergenceExplorer explorer(opts);
  auto err = explorer.Explore(ds, preds, truths, Metric::kErrorRate);
  auto acc = explorer.Explore(ds, preds, truths, Metric::kAccuracy);
  ASSERT_TRUE(err.ok());
  ASSERT_TRUE(acc.ok());
  const auto g_err = ComputeGlobalItemDivergence(*err);
  const auto g_acc = ComputeGlobalItemDivergence(*acc);
  ASSERT_EQ(g_err.size(), g_acc.size());
  for (size_t i = 0; i < g_err.size(); ++i) {
    EXPECT_NEAR(g_err[i].global, -g_acc[i].global, 1e-9);
  }
}

TEST(GlobalItemsetDivergenceTest, ErrorsOnBadInput) {
  const PatternTable table = MakeFullTable(1, 2, 2, 2);
  EXPECT_FALSE(GlobalItemsetDivergence(table, Itemset{}).ok());
  EXPECT_FALSE(GlobalItemsetDivergence(table, Itemset{999}).ok());
}

}  // namespace
}  // namespace divexp
