#include "core/shapley.h"

#include <gtest/gtest.h>

#include <numeric>

#include "testing/test_explore.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::ExploreForTest;

PatternTable MakeRandomTable(uint64_t seed, size_t rows = 120,
                             size_t attrs = 3, int domain = 2,
                             double support = 0.01) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells(rows, std::vector<int>(attrs));
  std::string outcomes;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < attrs; ++a) {
      cells[r][a] = static_cast<int>(rng.Below(domain));
    }
    const double u = rng.Uniform();
    outcomes += (u < 0.35 ? 'T' : u < 0.8 ? 'F' : 'B');
  }
  return ExploreForTest(cells, std::vector<int>(attrs, domain), outcomes,
                        support);
}

TEST(ShapleyTest, EfficiencyAxiomContributionsSumToDivergence) {
  // Fundamental Shapley property: sum of contributions equals Δ(I).
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    const PatternTable table = MakeRandomTable(seed);
    for (size_t i = 0; i < table.size(); ++i) {
      const PatternRow& row = table.row(i);
      if (row.items.empty()) continue;
      auto contributions = ShapleyContributions(table, row.items);
      ASSERT_TRUE(contributions.ok());
      double sum = 0.0;
      for (const auto& c : *contributions) sum += c.contribution;
      EXPECT_NEAR(sum, row.divergence, 1e-9)
          << table.ItemsetName(row.items);
    }
  }
}

TEST(ShapleyTest, SingleItemContributionIsItsDivergence) {
  const PatternTable table = MakeRandomTable(7);
  for (size_t i = 0; i < table.size(); ++i) {
    const PatternRow& row = table.row(i);
    if (row.items.size() != 1) continue;
    auto contributions = ShapleyContributions(table, row.items);
    ASSERT_TRUE(contributions.ok());
    ASSERT_EQ(contributions->size(), 1u);
    EXPECT_NEAR((*contributions)[0].contribution, row.divergence, 1e-12);
  }
}

TEST(ShapleyTest, SymmetryForInterchangeableItems) {
  // Two perfectly correlated attributes: their items contribute equally
  // (Shapley symmetry axiom).
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const int v = rng.Bernoulli(0.5) ? 1 : 0;
    rows.push_back({v, v});
    // Divergent outcomes when v == 1.
    outcomes += (v == 1 ? (rng.Bernoulli(0.9) ? 'T' : 'F')
                        : (rng.Bernoulli(0.3) ? 'T' : 'F'));
  }
  const PatternTable table = ExploreForTest(rows, {2, 2}, outcomes, 0.05);
  // Itemset {a0=v1, a1=v1} = items {1, 3}.
  auto contributions = ShapleyContributions(table, Itemset{1, 3});
  ASSERT_TRUE(contributions.ok());
  ASSERT_EQ(contributions->size(), 2u);
  EXPECT_NEAR((*contributions)[0].contribution,
              (*contributions)[1].contribution, 1e-12);
}

TEST(ShapleyTest, NullItemGetsZero) {
  // Attribute a1 is pure noise with identical outcome distribution on
  // both values; construct deterministic rows so Δ is exactly equal
  // with and without the a1 items.
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  // For each a0 value, outcomes identical across a1 values.
  for (int a0 : {0, 1}) {
    for (int a1 : {0, 1}) {
      // a0=1 gets 3 T + 1 F, a0=0 gets 1 T + 3 F, regardless of a1.
      for (int k = 0; k < 4; ++k) {
        rows.push_back({a0, a1});
        const bool t = (a0 == 1) ? (k < 3) : (k < 1);
        outcomes += t ? 'T' : 'F';
      }
    }
  }
  const PatternTable table = ExploreForTest(rows, {2, 2}, outcomes, 0.05);
  // In {a0=v1, a1=v0} (items {1, 2}), a1=v0 adds nothing.
  auto contributions = ShapleyContributions(table, Itemset{1, 2});
  ASSERT_TRUE(contributions.ok());
  for (const auto& c : *contributions) {
    if (c.item == 2) EXPECT_NEAR(c.contribution, 0.0, 1e-12);
  }
}

TEST(ShapleyTest, MatchesManualTwoItemFormula) {
  // For |I| = 2: Δ(α|I) = 0.5·[Δ(α) − Δ(∅)] + 0.5·[Δ(I) − Δ(β)].
  const PatternTable table = MakeRandomTable(13);
  for (size_t i = 0; i < table.size(); ++i) {
    const PatternRow& row = table.row(i);
    if (row.items.size() != 2) continue;
    auto contributions = ShapleyContributions(table, row.items);
    ASSERT_TRUE(contributions.ok());
    const uint32_t alpha = row.items[0];
    const uint32_t beta = row.items[1];
    const double expected =
        0.5 * (*table.Divergence(Itemset{alpha})) +
        0.5 * (row.divergence - *table.Divergence(Itemset{beta}));
    EXPECT_NEAR((*contributions)[0].contribution, expected, 1e-12);
  }
}

TEST(ShapleyTest, InfrequentItemsetRejected) {
  const PatternTable table = MakeRandomTable(17);
  EXPECT_FALSE(ShapleyContributions(table, Itemset{0, 99}).ok());
}

TEST(MarginalContributionTest, MatchesDivergenceDifference) {
  const PatternTable table = MakeRandomTable(19);
  for (size_t i = 0; i < table.size(); ++i) {
    const PatternRow& row = table.row(i);
    if (row.items.size() < 2) continue;
    for (uint32_t alpha : row.items) {
      auto marginal = MarginalContribution(table, row.items, alpha);
      ASSERT_TRUE(marginal.ok());
      const double expected =
          row.divergence - *table.Divergence(Without(row.items, alpha));
      EXPECT_NEAR(*marginal, expected, 1e-12);
    }
  }
}

}  // namespace
}  // namespace divexp
