// Differential tests for the lattice-indexed divergence post-pass: the
// allocation-free link-walking implementations must agree with the
// pre-index reference algorithms (temporary itemsets + hash lookups)
// on seeded random tables across supports and thread counts, and
// guard-truncated tables must expose consistent partial links.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/corrective.h"
#include "core/explorer.h"
#include "core/global_divergence.h"
#include "core/pruning.h"
#include "core/shapley.h"
#include "stats/special.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

// ---------------------------------------------------------------------
// Reference implementations: the pre-index algorithms, kept verbatim
// (modulo naming) as the differential oracle.

Result<std::vector<ItemContribution>> RefShapley(const PatternTable& table,
                                                 const Itemset& items) {
  if (!table.Contains(items)) {
    return Status::NotFound("itemset not in pattern table");
  }
  const size_t n = items.size();
  const double n_fact = Factorial(n);
  std::vector<ItemContribution> out;
  out.reserve(n);
  Status failure = Status::OK();
  for (uint32_t alpha : items) {
    const Itemset rest = Without(items, alpha);
    double value = 0.0;
    ForEachSubset(rest, [&](const Itemset& j) {
      if (!failure.ok()) return;
      const Result<double> with = table.Divergence(With(j, alpha));
      const Result<double> without = table.Divergence(j);
      if (!with.ok()) {
        failure = with.status();
        return;
      }
      if (!without.ok()) {
        failure = without.status();
        return;
      }
      const double weight =
          Factorial(j.size()) * Factorial(n - j.size() - 1) / n_fact;
      value += weight * (*with - *without);
    });
    if (!failure.ok()) return failure;
    out.push_back(ItemContribution{alpha, value});
  }
  return out;
}

std::vector<CorrectiveItem> RefCorrective(const PatternTable& table,
                                          const CorrectiveOptions& options) {
  std::vector<CorrectiveItem> out;
  for (const PatternRow& row : table.rows()) {
    const Itemset& k = row.items;
    if (k.empty()) continue;
    for (uint32_t alpha : k) {
      const Itemset base = Without(k, alpha);
      if (base.empty()) continue;
      const Result<double> base_div = table.Divergence(base);
      DIVEXP_CHECK(base_div.ok());
      const double factor =
          std::fabs(*base_div) - std::fabs(row.divergence);
      if (factor <= options.min_factor || factor <= 0.0) continue;
      CorrectiveItem c;
      c.base = base;
      c.item = alpha;
      c.base_divergence = *base_div;
      c.with_divergence = row.divergence;
      c.factor = factor;
      c.t = row.t;
      out.push_back(std::move(c));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CorrectiveItem& a, const CorrectiveItem& b) {
                     if (a.factor != b.factor) return a.factor > b.factor;
                     if (a.base.size() != b.base.size()) {
                       return a.base.size() < b.base.size();
                     }
                     if (a.base != b.base) return a.base < b.base;
                     return a.item < b.item;
                   });
  if (options.top_k != 0 && out.size() > options.top_k) {
    out.resize(options.top_k);
  }
  return out;
}

std::vector<size_t> RefPrune(const PatternTable& table, double epsilon) {
  std::vector<size_t> kept;
  for (size_t i = 0; i < table.size(); ++i) {
    const PatternRow& row = table.row(i);
    if (row.items.empty()) continue;
    bool redundant = false;
    for (uint32_t alpha : row.items) {
      const Itemset base = Without(row.items, alpha);
      const Result<double> base_div = table.Divergence(base);
      DIVEXP_CHECK(base_div.ok());
      if (std::fabs(row.divergence - *base_div) <= epsilon) {
        redundant = true;
        break;
      }
    }
    if (!redundant) kept.push_back(i);
  }
  return kept;
}

Result<double> RefGlobalItemset(const PatternTable& table,
                                const Itemset& itemset) {
  const ItemCatalog& catalog = table.catalog();
  const size_t num_attrs = catalog.num_attributes();
  const std::vector<long double> fact = Factorials(num_attrs);
  const size_t i_len = itemset.size();
  long double total = 0.0L;
  for (const PatternRow& row : table.rows()) {
    const Itemset& k = row.items;
    if (k.size() < i_len || !IsSubset(itemset, k)) continue;
    long double prod = 1.0L;
    for (uint32_t id : k) {
      prod *= static_cast<long double>(
          catalog.domain_size(catalog.item(id).attribute));
    }
    const size_t b = k.size() - i_len;
    const long double weight =
        fact[b] * fact[num_attrs - b - i_len] / (fact[num_attrs] * prod);
    Itemset j;
    j.reserve(b);
    std::set_difference(k.begin(), k.end(), itemset.begin(),
                        itemset.end(), std::back_inserter(j));
    DIVEXP_ASSIGN_OR_RETURN(double dj, table.Divergence(j));
    total += weight * (row.divergence - dj);
  }
  return static_cast<double>(total);
}

// ---------------------------------------------------------------------
// Random-table fixture.

struct RandomCase {
  EncodedDataset encoded;
  std::vector<Outcome> outcomes;
};

RandomCase MakeRandomCase(uint64_t seed, size_t num_rows = 400) {
  Rng rng(seed);
  const std::vector<int> domains = {2, 3, 2, 4};
  std::vector<std::vector<int>> rows(num_rows,
                                     std::vector<int>(domains.size()));
  std::string outcomes;
  for (auto& row : rows) {
    for (size_t a = 0; a < domains.size(); ++a) {
      row[a] = static_cast<int>(rng.Int(0, domains[a] - 1));
    }
    const double p = 0.2 + 0.5 * (row[0] == 1) - 0.1 * (row[2] == 0);
    const double roll = rng.Uniform();
    outcomes += roll < 0.15 ? 'B' : (rng.Bernoulli(p) ? 'T' : 'F');
  }
  RandomCase c;
  c.encoded = MakeEncoded(rows, domains);
  c.outcomes = testing::OutcomesFromString(outcomes);
  return c;
}

PatternTable ExploreCase(const RandomCase& c, double support,
                         size_t num_threads = 1) {
  ExplorerOptions opts;
  opts.min_support = support;
  opts.num_threads = num_threads;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(c.encoded, c.outcomes);
  DIVEXP_CHECK(table.ok());
  return std::move(table).value();
}

const uint64_t kSeeds[] = {7, 23, 101};
const double kSupports[] = {0.01, 0.05, 0.2};
const size_t kThreads[] = {1, 2, 8};

// ---------------------------------------------------------------------

TEST(PostpassDifferentialTest, GlobalDivergenceMatchesReference) {
  for (uint64_t seed : kSeeds) {
    const RandomCase c = MakeRandomCase(seed);
    for (double support : kSupports) {
      const PatternTable table = ExploreCase(c, support);
      GlobalDivergenceOptions legacy_opts;
      legacy_opts.use_lattice_index = false;
      const auto legacy = ComputeGlobalItemDivergence(table, legacy_opts);
      for (size_t threads : kThreads) {
        GlobalDivergenceOptions gopts;
        gopts.num_threads = threads;
        const auto indexed = ComputeGlobalItemDivergence(table, gopts);
        ASSERT_EQ(indexed.size(), legacy.size());
        for (size_t i = 0; i < legacy.size(); ++i) {
          EXPECT_EQ(indexed[i].item, legacy[i].item);
          EXPECT_NEAR(indexed[i].global, legacy[i].global, 1e-12)
              << "seed=" << seed << " s=" << support
              << " threads=" << threads << " item=" << i;
          EXPECT_EQ(indexed[i].individual, legacy[i].individual);
        }
      }
    }
  }
}

TEST(PostpassDifferentialTest, ShapleyMatchesReference) {
  for (uint64_t seed : kSeeds) {
    const RandomCase c = MakeRandomCase(seed);
    const PatternTable table = ExploreCase(c, 0.05);
    size_t checked = 0;
    for (size_t i = 0; i < table.size(); ++i) {
      const Itemset& items = table.row(i).items;
      if (items.size() < 2) continue;
      const auto got = ShapleyContributions(table, items);
      const auto want = RefShapley(table, items);
      ASSERT_TRUE(got.ok() && want.ok());
      ASSERT_EQ(got->size(), want->size());
      for (size_t a = 0; a < want->size(); ++a) {
        EXPECT_EQ((*got)[a].item, (*want)[a].item);
        EXPECT_NEAR((*got)[a].contribution, (*want)[a].contribution,
                    1e-12);
      }
      ++checked;
    }
    EXPECT_GT(checked, 10u);
  }
}

TEST(PostpassDifferentialTest, MarginalContributionMatchesReference) {
  const RandomCase c = MakeRandomCase(kSeeds[0]);
  const PatternTable table = ExploreCase(c, 0.05);
  for (size_t i = 0; i < table.size(); ++i) {
    const PatternRow& row = table.row(i);
    if (row.items.empty()) continue;
    for (uint32_t alpha : row.items) {
      const auto got = MarginalContribution(table, row.items, alpha);
      ASSERT_TRUE(got.ok());
      const double want =
          row.divergence - *table.Divergence(Without(row.items, alpha));
      EXPECT_NEAR(*got, want, 1e-12);
    }
  }
}

TEST(PostpassDifferentialTest, CorrectiveItemsMatchReference) {
  for (uint64_t seed : kSeeds) {
    const RandomCase c = MakeRandomCase(seed);
    for (double support : kSupports) {
      const PatternTable table = ExploreCase(c, support);
      for (const double min_factor : {0.0, 0.02}) {
        CorrectiveOptions copts;
        copts.min_factor = min_factor;
        const auto got = FindCorrectiveItems(table, copts);
        const auto want = RefCorrective(table, copts);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(got[i].base, want[i].base);
          EXPECT_EQ(got[i].item, want[i].item);
          EXPECT_EQ(got[i].base_divergence, want[i].base_divergence);
          EXPECT_EQ(got[i].with_divergence, want[i].with_divergence);
          EXPECT_EQ(got[i].factor, want[i].factor);
          EXPECT_EQ(got[i].t, want[i].t);
        }
      }
    }
  }
}

TEST(PostpassDifferentialTest, PruningMatchesReference) {
  for (uint64_t seed : kSeeds) {
    const RandomCase c = MakeRandomCase(seed);
    const PatternTable table = ExploreCase(c, 0.02);
    for (const double eps : {0.0, 0.01, 0.05, 0.5}) {
      EXPECT_EQ(RedundancyPrune(table, eps), RefPrune(table, eps));
    }
  }
}

TEST(PostpassDifferentialTest, GlobalItemsetDivergenceMatchesReference) {
  const RandomCase c = MakeRandomCase(kSeeds[1]);
  const PatternTable table = ExploreCase(c, 0.05);
  size_t checked = 0;
  for (size_t i = 0; i < table.size() && checked < 50; ++i) {
    const Itemset& items = table.row(i).items;
    if (items.empty()) continue;
    const auto got = GlobalItemsetDivergence(table, items);
    const auto want = RefGlobalItemset(table, items);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_NEAR(*got, *want, 1e-12) << ItemsetDebugString(items);
    ++checked;
  }
  EXPECT_GT(checked, 20u);
}

// The table build itself must not depend on the thread count: stats
// and links are pure per-row computations.
TEST(PostpassDifferentialTest, CreateDeterministicAcrossThreads) {
  const RandomCase c = MakeRandomCase(kSeeds[2]);
  const PatternTable base = ExploreCase(c, 0.02, 1);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    const PatternTable other = ExploreCase(c, 0.02, threads);
    ASSERT_EQ(other.size(), base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(other.row(i).items, base.row(i).items);
      EXPECT_EQ(other.row(i).support, base.row(i).support);
      EXPECT_EQ(other.row(i).rate, base.row(i).rate);
      EXPECT_EQ(other.row(i).divergence, base.row(i).divergence);
      EXPECT_EQ(other.row(i).t, base.row(i).t);
      const auto a = base.SubsetLinks(i);
      const auto b = other.SubsetLinks(i);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
  }
}

// The links of every complete table must point at exactly the
// immediate subsets.
TEST(PostpassDifferentialTest, SubsetLinksAreImmediateSubsets) {
  const RandomCase c = MakeRandomCase(kSeeds[0]);
  const PatternTable table = ExploreCase(c, 0.05);
  for (size_t i = 0; i < table.size(); ++i) {
    const Itemset& items = table.row(i).items;
    const auto links = table.SubsetLinks(i);
    ASSERT_EQ(links.size(), items.size());
    for (size_t j = 0; j < items.size(); ++j) {
      ASSERT_NE(links[j], PatternTable::kNoLink);
      EXPECT_EQ(table.row(links[j]).items, Without(items, items[j]));
    }
  }
}

// ---------------------------------------------------------------------
// Allocation accounting: the indexed hot paths must not materialize a
// single Itemset.

TEST(PostpassAllocationTest, GlobalDivergenceHotPathIsAllocationFree) {
  const RandomCase c = MakeRandomCase(kSeeds[0]);
  const PatternTable table = ExploreCase(c, 0.01);
  for (size_t threads : kThreads) {
    GlobalDivergenceOptions gopts;
    gopts.num_threads = threads;
    const uint64_t before = ItemsetAllocCount();
    const auto globals = ComputeGlobalItemDivergence(table, gopts);
    EXPECT_EQ(ItemsetAllocCount(), before) << "threads=" << threads;
    ASSERT_FALSE(globals.empty());
  }
}

TEST(PostpassAllocationTest, PruneAndMarginalAreAllocationFree) {
  const RandomCase c = MakeRandomCase(kSeeds[1]);
  const PatternTable table = ExploreCase(c, 0.02);
  uint64_t before = ItemsetAllocCount();
  const auto kept = RedundancyPrune(table, 0.01);
  EXPECT_EQ(ItemsetAllocCount(), before);
  ASSERT_FALSE(kept.empty());

  const Itemset& items = table.row(kept.back()).items;
  before = ItemsetAllocCount();
  const auto marginal = MarginalContribution(table, items, items[0]);
  EXPECT_EQ(ItemsetAllocCount(), before);
  EXPECT_TRUE(marginal.ok());
}

// ---------------------------------------------------------------------
// Guard-truncated tables: links must be consistent (point at the right
// row or kNoLink), and every consumer must degrade gracefully.

ItemCatalog MakeTwoAttrCatalog() {
  ItemCatalog catalog;
  catalog.AddAttribute("a0", {"v0", "v1"});  // items 0, 1
  catalog.AddAttribute("a1", {"v0", "v1"});  // items 2, 3
  return catalog;
}

// Mined input listing the superset BEFORE its subsets, so a mid-pass
// truncation drops subsets of a kept pattern.
std::vector<MinedPattern> SupersetFirstPatterns() {
  std::vector<MinedPattern> mined;
  mined.push_back({Itemset{}, OutcomeCounts{5, 5, 0}});
  mined.push_back({Itemset{0, 2}, OutcomeCounts{3, 1, 0}});
  mined.push_back({Itemset{2}, OutcomeCounts{4, 2, 0}});
  mined.push_back({Itemset{0}, OutcomeCounts{4, 3, 0}});
  return mined;
}

// Pre-charges a 1 MiB guard so only `keep_bytes` of budget remain for
// the pattern rows, making the truncation point deterministic.
RunLimits OneMiBLimit() {
  RunLimits limits;
  limits.max_memory_mb = 1;
  return limits;
}

void LeaveBudget(RunGuard& guard, uint64_t keep_bytes) {
  DIVEXP_CHECK(guard.AddMemory((1ULL << 20) - keep_bytes));
}

uint64_t FootprintBytes(size_t items) {
  return sizeof(PatternRow) + 2 * items * sizeof(uint32_t);
}

TEST(TruncatedLatticeTest, AllLinksMissing) {
  RunGuard guard(OneMiBLimit());
  LeaveBudget(guard, FootprintBytes(2) + 4);
  auto table = PatternTable::Create(SupersetFirstPatterns(),
                                    MakeTwoAttrCatalog(), 10, &guard);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(guard.stopped());
  EXPECT_EQ(guard.breach(), LimitBreach::kMemoryBudget);
  ASSERT_EQ(table->size(), 2u);  // root + {0, 2}

  const auto links = table->SubsetLinks(1);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], PatternTable::kNoLink);
  EXPECT_EQ(links[1], PatternTable::kNoLink);

  // Consumers degrade instead of crashing.
  const auto globals = ComputeGlobalItemDivergence(*table);
  for (const auto& g : globals) EXPECT_EQ(g.global, 0.0);
  EXPECT_EQ(RedundancyPrune(*table, 0.0).size(), 1u);
  EXPECT_TRUE(FindCorrectiveItems(*table).empty());
  EXPECT_FALSE(ShapleyContributions(*table, Itemset{0, 2}).ok());
  EXPECT_FALSE(MarginalContribution(*table, Itemset{0, 2}, 0).ok());
  EXPECT_FALSE(GlobalItemsetDivergence(*table, Itemset{0, 2}).ok());
}

TEST(TruncatedLatticeTest, PartialLinksStayConsistent) {
  // Room for {0,2} and {2}; {0} is dropped.
  RunGuard guard(OneMiBLimit());
  LeaveBudget(guard, FootprintBytes(2) + FootprintBytes(1) + 4);
  auto table = PatternTable::Create(SupersetFirstPatterns(),
                                    MakeTwoAttrCatalog(), 10, &guard);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->size(), 3u);  // root + {0, 2} + {2}

  const auto links = table->SubsetLinks(1);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], 2u);  // {0,2} \ {0} = {2}, present at row 2
  EXPECT_EQ(links[1], PatternTable::kNoLink);  // {0} was dropped
  // {2}'s immediate subset is the root.
  const auto single_links = table->SubsetLinks(2);
  ASSERT_EQ(single_links.size(), 1u);
  EXPECT_EQ(single_links[0], 0u);

  // The marginal over the surviving link works; the dropped one errors.
  EXPECT_TRUE(MarginalContribution(*table, Itemset{0, 2}, 0).ok());
  EXPECT_FALSE(MarginalContribution(*table, Itemset{0, 2}, 2).ok());
}

// The fixed memory accounting charges the itemset heap bytes, not just
// sizeof(PatternRow).
TEST(PatternTableAccountingTest, ChargesPerRowFootprint) {
  const RandomCase c = MakeRandomCase(kSeeds[0]);
  ExplorerOptions opts;
  opts.min_support = 0.05;
  RunGuard guard;  // unlimited: accounting only
  opts.guard = &guard;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(c.encoded, c.outcomes);
  ASSERT_TRUE(table.ok());
  uint64_t items_bytes = 0;
  for (size_t i = 1; i < table->size(); ++i) {
    items_bytes += table->row(i).items.size() * sizeof(uint32_t);
  }
  // Strictly more than the old sizeof(PatternRow)-only accounting.
  EXPECT_GE(guard.peak_memory_bytes(),
            (table->size() - 1) * sizeof(PatternRow) + items_bytes);
}

}  // namespace
}  // namespace divexp
