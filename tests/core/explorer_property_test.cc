// Parameterized invariants of the full exploration, swept over
// metric × miner × support on randomized datasets.
#include <gtest/gtest.h>

#include <cmath>

#include "core/explorer.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

struct Labeled {
  EncodedDataset dataset;
  std::vector<int> preds;
  std::vector<int> truths;
};

Labeled MakeLabeled(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells;
  Labeled out;
  for (int r = 0; r < 250; ++r) {
    cells.push_back({static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(2)),
                     static_cast<int>(rng.Below(2))});
    out.preds.push_back(
        rng.Bernoulli(0.3 + 0.2 * cells.back()[0]) ? 1 : 0);
    out.truths.push_back(
        rng.Bernoulli(0.35 + 0.15 * cells.back()[1]) ? 1 : 0);
  }
  out.dataset = MakeEncoded(cells, {3, 2, 2});
  return out;
}

using Param = std::tuple<Metric, MinerKind, double>;

class ExplorerPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(ExplorerPropertyTest, TableInvariantsHold) {
  const auto [metric, miner, support] = GetParam();
  const Labeled data = MakeLabeled(42);
  ExplorerOptions opts;
  opts.min_support = support;
  opts.miner = miner;
  DivergenceExplorer explorer(opts);
  auto table =
      explorer.Explore(data.dataset, data.preds, data.truths, metric);
  ASSERT_TRUE(table.ok());

  const uint64_t min_count =
      MinCount(support, data.dataset.num_rows);
  for (size_t i = 0; i < table->size(); ++i) {
    const PatternRow& row = table->row(i);
    // Rates and divergences stay in range.
    EXPECT_GE(row.rate, 0.0);
    EXPECT_LE(row.rate, 1.0);
    EXPECT_LE(std::fabs(row.divergence), 1.0);
    EXPECT_GE(row.t, 0.0);
    // Support semantics.
    if (!row.items.empty()) {
      EXPECT_GE(row.counts.total(), min_count);
    }
    EXPECT_EQ(row.counts.total(),
              data.dataset.Cover(row.items).size());
    // Downward closure: every subset is frequent too.
    for (uint32_t alpha : row.items) {
      EXPECT_TRUE(table->Contains(Without(row.items, alpha)));
    }
    // Items refer to distinct attributes.
    for (size_t a = 1; a < row.items.size(); ++a) {
      EXPECT_NE(
          table->catalog().item(row.items[a]).attribute,
          table->catalog().item(row.items[a - 1]).attribute);
    }
  }
  // The empty itemset anchors Δ = 0.
  auto root = table->Divergence(Itemset{});
  ASSERT_TRUE(root.ok());
  EXPECT_DOUBLE_EQ(*root, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExplorerPropertyTest,
    ::testing::Combine(
        ::testing::Values(Metric::kFalsePositiveRate,
                          Metric::kFalseNegativeRate,
                          Metric::kErrorRate, Metric::kAccuracy,
                          Metric::kPositivePredictiveValue,
                          Metric::kFalseOmissionRate),
        ::testing::Values(MinerKind::kFpGrowth, MinerKind::kApriori,
                          MinerKind::kEclat),
        ::testing::Values(0.02, 0.1, 0.3)));

class MetricDualityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricDualityTest, ComplementMetricsAreNegations) {
  // ACC = 1 − ER, TPR = 1 − FNR, TNR = 1 − FPR pointwise, so the
  // divergences must be exact negations on every pattern.
  const Labeled data = MakeLabeled(GetParam());
  ExplorerOptions opts;
  opts.min_support = 0.03;
  DivergenceExplorer explorer(opts);
  const std::pair<Metric, Metric> duals[] = {
      {Metric::kAccuracy, Metric::kErrorRate},
      {Metric::kTruePositiveRate, Metric::kFalseNegativeRate},
      {Metric::kTrueNegativeRate, Metric::kFalsePositiveRate},
      {Metric::kPositivePredictiveValue, Metric::kFalseDiscoveryRate},
      {Metric::kNegativePredictiveValue, Metric::kFalseOmissionRate},
  };
  for (const auto& [a, b] : duals) {
    auto ta = explorer.Explore(data.dataset, data.preds, data.truths, a);
    auto tb = explorer.Explore(data.dataset, data.preds, data.truths, b);
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    ASSERT_EQ(ta->size(), tb->size());
    for (size_t i = 0; i < ta->size(); ++i) {
      auto db = tb->Divergence(ta->row(i).items);
      ASSERT_TRUE(db.ok());
      EXPECT_NEAR(ta->row(i).divergence, -*db, 1e-12)
          << MetricName(a) << " vs " << MetricName(b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricDualityTest,
                         ::testing::Values(1u, 7u, 23u));

class SupportMonotonicityTest
    : public ::testing::TestWithParam<MinerKind> {};

TEST_P(SupportMonotonicityTest, HigherSupportYieldsSubsetOfPatterns) {
  const Labeled data = MakeLabeled(5);
  DivergenceExplorer low(ExplorerOptions{
      .min_support = 0.02, .miner = GetParam(), .max_length = 0});
  DivergenceExplorer high(ExplorerOptions{
      .min_support = 0.2, .miner = GetParam(), .max_length = 0});
  auto tlow = low.Explore(data.dataset, data.preds, data.truths,
                          Metric::kErrorRate);
  auto thigh = high.Explore(data.dataset, data.preds, data.truths,
                            Metric::kErrorRate);
  ASSERT_TRUE(tlow.ok());
  ASSERT_TRUE(thigh.ok());
  EXPECT_LE(thigh->size(), tlow->size());
  for (size_t i = 0; i < thigh->size(); ++i) {
    const PatternRow& row = thigh->row(i);
    auto j = tlow->Find(row.items);
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(tlow->row(*j).counts, row.counts);
    EXPECT_DOUBLE_EQ(tlow->row(*j).divergence, row.divergence);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMiners, SupportMonotonicityTest,
                         ::testing::Values(MinerKind::kFpGrowth,
                                           MinerKind::kApriori,
                                           MinerKind::kEclat));

}  // namespace
}  // namespace divexp
