#include "core/outcome.h"

#include <gtest/gtest.h>

namespace divexp {
namespace {

TEST(EvalOutcomeTest, FalsePositiveRateMatchesPaperDefinition) {
  // Paper §3.2: T if u ∧ ¬v, F if ¬u ∧ ¬v, ⊥ if v.
  EXPECT_EQ(EvalOutcome(Metric::kFalsePositiveRate, true, false),
            Outcome::kTrue);
  EXPECT_EQ(EvalOutcome(Metric::kFalsePositiveRate, false, false),
            Outcome::kFalse);
  EXPECT_EQ(EvalOutcome(Metric::kFalsePositiveRate, true, true),
            Outcome::kBottom);
  EXPECT_EQ(EvalOutcome(Metric::kFalsePositiveRate, false, true),
            Outcome::kBottom);
}

TEST(EvalOutcomeTest, FalseNegativeRate) {
  EXPECT_EQ(EvalOutcome(Metric::kFalseNegativeRate, false, true),
            Outcome::kTrue);
  EXPECT_EQ(EvalOutcome(Metric::kFalseNegativeRate, true, true),
            Outcome::kFalse);
  EXPECT_EQ(EvalOutcome(Metric::kFalseNegativeRate, true, false),
            Outcome::kBottom);
}

TEST(EvalOutcomeTest, ErrorAndAccuracyAreComplements) {
  for (bool u : {false, true}) {
    for (bool v : {false, true}) {
      const Outcome err = EvalOutcome(Metric::kErrorRate, u, v);
      const Outcome acc = EvalOutcome(Metric::kAccuracy, u, v);
      EXPECT_NE(err, Outcome::kBottom);
      EXPECT_NE(acc, Outcome::kBottom);
      EXPECT_NE(err == Outcome::kTrue, acc == Outcome::kTrue);
    }
  }
}

TEST(EvalOutcomeTest, TprTnrConditionOnTruth) {
  EXPECT_EQ(EvalOutcome(Metric::kTruePositiveRate, true, true),
            Outcome::kTrue);
  EXPECT_EQ(EvalOutcome(Metric::kTruePositiveRate, false, true),
            Outcome::kFalse);
  EXPECT_EQ(EvalOutcome(Metric::kTruePositiveRate, true, false),
            Outcome::kBottom);
  EXPECT_EQ(EvalOutcome(Metric::kTrueNegativeRate, false, false),
            Outcome::kTrue);
  EXPECT_EQ(EvalOutcome(Metric::kTrueNegativeRate, true, false),
            Outcome::kFalse);
  EXPECT_EQ(EvalOutcome(Metric::kTrueNegativeRate, false, true),
            Outcome::kBottom);
}

TEST(EvalOutcomeTest, PrecisionFamilyConditionsOnPrediction) {
  EXPECT_EQ(EvalOutcome(Metric::kPositivePredictiveValue, true, true),
            Outcome::kTrue);
  EXPECT_EQ(EvalOutcome(Metric::kPositivePredictiveValue, true, false),
            Outcome::kFalse);
  EXPECT_EQ(EvalOutcome(Metric::kPositivePredictiveValue, false, true),
            Outcome::kBottom);
  EXPECT_EQ(EvalOutcome(Metric::kFalseDiscoveryRate, true, false),
            Outcome::kTrue);
  EXPECT_EQ(EvalOutcome(Metric::kFalseOmissionRate, false, true),
            Outcome::kTrue);
  EXPECT_EQ(EvalOutcome(Metric::kFalseOmissionRate, true, true),
            Outcome::kBottom);
  EXPECT_EQ(EvalOutcome(Metric::kNegativePredictiveValue, false, false),
            Outcome::kTrue);
}

TEST(EvalOutcomeTest, RatesIgnoreTheOtherLabel) {
  EXPECT_EQ(EvalOutcome(Metric::kPositiveRate, false, true),
            Outcome::kTrue);
  EXPECT_EQ(EvalOutcome(Metric::kPositiveRate, true, false),
            Outcome::kFalse);
  EXPECT_EQ(EvalOutcome(Metric::kPredictedPositiveRate, true, false),
            Outcome::kTrue);
  EXPECT_EQ(EvalOutcome(Metric::kPredictedPositiveRate, false, true),
            Outcome::kFalse);
}

TEST(ComputeOutcomesTest, Vectorized) {
  auto out = ComputeOutcomes(Metric::kFalsePositiveRate, {1, 0, 1},
                             {0, 0, 1});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], Outcome::kTrue);
  EXPECT_EQ((*out)[1], Outcome::kFalse);
  EXPECT_EQ((*out)[2], Outcome::kBottom);
}

TEST(ComputeOutcomesTest, LengthMismatchRejected) {
  EXPECT_FALSE(ComputeOutcomes(Metric::kAccuracy, {1}, {1, 0}).ok());
}

TEST(ComputeOutcomesTest, NonBinaryLabelRejected) {
  EXPECT_FALSE(ComputeOutcomes(Metric::kAccuracy, {2}, {0}).ok());
  EXPECT_FALSE(ComputeOutcomes(Metric::kAccuracy, {1}, {-1}).ok());
}

TEST(MetricNameTest, ShortIdentifiers) {
  EXPECT_STREQ(MetricName(Metric::kFalsePositiveRate), "FPR");
  EXPECT_STREQ(MetricName(Metric::kFalseNegativeRate), "FNR");
  EXPECT_STREQ(MetricName(Metric::kErrorRate), "ER");
  EXPECT_STREQ(MetricName(Metric::kAccuracy), "ACC");
}

}  // namespace
}  // namespace divexp
