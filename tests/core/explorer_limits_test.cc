// Resource-governed exploration: option validation, the three
// degradation modes (fail / truncate / escalate) and external-guard
// cancellation.
#include <gtest/gtest.h>

#include <vector>

#include "core/explorer.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

EncodedDataset MakeRandomDataset(uint64_t seed, size_t rows,
                                 std::vector<Outcome>* outcomes) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells;
  for (size_t r = 0; r < rows; ++r) {
    cells.push_back({static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(2)),
                     static_cast<int>(rng.Below(2))});
    outcomes->push_back(rng.Uniform() < 0.4 ? Outcome::kTrue
                                            : Outcome::kFalse);
  }
  return MakeEncoded(cells, {3, 3, 2, 2});
}

TEST(ValidateExplorerOptionsTest, RejectsBadMinSupport) {
  for (double s : {0.0, -0.1, 1.5}) {
    ExplorerOptions opts;
    opts.min_support = s;
    const Status status = ValidateExplorerOptions(opts);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << "s=" << s;
  }
  ExplorerOptions opts;
  opts.min_support = 1.0;
  EXPECT_TRUE(ValidateExplorerOptions(opts).ok());
}

TEST(ValidateExplorerOptionsTest, RejectsZeroThreads) {
  ExplorerOptions opts;
  opts.num_threads = 0;
  EXPECT_EQ(ValidateExplorerOptions(opts).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateExplorerOptionsTest, RejectsNegativeDeadline) {
  ExplorerOptions opts;
  opts.limits.deadline_ms = -5;
  EXPECT_EQ(ValidateExplorerOptions(opts).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateExplorerOptionsTest, RejectsNonIncreasingEscalateFactor) {
  ExplorerOptions opts;
  opts.on_limit = LimitAction::kEscalate;
  opts.escalate_factor = 1.0;
  EXPECT_EQ(ValidateExplorerOptions(opts).code(),
            StatusCode::kInvalidArgument);
  // The factor is only constrained when escalation is selected.
  opts.on_limit = LimitAction::kFail;
  EXPECT_TRUE(ValidateExplorerOptions(opts).ok());
}

TEST(ExplorerLimitsTest, ExploreRejectsLabelLengthMismatch) {
  const EncodedDataset ds = MakeEncoded({{0}, {1}, {0}}, {2});
  DivergenceExplorer explorer;
  auto short_preds = explorer.Explore(ds, {0, 1}, {0, 1, 0},
                                      Metric::kFalsePositiveRate);
  EXPECT_EQ(short_preds.status().code(), StatusCode::kInvalidArgument);
  auto short_truths = explorer.Explore(ds, {0, 1, 0}, {0, 1},
                                       Metric::kFalsePositiveRate);
  EXPECT_EQ(short_truths.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExplorerLimitsTest, ExploreOutcomesRejectsLengthMismatch) {
  const EncodedDataset ds = MakeEncoded({{0}, {1}, {0}}, {2});
  DivergenceExplorer explorer;
  auto r = explorer.ExploreOutcomes(
      ds, {Outcome::kTrue, Outcome::kFalse});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExplorerLimitsTest, InvalidOptionsSurfaceBeforeMining) {
  const EncodedDataset ds = MakeEncoded({{0}, {1}}, {2});
  ExplorerOptions opts;
  opts.min_support = 0.0;
  auto r = DivergenceExplorer(opts).ExploreOutcomes(
      ds, {Outcome::kTrue, Outcome::kFalse});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExplorerLimitsTest, FailModeReturnsResourceExhausted) {
  std::vector<Outcome> outcomes;
  const EncodedDataset ds = MakeRandomDataset(7, 400, &outcomes);
  ExplorerOptions opts;
  opts.min_support = 0.02;
  opts.limits.max_patterns = 3;
  opts.on_limit = LimitAction::kFail;
  auto r = DivergenceExplorer(opts).ExploreOutcomes(ds, outcomes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExplorerLimitsTest, TruncateModeReturnsPartialTableWithStats) {
  std::vector<Outcome> outcomes;
  const EncodedDataset ds = MakeRandomDataset(7, 400, &outcomes);
  ExplorerOptions opts;
  opts.min_support = 0.02;
  opts.limits.max_patterns = 3;
  opts.on_limit = LimitAction::kTruncate;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(ds, outcomes);
  ASSERT_TRUE(table.ok());

  // Budget patterns + the empty itemset, which anchors the global rate
  // so divergences in the partial table stay well-defined.
  EXPECT_EQ(table->size(), 4u);
  EXPECT_TRUE(table->Contains(Itemset{}));
  EXPECT_GT(table->global_rate(), 0.0);

  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.reason, LimitBreach::kPatternBudget);
  EXPECT_EQ(stats.patterns, 3u);
  EXPECT_EQ(stats.escalations, 0u);
  EXPECT_DOUBLE_EQ(stats.effective_min_support, 0.02);
  EXPECT_GT(stats.peak_memory_bytes, 0u);
  EXPECT_GE(stats.elapsed_ms, 0.0);
}

TEST(ExplorerLimitsTest, UngovernedRunReportsCompleteStats) {
  std::vector<Outcome> outcomes;
  const EncodedDataset ds = MakeRandomDataset(9, 200, &outcomes);
  ExplorerOptions opts;
  opts.min_support = 0.1;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(ds, outcomes);
  ASSERT_TRUE(table.ok());
  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.reason, LimitBreach::kNone);
  EXPECT_EQ(stats.patterns, table->size() - 1);
}

TEST(ExplorerLimitsTest, EscalateModeConvergesToCompleteRun) {
  std::vector<Outcome> outcomes;
  const EncodedDataset ds = MakeRandomDataset(11, 400, &outcomes);

  // Find how many patterns a fairly high support yields, then set the
  // budget so the low-support attempt breaches but the escalated one
  // fits.
  ExplorerOptions probe;
  probe.min_support = 0.32;
  auto high = DivergenceExplorer(probe).ExploreOutcomes(ds, outcomes);
  ASSERT_TRUE(high.ok());
  const uint64_t budget = high->size() - 1;
  ASSERT_GT(budget, 0u);

  ExplorerOptions opts;
  opts.min_support = 0.02;
  opts.limits.max_patterns = budget;
  opts.on_limit = LimitAction::kEscalate;
  opts.escalate_factor = 2.0;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(ds, outcomes);
  ASSERT_TRUE(table.ok());

  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.escalations, 0u);
  EXPECT_GT(stats.effective_min_support, opts.min_support);
  EXPECT_LE(table->size() - 1, budget);
  // The converged table is a *complete* run at the effective support:
  // re-running plainly at that support gives the same table.
  ExplorerOptions plain;
  plain.min_support = stats.effective_min_support;
  auto expected = DivergenceExplorer(plain).ExploreOutcomes(ds, outcomes);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(table->size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_TRUE(table->Contains(expected->row(i).items));
  }
}

TEST(ExplorerLimitsTest, EscalateDegradesToTruncatedWhenExhausted) {
  // Two constant attributes: even at min_support = 1.0 there are three
  // non-empty frequent patterns, so a budget of 1 can never be met and
  // escalation must degrade to a truncated table.
  const EncodedDataset ds = MakeEncoded({{0, 0}, {0, 0}, {0, 0}}, {1, 1});
  std::vector<Outcome> outcomes(3, Outcome::kTrue);
  ExplorerOptions opts;
  opts.min_support = 0.5;
  opts.limits.max_patterns = 1;
  opts.on_limit = LimitAction::kEscalate;
  opts.max_escalations = 2;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(ds, outcomes);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 2u);
  const ExplorerRunStats& stats = explorer.last_run_stats();
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.reason, LimitBreach::kPatternBudget);
}

TEST(ExplorerLimitsTest, CancelledRunFailsInEveryMode) {
  std::vector<Outcome> outcomes;
  const EncodedDataset ds = MakeRandomDataset(13, 300, &outcomes);
  for (LimitAction action : {LimitAction::kFail, LimitAction::kTruncate,
                             LimitAction::kEscalate}) {
    RunGuard guard;
    guard.RequestCancel();
    ExplorerOptions opts;
    opts.min_support = 0.02;
    opts.guard = &guard;
    opts.on_limit = action;
    auto r = DivergenceExplorer(opts).ExploreOutcomes(ds, outcomes);
    ASSERT_FALSE(r.ok()) << LimitActionName(action);
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << LimitActionName(action);
  }
}

TEST(ExplorerLimitsTest, ExternalGuardReportsPeakMemory) {
  std::vector<Outcome> outcomes;
  const EncodedDataset ds = MakeRandomDataset(17, 300, &outcomes);
  RunGuard guard;  // unlimited, but still accounts memory
  ExplorerOptions opts;
  opts.min_support = 0.05;
  opts.guard = &guard;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(ds, outcomes);
  ASSERT_TRUE(table.ok());
  EXPECT_GT(explorer.last_run_stats().peak_memory_bytes, 0u);
  // Every AddMemory was paired with a SubMemory: nothing leaks in the
  // accounting once the run is over (pattern-output bytes excepted —
  // the caller owns those rows now).
  EXPECT_LE(guard.memory_bytes(), guard.peak_memory_bytes());
}

}  // namespace
}  // namespace divexp
