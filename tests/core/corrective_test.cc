#include "core/corrective.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_explore.h"

namespace divexp {
namespace {

using testing::ExploreForTest;

// a0=v1 is strongly divergent; adding a1=v1 pulls the rate back to the
// overall level — a1=v1 is a corrective item for {a0=v1} (Def. 4.2).
PatternTable MakeCorrectiveTable() {
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  // a0=v0 background: rate 0.2 (40 rows).
  for (int k = 0; k < 40; ++k) {
    rows.push_back({0, k % 2});
    outcomes += (k % 5 == 0) ? 'T' : 'F';
  }
  // a0=v1, a1=v0: rate 0.9 (20 rows) -> divergent.
  for (int k = 0; k < 20; ++k) {
    rows.push_back({1, 0});
    outcomes += (k < 18) ? 'T' : 'F';
  }
  // a0=v1, a1=v1: rate ~0.3 (20 rows) -> corrected back near overall.
  for (int k = 0; k < 20; ++k) {
    rows.push_back({1, 1});
    outcomes += (k < 6) ? 'T' : 'F';
  }
  return ExploreForTest(rows, {2, 2}, outcomes, 0.05);
}

TEST(CorrectiveTest, FindsTheInjectedCorrectiveItem) {
  const PatternTable table = MakeCorrectiveTable();
  const auto items = FindCorrectiveItems(table);
  ASSERT_FALSE(items.empty());
  // The strongest corrective pair must be ({a0=v1}, a1=v1):
  // |Δ({a0=v1})| ≈ 0.6−0.4=0.2... verify against the table directly.
  const CorrectiveItem& top = items.front();
  EXPECT_EQ(table.ItemsetName(top.base), "a0=v1");
  EXPECT_EQ(table.catalog().ItemName(top.item), "a1=v1");
  EXPECT_GT(top.factor, 0.0);
  EXPECT_NEAR(top.factor,
              std::fabs(top.base_divergence) -
                  std::fabs(top.with_divergence),
              1e-12);
}

TEST(CorrectiveTest, EveryReportedPairReducesAbsoluteDivergence) {
  const PatternTable table = MakeCorrectiveTable();
  for (const CorrectiveItem& c : FindCorrectiveItems(table)) {
    EXPECT_LT(std::fabs(c.with_divergence), std::fabs(c.base_divergence));
    // Cross-check both divergences against the table.
    EXPECT_NEAR(c.base_divergence, *table.Divergence(c.base), 1e-12);
    EXPECT_NEAR(c.with_divergence,
                *table.Divergence(With(c.base, c.item)), 1e-12);
  }
}

TEST(CorrectiveTest, SortedByDescendingFactor) {
  const PatternTable table = MakeCorrectiveTable();
  const auto items = FindCorrectiveItems(table);
  for (size_t i = 1; i < items.size(); ++i) {
    EXPECT_GE(items[i - 1].factor, items[i].factor);
  }
}

TEST(CorrectiveTest, MinFactorFilters) {
  const PatternTable table = MakeCorrectiveTable();
  CorrectiveOptions opts;
  opts.min_factor = 0.25;
  for (const CorrectiveItem& c : FindCorrectiveItems(table, opts)) {
    EXPECT_GT(c.factor, 0.25);
  }
}

TEST(CorrectiveTest, TopKTruncates) {
  const PatternTable table = MakeCorrectiveTable();
  CorrectiveOptions opts;
  opts.top_k = 2;
  EXPECT_LE(FindCorrectiveItems(table, opts).size(), 2u);
}

TEST(CorrectiveTest, NoCorrectiveItemsInMonotoneData) {
  // Divergence only grows along this chain: no corrective pairs with a
  // positive factor should be reported for the divergent branch.
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  for (int k = 0; k < 40; ++k) {
    const int a0 = k < 20 ? 1 : 0;
    const int a1 = k % 2;
    rows.push_back({a0, a1});
    // Rate rises with a0 alone; a1 is noise-free neutral.
    outcomes += (a0 == 1) ? 'T' : 'F';
  }
  const PatternTable table = ExploreForTest(rows, {2, 2}, outcomes, 0.05);
  for (const CorrectiveItem& c : FindCorrectiveItems(table)) {
    // Any surviving pair must genuinely reduce |Δ|; with this synthetic
    // outcome only same-|Δ| pairs exist, so the list is empty.
    ADD_FAILURE() << "unexpected corrective pair: "
                  << table.ItemsetName(c.base) << " + "
                  << table.catalog().ItemName(c.item);
  }
}

}  // namespace
}  // namespace divexp
