#include "core/pattern.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "testing/test_explore.h"

namespace divexp {
namespace {

using testing::ExploreForTest;

// 2 binary attributes, 8 rows. Outcomes chosen so that a0=v1 has a
// higher positive rate than the dataset.
PatternTable MakeSmallTable(double support = 0.1) {
  return ExploreForTest(
      {{0, 0}, {0, 0}, {0, 1}, {0, 1}, {1, 0}, {1, 0}, {1, 1}, {1, 1}},
      {2, 2},
      "FFFTTTTB",  // f(D) = 4/7
      support);
}

TEST(PatternTableTest, GlobalRateFromEmptyItemset) {
  const PatternTable table = MakeSmallTable();
  EXPECT_NEAR(table.global_rate(), 4.0 / 7.0, 1e-12);
  EXPECT_EQ(table.num_dataset_rows(), 8u);
}

TEST(PatternTableTest, RowFieldsConsistent) {
  const PatternTable table = MakeSmallTable();
  for (size_t i = 0; i < table.size(); ++i) {
    const PatternRow& r = table.row(i);
    EXPECT_NEAR(r.support,
                static_cast<double>(r.counts.total()) / 8.0, 1e-12);
    EXPECT_NEAR(r.rate, r.counts.PositiveRate(), 1e-12);
    EXPECT_NEAR(r.divergence, r.rate - table.global_rate(), 1e-12);
    EXPECT_GE(r.t, 0.0);
  }
}

TEST(PatternTableTest, FindAndDivergence) {
  const PatternTable table = MakeSmallTable();
  // a0=v1 (item 1) covers rows 4..7: outcomes T T T B -> rate 1.
  auto idx = table.Find(Itemset{1});
  ASSERT_TRUE(idx.has_value());
  EXPECT_NEAR(table.row(*idx).rate, 1.0, 1e-12);
  auto div = table.Divergence(Itemset{1});
  ASSERT_TRUE(div.ok());
  EXPECT_NEAR(*div, 1.0 - 4.0 / 7.0, 1e-12);
  EXPECT_FALSE(table.Divergence(Itemset{99}).ok());
}

TEST(PatternTableTest, EmptyItemsetHasZeroDivergence) {
  const PatternTable table = MakeSmallTable();
  auto div = table.Divergence(Itemset{});
  ASSERT_TRUE(div.ok());
  EXPECT_DOUBLE_EQ(*div, 0.0);
}

TEST(PatternTableTest, RankByDivergenceDescendingExcludesRoot) {
  const PatternTable table = MakeSmallTable();
  const auto order = table.RankByDivergence(true);
  EXPECT_EQ(order.size(), table.size() - 1);  // root excluded
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(table.row(order[i - 1]).divergence,
              table.row(order[i]).divergence);
  }
  // Ascending is the reverse ordering on values.
  const auto asc = table.RankByDivergence(false);
  EXPECT_EQ(table.row(asc.front()).divergence,
            table.row(order.back()).divergence);
}

TEST(PatternTableTest, TopKFilters) {
  const PatternTable table = MakeSmallTable();
  const auto top = table.TopK(3);
  EXPECT_LE(top.size(), 3u);
  // With min_support = 0.6 only itemsets covering >= 5 of 8 rows
  // qualify — none of the single items (4 rows each) do.
  const auto high_support = table.TopK(10, true, 0.6);
  for (size_t i : high_support) {
    EXPECT_GE(table.row(i).support, 0.6);
  }
  // max_len = 1 excludes pairs.
  for (size_t i : table.TopK(10, true, 0.0, 1, 1)) {
    EXPECT_EQ(table.row(i).items.size(), 1u);
  }
}

TEST(PatternTableTest, RankBySignificanceAndSupport) {
  const PatternTable table = MakeSmallTable();
  const auto by_t = table.Rank(PatternTable::RankKey::kSignificance);
  for (size_t i = 1; i < by_t.size(); ++i) {
    EXPECT_GE(table.row(by_t[i - 1]).t, table.row(by_t[i]).t);
  }
  const auto by_sup = table.Rank(PatternTable::RankKey::kSupport);
  for (size_t i = 1; i < by_sup.size(); ++i) {
    EXPECT_GE(table.row(by_sup[i - 1]).support,
              table.row(by_sup[i]).support);
  }
  // All three rankings cover the same rows.
  EXPECT_EQ(by_t.size(), table.RankByDivergence().size());
  EXPECT_EQ(by_sup.size(), by_t.size());
}

TEST(PatternTableTest, ItemsetNameRendering) {
  const PatternTable table = MakeSmallTable();
  EXPECT_EQ(table.ItemsetName(Itemset{}), "(all)");
  EXPECT_EQ(table.ItemsetName(Itemset{0}), "a0=v0");
  EXPECT_EQ(table.ItemsetName(Itemset{0, 3}), "a0=v0, a1=v1");
}

TEST(PatternTableTest, ParseItemsetRoundTrip) {
  const PatternTable table = MakeSmallTable();
  auto items = table.ParseItemset({{"a1", "v1"}, {"a0", "v0"}});
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(*items, (Itemset{0, 3}));
  EXPECT_FALSE(table.ParseItemset({{"a0", "nope"}}).ok());
}

TEST(PatternTableTest, CreateRequiresEmptyItemset) {
  std::vector<MinedPattern> mined;
  mined.push_back({Itemset{0}, OutcomeCounts{1, 0, 0}});
  ItemCatalog catalog;
  catalog.AddAttribute("a", {"x"});
  auto table = PatternTable::Create(std::move(mined), catalog, 1);
  EXPECT_FALSE(table.ok());
}

TEST(PatternTableTest, CreateRejectsDuplicates) {
  std::vector<MinedPattern> mined;
  mined.push_back({Itemset{}, OutcomeCounts{1, 0, 0}});
  mined.push_back({Itemset{0}, OutcomeCounts{1, 0, 0}});
  mined.push_back({Itemset{0}, OutcomeCounts{1, 0, 0}});
  ItemCatalog catalog;
  catalog.AddAttribute("a", {"x"});
  auto table = PatternTable::Create(std::move(mined), catalog, 1);
  EXPECT_FALSE(table.ok());
}

TEST(PatternTableTest, SubsetLinksResolveImmediateSubsets) {
  const PatternTable table = MakeSmallTable();
  for (size_t i = 0; i < table.size(); ++i) {
    const Itemset& items = table.row(i).items;
    const auto links = table.SubsetLinks(i);
    ASSERT_EQ(links.size(), items.size());
    for (size_t j = 0; j < items.size(); ++j) {
      // Complete exploration: every immediate subset is present.
      ASSERT_NE(links[j], PatternTable::kNoLink);
      Itemset expected = items;
      expected.erase(expected.begin() + static_cast<ptrdiff_t>(j));
      EXPECT_EQ(table.row(links[j]).items, expected);
    }
  }
}

TEST(PatternTableTest, HeterogeneousFindMatchesItemsetFind) {
  const PatternTable table = MakeSmallTable();
  for (size_t i = 0; i < table.size(); ++i) {
    const Itemset& items = table.row(i).items;
    const auto by_span = table.Find(ItemSpan(items));
    ASSERT_TRUE(by_span.has_value());
    EXPECT_EQ(*by_span, i);
  }
  const Itemset absent = {0, 1};  // two values of the same attribute
  EXPECT_FALSE(table.Find(ItemSpan(absent)).has_value());
}

TEST(PatternTableTest, TopKMatchesRankPrefix) {
  const PatternTable table = MakeSmallTable();
  const auto ranked = table.RankByDivergence(true);
  for (size_t k : {size_t{1}, size_t{3}, ranked.size(), ranked.size() + 5}) {
    const auto top = table.TopK(k);
    ASSERT_EQ(top.size(), std::min(k, ranked.size()));
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i], ranked[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(PatternTableTest, SignificanceGrowsWithSampleSize) {
  // Same 3:1 outcome ratio but 10x the rows -> larger t.
  std::vector<std::vector<int>> small_rows, big_rows;
  std::string small_o, big_o;
  for (int rep = 0; rep < 4; ++rep) {
    small_rows.push_back({0});
    small_o += (rep < 3 ? 'T' : 'F');
    small_rows.push_back({1});
    small_o += (rep < 3 ? 'F' : 'T');
  }
  for (int rep = 0; rep < 40; ++rep) {
    big_rows.push_back({0});
    big_o += (rep < 30 ? 'T' : 'F');
    big_rows.push_back({1});
    big_o += (rep < 30 ? 'F' : 'T');
  }
  const PatternTable small =
      testing::ExploreForTest(small_rows, {2}, small_o, 0.1);
  const PatternTable big =
      testing::ExploreForTest(big_rows, {2}, big_o, 0.1);
  const double t_small = small.row(*small.Find(Itemset{0})).t;
  const double t_big = big.row(*big.Find(Itemset{0})).t;
  EXPECT_GT(t_big, t_small);
}

}  // namespace
}  // namespace divexp
