#include "core/explorer.h"

#include <gtest/gtest.h>

#include "testing/test_data.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

TEST(DivergenceExplorerTest, ExploreFromLabels) {
  // Predictions wrong exactly on a0=v1 rows -> FPR divergence there.
  const EncodedDataset ds =
      MakeEncoded({{0}, {0}, {0}, {0}, {1}, {1}, {1}, {1}}, {2});
  const std::vector<int> truths = {0, 0, 0, 0, 0, 0, 0, 0};
  const std::vector<int> preds = {0, 0, 0, 0, 1, 1, 1, 0};
  ExplorerOptions opts;
  opts.min_support = 0.2;
  DivergenceExplorer explorer(opts);
  auto table =
      explorer.Explore(ds, preds, truths, Metric::kFalsePositiveRate);
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table->global_rate(), 3.0 / 8.0, 1e-12);
  auto div = table->Divergence(Itemset{1});
  ASSERT_TRUE(div.ok());
  EXPECT_NEAR(*div, 0.75 - 0.375, 1e-12);
}

TEST(DivergenceExplorerTest, BothMinersGiveIdenticalTables) {
  const EncodedDataset ds = MakeEncoded(
      {{0, 1, 0}, {1, 0, 1}, {0, 0, 0}, {1, 1, 1}, {0, 1, 1}, {1, 0, 0}},
      {2, 2, 2});
  const std::vector<Outcome> outcomes =
      testing::OutcomesFromString("TFBTFB");
  for (double support : {0.1, 0.3, 0.5}) {
    ExplorerOptions fp_opts;
    fp_opts.min_support = support;
    fp_opts.miner = MinerKind::kFpGrowth;
    ExplorerOptions ap_opts = fp_opts;
    ap_opts.miner = MinerKind::kApriori;
    auto fp_table =
        DivergenceExplorer(fp_opts).ExploreOutcomes(ds, outcomes);
    auto ap_table =
        DivergenceExplorer(ap_opts).ExploreOutcomes(ds, outcomes);
    ASSERT_TRUE(fp_table.ok());
    ASSERT_TRUE(ap_table.ok());
    ASSERT_EQ(fp_table->size(), ap_table->size());
    for (size_t i = 0; i < fp_table->size(); ++i) {
      const PatternRow& r = fp_table->row(i);
      auto j = ap_table->Find(r.items);
      ASSERT_TRUE(j.has_value());
      EXPECT_EQ(ap_table->row(*j).counts, r.counts);
      EXPECT_DOUBLE_EQ(ap_table->row(*j).divergence, r.divergence);
    }
  }
}

TEST(DivergenceExplorerTest, MaxLengthLimitsExploration) {
  const EncodedDataset ds =
      MakeEncoded({{0, 0, 0}, {0, 0, 0}, {1, 1, 1}}, {2, 2, 2});
  ExplorerOptions opts;
  opts.min_support = 0.3;
  opts.max_length = 1;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(
      ds, testing::OutcomesFromString("TTF"));
  ASSERT_TRUE(table.ok());
  for (size_t i = 0; i < table->size(); ++i) {
    EXPECT_LE(table->row(i).items.size(), 1u);
  }
}

TEST(DivergenceExplorerTest, TimingsPopulated) {
  const EncodedDataset ds = MakeEncoded({{0}, {1}}, {2});
  DivergenceExplorer explorer;
  auto table =
      explorer.ExploreOutcomes(ds, testing::OutcomesFromString("TF"));
  ASSERT_TRUE(table.ok());
  EXPECT_GE(explorer.last_timings().mining_seconds, 0.0);
  EXPECT_GE(explorer.last_timings().divergence_seconds, 0.0);
}

TEST(DivergenceExplorerTest, MismatchedOutcomeSizeFails) {
  const EncodedDataset ds = MakeEncoded({{0}, {1}}, {2});
  DivergenceExplorer explorer;
  auto table =
      explorer.ExploreOutcomes(ds, testing::OutcomesFromString("T"));
  EXPECT_FALSE(table.ok());
}

TEST(DivergenceExplorerTest, AllBottomDatasetHasZeroRates) {
  const EncodedDataset ds = MakeEncoded({{0}, {1}, {0}}, {2});
  ExplorerOptions opts;
  opts.min_support = 0.3;
  DivergenceExplorer explorer(opts);
  auto table =
      explorer.ExploreOutcomes(ds, testing::OutcomesFromString("BBB"));
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->global_rate(), 0.0);
  for (size_t i = 0; i < table->size(); ++i) {
    EXPECT_DOUBLE_EQ(table->row(i).divergence, 0.0);
  }
}

}  // namespace
}  // namespace divexp
