#include "core/table_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/shapley.h"
#include "testing/test_explore.h"

namespace divexp {
namespace {

using testing::ExploreForTest;

PatternTable MakeTable() {
  return ExploreForTest(
      {{0, 0}, {0, 0}, {0, 1}, {0, 1}, {1, 0}, {1, 0}, {1, 1}, {1, 1}},
      {2, 2}, "FFFTTTTB", 0.1);
}

TEST(TableIoTest, CsvHasHeaderAndAllRows) {
  const PatternTable table = MakeTable();
  const std::string csv = WritePatternTableCsv(table);
  EXPECT_NE(csv.find("itemset,length,support"), std::string::npos);
  // header + one line per pattern (incl. baseline).
  EXPECT_EQ(static_cast<size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            table.size() + 1);
  EXPECT_NE(csv.find("a0=v0 AND a1=v1"), std::string::npos);
}

TEST(TableIoTest, RoundTripPreservesEverything) {
  const PatternTable table = MakeTable();
  const std::string csv = WritePatternTableCsv(table);
  auto back = ReadPatternTableCsv(csv, table.num_dataset_rows());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), table.size());
  EXPECT_DOUBLE_EQ(back->global_rate(), table.global_rate());
  for (size_t i = 0; i < table.size(); ++i) {
    const PatternRow& row = table.row(i);
    // Item ids may be renumbered; match by rendered name.
    auto parsed = back->ParseItemset([&] {
      std::vector<std::pair<std::string, std::string>> desc;
      for (uint32_t id : row.items) {
        const auto& info = table.catalog().item(id);
        desc.emplace_back(
            table.catalog().attribute_name(info.attribute), info.value);
      }
      return desc;
    }());
    ASSERT_TRUE(parsed.ok());
    auto j = back->Find(*parsed);
    ASSERT_TRUE(j.has_value()) << table.ItemsetName(row.items);
    const PatternRow& other = back->row(*j);
    EXPECT_EQ(other.counts, row.counts);
    EXPECT_DOUBLE_EQ(other.support, row.support);
    EXPECT_DOUBLE_EQ(other.divergence, row.divergence);
    EXPECT_NEAR(other.t, row.t, 1e-9);
  }
}

TEST(TableIoTest, RoundTrippedTableSupportsAnalysis) {
  const PatternTable table = MakeTable();
  auto back = ReadPatternTableCsv(WritePatternTableCsv(table),
                                  table.num_dataset_rows());
  ASSERT_TRUE(back.ok());
  // Shapley over the reloaded table works and satisfies efficiency.
  auto pair = back->ParseItemset({{"a0", "v1"}, {"a1", "v1"}});
  ASSERT_TRUE(pair.ok());
  auto contributions = ShapleyContributions(*back, *pair);
  ASSERT_TRUE(contributions.ok());
  double sum = 0.0;
  for (const auto& c : *contributions) sum += c.contribution;
  EXPECT_NEAR(sum, *back->Divergence(*pair), 1e-9);
}

TEST(TableIoTest, FileRoundTrip) {
  const PatternTable table = MakeTable();
  const std::string path = "/tmp/divexp_table_io_test.csv";
  ASSERT_TRUE(WritePatternTableFile(table, path).ok());
  auto back = ReadPatternTableFile(path, table.num_dataset_rows());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), table.size());
  std::remove(path.c_str());
}

TEST(TableIoTest, ValuesWithCommasSurviveQuoting) {
  // Values containing commas (e.g. interval labels "[1,3]") must be
  // quoted on write and recovered on read.
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({i % 2});
    outcomes += (i % 3 == 0) ? 'T' : 'F';
  }
  EncodedDataset ds;
  ds.num_rows = rows.size();
  ds.num_attributes = 1;
  ds.catalog.AddAttribute("prior", {"[1,3]", ">3"});
  for (const auto& row : rows) {
    ds.cells.push_back(static_cast<uint32_t>(row[0]));
  }
  ExplorerOptions opts;
  opts.min_support = 0.1;
  DivergenceExplorer explorer(opts);
  auto table = explorer.ExploreOutcomes(
      ds, testing::OutcomesFromString(outcomes));
  ASSERT_TRUE(table.ok());
  auto back = ReadPatternTableCsv(WritePatternTableCsv(*table),
                                  table->num_dataset_rows());
  ASSERT_TRUE(back.ok());
  auto item = back->ParseItemset({{"prior", "[1,3]"}});
  ASSERT_TRUE(item.ok());
  EXPECT_TRUE(back->Contains(*item));
}

TEST(TableIoTest, MissingColumnsRejected) {
  auto r = ReadPatternTableCsv("foo,bar\n1,2\n", 10);
  EXPECT_FALSE(r.ok());
}

TEST(TableIoTest, MissingBaselineRejected) {
  // A CSV without the empty-itemset row cannot define the global rate.
  const std::string csv =
      "itemset,length,support,t_count,f_count,bot_count,rate,divergence,"
      "t_stat\n"
      "a=x,1,0.5,1,1,0,0.5,0.0,0.0\n";
  auto r = ReadPatternTableCsv(csv, 4);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace divexp
