#include "core/pruning.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_explore.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::ExploreForTest;

PatternTable MakeNoisyTable(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  for (int i = 0; i < 300; ++i) {
    const int a0 = static_cast<int>(rng.Below(2));
    const int a1 = static_cast<int>(rng.Below(2));
    const int a2 = static_cast<int>(rng.Below(3));
    rows.push_back({a0, a1, a2});
    // Rate depends on a0 strongly, a1 weakly, a2 not at all.
    const double p = 0.2 + 0.5 * a0 + 0.05 * a1;
    outcomes += rng.Bernoulli(p) ? 'T' : 'F';
  }
  return ExploreForTest(rows, {2, 2, 3}, outcomes, 0.02);
}

TEST(RedundancyPruneTest, SurvivorsHaveLargeMarginalsEverywhere) {
  const PatternTable table = MakeNoisyTable(5);
  const double eps = 0.05;
  for (size_t i : RedundancyPrune(table, eps)) {
    const PatternRow& row = table.row(i);
    for (uint32_t alpha : row.items) {
      const double marginal =
          row.divergence - *table.Divergence(Without(row.items, alpha));
      EXPECT_GT(std::fabs(marginal), eps)
          << table.ItemsetName(row.items);
    }
  }
}

TEST(RedundancyPruneTest, PrunedRowsHaveSomeSmallMarginal) {
  const PatternTable table = MakeNoisyTable(5);
  const double eps = 0.05;
  const auto kept = RedundancyPrune(table, eps);
  std::vector<bool> is_kept(table.size(), false);
  for (size_t i : kept) is_kept[i] = true;
  for (size_t i = 0; i < table.size(); ++i) {
    const PatternRow& row = table.row(i);
    if (row.items.empty() || is_kept[i]) continue;
    bool found_small = false;
    for (uint32_t alpha : row.items) {
      const double marginal =
          row.divergence - *table.Divergence(Without(row.items, alpha));
      if (std::fabs(marginal) <= eps) found_small = true;
    }
    EXPECT_TRUE(found_small) << table.ItemsetName(row.items);
  }
}

TEST(RedundancyPruneTest, CountMonotoneInEpsilon) {
  // Paper Fig. 10: larger ε prunes more.
  const PatternTable table = MakeNoisyTable(9);
  const std::vector<double> epsilons = {0.0, 0.01, 0.02, 0.05, 0.1, 0.3};
  const auto counts = PrunedCountsByEpsilon(table, epsilons);
  ASSERT_EQ(counts.size(), epsilons.size());
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LE(counts[i], counts[i - 1]);
  }
  // ε = 0 keeps every pattern whose items all matter (non-zero
  // marginals); a huge ε prunes everything.
  EXPECT_EQ(RedundancyPrune(table, 10.0).size(), 0u);
}

TEST(RedundancyPruneTest, EmptyItemsetAlwaysDropped) {
  const PatternTable table = MakeNoisyTable(11);
  for (size_t i : RedundancyPrune(table, 0.0)) {
    EXPECT_FALSE(table.row(i).items.empty());
  }
}

TEST(RedundancyPruneTest, IrrelevantAttributePatternsPruned) {
  // Deterministic grid where attribute a2 carries exactly zero signal:
  // every pattern containing an a2 item has a zero marginal for it and
  // must be pruned even at ε = 0.
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  for (int a0 : {0, 1}) {
    for (int a1 : {0, 1}) {
      for (int a2 : {0, 1, 2}) {
        for (int k = 0; k < 10; ++k) {
          rows.push_back({a0, a1, a2});
          // Exact per-(a0, a1) cell rates, identical across a2.
          const int t_count = 2 + 5 * a0 + 2 * a1;
          outcomes += (k < t_count) ? 'T' : 'F';
        }
      }
    }
  }
  const PatternTable table = ExploreForTest(rows, {2, 2, 3}, outcomes,
                                            0.01);
  const auto kept = RedundancyPrune(table, 0.0);
  EXPECT_FALSE(kept.empty());
  for (size_t i : kept) {
    for (uint32_t alpha : table.row(i).items) {
      EXPECT_NE(table.catalog().item(alpha).attribute, 2u)
          << table.ItemsetName(table.row(i).items);
    }
  }
}

}  // namespace
}  // namespace divexp
