#include "core/multi.h"

#include <gtest/gtest.h>

#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

constexpr Metric kAllMetrics[] = {
    Metric::kFalsePositiveRate,      Metric::kFalseNegativeRate,
    Metric::kErrorRate,              Metric::kAccuracy,
    Metric::kTruePositiveRate,       Metric::kTrueNegativeRate,
    Metric::kPositivePredictiveValue, Metric::kFalseDiscoveryRate,
    Metric::kFalseOmissionRate,      Metric::kNegativePredictiveValue,
    Metric::kPositiveRate,           Metric::kPredictedPositiveRate,
};

struct RandomLabeled {
  EncodedDataset dataset;
  std::vector<int> preds;
  std::vector<int> truths;
};

RandomLabeled MakeRandomLabeled(uint64_t seed, size_t rows = 300) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells(rows, std::vector<int>(3));
  RandomLabeled out;
  for (size_t r = 0; r < rows; ++r) {
    for (auto& c : cells[r]) c = static_cast<int>(rng.Below(3));
    out.preds.push_back(rng.Bernoulli(0.45) ? 1 : 0);
    out.truths.push_back(
        rng.Bernoulli(0.3 + 0.1 * cells[r][0]) ? 1 : 0);
  }
  out.dataset = MakeEncoded(cells, {3, 3, 3});
  return out;
}

TEST(ProjectOutcomeTest, MatchesPerInstanceDefinition) {
  // Projecting counts must agree with tallying EvalOutcome per
  // instance, for every confusion cell and every metric.
  const ConfusionCounts c{3, 5, 7, 11};
  for (Metric metric : kAllMetrics) {
    OutcomeCounts expected;
    auto add = [&](Outcome o, uint64_t n) {
      switch (o) {
        case Outcome::kTrue:
          expected.t += n;
          break;
        case Outcome::kFalse:
          expected.f += n;
          break;
        case Outcome::kBottom:
          expected.bot += n;
          break;
      }
    };
    add(EvalOutcome(metric, true, true), c.tp);
    add(EvalOutcome(metric, true, false), c.fp);
    add(EvalOutcome(metric, false, false), c.tn);
    add(EvalOutcome(metric, false, true), c.fn);
    EXPECT_EQ(ProjectOutcome(metric, c), expected)
        << MetricName(metric);
  }
}

TEST(MultiExplorerTest, AgreesWithSingleMetricExplorations) {
  const RandomLabeled data = MakeRandomLabeled(3);
  ExplorerOptions opts;
  opts.min_support = 0.03;
  MultiExplorer multi(opts);
  auto mtable = multi.Explore(data.dataset, data.preds, data.truths);
  ASSERT_TRUE(mtable.ok());

  DivergenceExplorer single(opts);
  for (Metric metric : kAllMetrics) {
    auto expected =
        single.Explore(data.dataset, data.preds, data.truths, metric);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(mtable->size(), expected->size()) << MetricName(metric);
    for (size_t i = 0; i < expected->size(); ++i) {
      const PatternRow& row = expected->row(i);
      auto div = mtable->Divergence(metric, row.items);
      ASSERT_TRUE(div.ok());
      EXPECT_NEAR(*div, row.divergence, 1e-12)
          << MetricName(metric) << " "
          << expected->ItemsetName(row.items);
    }
  }
}

TEST(MultiExplorerTest, ProjectionYieldsIdenticalPatternTable) {
  const RandomLabeled data = MakeRandomLabeled(7);
  ExplorerOptions opts;
  opts.min_support = 0.05;
  MultiExplorer multi(opts);
  auto mtable = multi.Explore(data.dataset, data.preds, data.truths);
  ASSERT_TRUE(mtable.ok());

  DivergenceExplorer single(opts);
  for (Metric metric :
       {Metric::kFalsePositiveRate, Metric::kAccuracy,
        Metric::kFalseOmissionRate}) {
    auto projected = mtable->Project(metric);
    ASSERT_TRUE(projected.ok());
    auto expected =
        single.Explore(data.dataset, data.preds, data.truths, metric);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(projected->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      const PatternRow& row = expected->row(i);
      auto j = projected->Find(row.items);
      ASSERT_TRUE(j.has_value());
      EXPECT_EQ(projected->row(*j).counts, row.counts);
      EXPECT_DOUBLE_EQ(projected->row(*j).divergence, row.divergence);
      EXPECT_DOUBLE_EQ(projected->row(*j).t, row.t);
    }
  }
}

TEST(MultiExplorerTest, GlobalCountsMatchConfusionMatrix) {
  const RandomLabeled data = MakeRandomLabeled(11);
  MultiExplorer multi;
  auto mtable = multi.Explore(data.dataset, data.preds, data.truths);
  ASSERT_TRUE(mtable.ok());
  uint64_t tp = 0, fp = 0, tn = 0, fn = 0;
  for (size_t i = 0; i < data.preds.size(); ++i) {
    const bool u = data.preds[i] == 1;
    const bool v = data.truths[i] == 1;
    tp += u && v;
    fp += u && !v;
    tn += !u && !v;
    fn += !u && v;
  }
  EXPECT_EQ(mtable->global_counts(), (ConfusionCounts{tp, fp, tn, fn}));
}

TEST(MultiExplorerTest, RejectsMismatchedLabels) {
  const RandomLabeled data = MakeRandomLabeled(13);
  MultiExplorer multi;
  auto bad = multi.Explore(data.dataset, {1, 0}, data.truths);
  EXPECT_FALSE(bad.ok());
}

TEST(MultiExplorerTest, SupportIndependentOfMetric) {
  const RandomLabeled data = MakeRandomLabeled(17);
  ExplorerOptions opts;
  opts.min_support = 0.04;
  MultiExplorer multi(opts);
  auto mtable = multi.Explore(data.dataset, data.preds, data.truths);
  ASSERT_TRUE(mtable.ok());
  for (size_t i = 0; i < mtable->size(); ++i) {
    const MultiPatternRow& row = mtable->row(i);
    EXPECT_EQ(row.counts.total(),
              data.dataset.Cover(row.items).size());
  }
}

}  // namespace
}  // namespace divexp
