#include "core/lattice.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testing/test_explore.h"

namespace divexp {
namespace {

using testing::ExploreForTest;

PatternTable MakeTable() {
  // Three binary attributes with a divergent a0=v1 branch corrected by
  // a2=v1.
  std::vector<std::vector<int>> rows;
  std::string outcomes;
  for (int a0 : {0, 1}) {
    for (int a1 : {0, 1}) {
      for (int a2 : {0, 1}) {
        for (int k = 0; k < 10; ++k) {
          rows.push_back({a0, a1, a2});
          double p = 0.2;
          if (a0 == 1) p = a2 == 1 ? 0.25 : 0.9;
          outcomes += (k < static_cast<int>(p * 10.0)) ? 'T' : 'F';
        }
      }
    }
  }
  return ExploreForTest(rows, {2, 2, 2}, outcomes, 0.01);
}

TEST(LatticeTest, NodeAndEdgeCounts) {
  const PatternTable table = MakeTable();
  // Target {a0=v1, a1=v0, a2=v1} = items {1, 2, 5}.
  auto lattice = BuildLattice(table, Itemset{1, 2, 5});
  ASSERT_TRUE(lattice.ok());
  EXPECT_EQ(lattice->nodes.size(), 8u);   // 2^3 subsets
  EXPECT_EQ(lattice->edges.size(), 12u);  // 3 * 2^2
}

TEST(LatticeTest, LevelsAreSubsetSizesInOrder) {
  const PatternTable table = MakeTable();
  auto lattice = BuildLattice(table, Itemset{1, 2, 5});
  ASSERT_TRUE(lattice.ok());
  size_t last_level = 0;
  for (const LatticeNode& node : lattice->nodes) {
    EXPECT_EQ(node.level, node.items.size());
    EXPECT_GE(node.level, last_level);
    last_level = node.level;
  }
  EXPECT_TRUE(lattice->nodes.front().items.empty());
  EXPECT_EQ(lattice->nodes.back().items, (Itemset{1, 2, 5}));
}

TEST(LatticeTest, EdgesConnectDirectSubsets) {
  const PatternTable table = MakeTable();
  auto lattice = BuildLattice(table, Itemset{1, 2, 5});
  ASSERT_TRUE(lattice.ok());
  for (const LatticeEdge& e : lattice->edges) {
    const LatticeNode& from = lattice->nodes[e.from];
    const LatticeNode& to = lattice->nodes[e.to];
    EXPECT_EQ(from.level + 1, to.level);
    EXPECT_TRUE(IsSubset(from.items, to.items));
  }
}

TEST(LatticeTest, DivergenceMatchesTable) {
  const PatternTable table = MakeTable();
  auto lattice = BuildLattice(table, Itemset{1, 2, 5});
  ASSERT_TRUE(lattice.ok());
  for (const LatticeNode& node : lattice->nodes) {
    EXPECT_NEAR(node.divergence, *table.Divergence(node.items), 1e-12);
  }
}

TEST(LatticeTest, CorrectiveNodesFlagged) {
  const PatternTable table = MakeTable();
  auto lattice = BuildLattice(table, Itemset{1, 2, 5});
  ASSERT_TRUE(lattice.ok());
  // {a0=v1, a2=v1} (items {1, 5}) must be corrective: |Δ| drops vs
  // {a0=v1}.
  bool found = false;
  for (const LatticeNode& node : lattice->nodes) {
    if (node.items == Itemset({1, 5})) {
      EXPECT_TRUE(node.corrective);
      found = true;
    }
    if (node.items == Itemset({1})) {
      EXPECT_FALSE(node.corrective);  // parent is the root (Δ = 0)
    }
  }
  EXPECT_TRUE(found);
}

TEST(LatticeTest, TargetMustBeFrequent) {
  const PatternTable table = MakeTable();
  EXPECT_FALSE(BuildLattice(table, Itemset{0, 999}).ok());
}

TEST(LatticeRenderTest, DotContainsNodesEdgesAndShapes) {
  const PatternTable table = MakeTable();
  auto lattice = BuildLattice(table, Itemset{1, 2, 5});
  ASSERT_TRUE(lattice.ok());
  LatticeRenderOptions opts;
  opts.divergence_threshold = 0.15;
  const std::string dot = LatticeToDot(*lattice, table, opts);
  EXPECT_NE(dot.find("digraph lattice"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("diamond"), std::string::npos);  // corrective node
  EXPECT_NE(dot.find("box"), std::string::npos);      // divergent node
  EXPECT_NE(dot.find("a0=v1"), std::string::npos);
}

TEST(LatticeRenderTest, AsciiListsAllLevels) {
  const PatternTable table = MakeTable();
  auto lattice = BuildLattice(table, Itemset{1, 2, 5});
  ASSERT_TRUE(lattice.ok());
  const std::string ascii = LatticeToAscii(*lattice, table);
  for (int level = 0; level <= 3; ++level) {
    EXPECT_NE(ascii.find("level " + std::to_string(level) + ":"),
              std::string::npos);
  }
  EXPECT_NE(ascii.find("[corrective]"), std::string::npos);
  EXPECT_NE(ascii.find("[DIVERGENT]"), std::string::npos);
}

TEST(LatticeRenderTest, JsonIsWellFormedAndComplete) {
  const PatternTable table = MakeTable();
  auto lattice = BuildLattice(table, Itemset{1, 2, 5});
  ASSERT_TRUE(lattice.ok());
  const std::string json = LatticeToJson(*lattice, table);
  // Structural markers.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(json.find("\"edges\":["), std::string::npos);
  EXPECT_NE(json.find("\"corrective\":true"), std::string::npos);
  // One node object per subset (8), one edge object per cover pair (12).
  size_t node_count = 0, pos = 0;
  while ((pos = json.find("\"level\":", pos)) != std::string::npos) {
    ++node_count;
    ++pos;
  }
  EXPECT_EQ(node_count, 8u);
  size_t edge_count = 0;
  pos = 0;
  while ((pos = json.find("\"from\":", pos)) != std::string::npos) {
    ++edge_count;
    ++pos;
  }
  EXPECT_EQ(edge_count, 12u);
}

TEST(LatticeRenderTest, ThresholdNanDisablesHighlighting) {
  const PatternTable table = MakeTable();
  auto lattice = BuildLattice(table, Itemset{1, 2, 5});
  ASSERT_TRUE(lattice.ok());
  LatticeRenderOptions opts;
  opts.divergence_threshold = std::nan("");
  const std::string ascii = LatticeToAscii(*lattice, table, opts);
  EXPECT_EQ(ascii.find("[DIVERGENT]"), std::string::npos);
}

}  // namespace
}  // namespace divexp
