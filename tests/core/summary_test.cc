#include "core/summary.h"

#include <gtest/gtest.h>

#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

struct Labeled {
  EncodedDataset dataset;
  std::vector<int> preds;
  std::vector<int> truths;
};

Labeled MakeLabeled(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells;
  Labeled out;
  for (int r = 0; r < 500; ++r) {
    cells.push_back({static_cast<int>(rng.Below(2)),
                     static_cast<int>(rng.Below(3))});
    out.truths.push_back(rng.Bernoulli(0.4) ? 1 : 0);
    // High-FPR pocket at a0=1.
    const double p = cells.back()[0] == 1 ? 0.5 : 0.1;
    out.preds.push_back(
        out.truths.back() == 1 || rng.Bernoulli(p) ? 1 : 0);
  }
  out.dataset = MakeEncoded(cells, {2, 3});
  return out;
}

TEST(AuditReportTest, ContainsAllSections) {
  const Labeled data = MakeLabeled(1);
  AuditReportOptions opts;
  opts.explorer.min_support = 0.05;
  auto report = GenerateAuditReport(data.dataset, data.preds,
                                    data.truths, opts);
  ASSERT_TRUE(report.ok());
  const std::string& md = *report;
  EXPECT_NE(md.find("# Model divergence audit"), std::string::npos);
  EXPECT_NE(md.find("## FPR divergence"), std::string::npos);
  EXPECT_NE(md.find("## FNR divergence"), std::string::npos);
  EXPECT_NE(md.find("## ER divergence"), std::string::npos);
  EXPECT_NE(md.find("## Global item divergence"), std::string::npos);
  EXPECT_NE(md.find("Redundancy pruning"), std::string::npos);
  EXPECT_NE(md.find("Item contributions"), std::string::npos);
  // The injected high-FPR pocket shows up.
  EXPECT_NE(md.find("a0=v1"), std::string::npos);
}

TEST(AuditReportTest, CustomTitleAndMetrics) {
  const Labeled data = MakeLabeled(2);
  AuditReportOptions opts;
  opts.title = "Quarterly fairness review";
  opts.metrics = {Metric::kAccuracy};
  auto report = GenerateAuditReport(data.dataset, data.preds,
                                    data.truths, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("# Quarterly fairness review"),
            std::string::npos);
  EXPECT_NE(report->find("## ACC divergence"), std::string::npos);
  EXPECT_EQ(report->find("## FPR divergence"), std::string::npos);
}

TEST(AuditReportTest, EmptyMetricsRejected) {
  const Labeled data = MakeLabeled(3);
  AuditReportOptions opts;
  opts.metrics.clear();
  EXPECT_FALSE(GenerateAuditReport(data.dataset, data.preds,
                                   data.truths, opts)
                   .ok());
}

TEST(AuditReportTest, MarkdownTablesWellFormed) {
  const Labeled data = MakeLabeled(4);
  auto report =
      GenerateAuditReport(data.dataset, data.preds, data.truths);
  ASSERT_TRUE(report.ok());
  // Every table header is followed by its separator row.
  size_t pos = 0;
  int tables = 0;
  while ((pos = report->find("| pattern |", pos)) != std::string::npos) {
    const size_t nl = report->find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    EXPECT_EQ(report->compare(nl + 1, 4, "|---"), 0);
    ++tables;
    ++pos;
  }
  EXPECT_EQ(tables, 3);  // one per default metric
}

}  // namespace
}  // namespace divexp
