#include "core/slicing.h"

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

struct Labeled {
  EncodedDataset dataset;
  std::vector<int> preds;
  std::vector<int> truths;
};

Labeled MakeLabeled(uint64_t seed, size_t rows = 400) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells;
  Labeled out;
  for (size_t r = 0; r < rows; ++r) {
    cells.push_back({static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(2))});
    out.preds.push_back(
        rng.Bernoulli(0.2 + 0.3 * cells.back()[1]) ? 1 : 0);
    out.truths.push_back(rng.Bernoulli(0.4) ? 1 : 0);
  }
  out.dataset = MakeEncoded(cells, {3, 2});
  return out;
}

TEST(EvaluateSlicesTest, AgreesWithPatternTableOnFrequentSlices) {
  const Labeled data = MakeLabeled(1);
  ExplorerOptions opts;
  opts.min_support = 0.01;
  DivergenceExplorer explorer(opts);
  auto table = explorer.Explore(data.dataset, data.preds, data.truths,
                                Metric::kFalsePositiveRate);
  ASSERT_TRUE(table.ok());

  const std::vector<SliceSpec> specs = {
      {{"a0", "v1"}},
      {{"a1", "v1"}},
      {{"a0", "v2"}, {"a1", "v0"}},
  };
  auto reports = EvaluateSlices(data.dataset, data.preds, data.truths,
                                Metric::kFalsePositiveRate, specs);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), specs.size());
  for (const SliceReport& r : *reports) {
    auto idx = table->Find(r.items);
    ASSERT_TRUE(idx.has_value());
    const PatternRow& row = table->row(*idx);
    EXPECT_EQ(r.counts, row.counts);
    EXPECT_DOUBLE_EQ(r.support, row.support);
    EXPECT_DOUBLE_EQ(r.divergence, row.divergence);
    EXPECT_DOUBLE_EQ(r.t, row.t);
  }
}

TEST(EvaluateSlicesTest, WorksBelowAnyMiningThreshold) {
  // A slice so specific it would never be frequent still evaluates.
  std::vector<std::vector<int>> cells(100, {0, 0});
  cells[7] = {2, 1};  // a single row
  Labeled data;
  data.dataset = MakeEncoded(cells, {3, 2});
  data.preds.assign(100, 0);
  data.truths.assign(100, 0);
  data.preds[7] = 1;  // the one row is a false positive
  auto reports =
      EvaluateSlices(data.dataset, data.preds, data.truths,
                     Metric::kFalsePositiveRate,
                     {{{"a0", "v2"}, {"a1", "v1"}}});
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 1u);
  EXPECT_EQ((*reports)[0].counts.total(), 1u);
  EXPECT_DOUBLE_EQ((*reports)[0].rate, 1.0);
  EXPECT_NEAR((*reports)[0].divergence, 1.0 - 0.01, 1e-12);
}

TEST(EvaluateSlicesTest, EmptySpecIsWholeDataset) {
  const Labeled data = MakeLabeled(3);
  auto reports = EvaluateSlices(data.dataset, data.preds, data.truths,
                                Metric::kErrorRate, {SliceSpec{}});
  ASSERT_TRUE(reports.ok());
  EXPECT_DOUBLE_EQ((*reports)[0].support, 1.0);
  EXPECT_DOUBLE_EQ((*reports)[0].divergence, 0.0);
}

TEST(EvaluateSlicesTest, BadSpecsRejected) {
  const Labeled data = MakeLabeled(5);
  EXPECT_FALSE(EvaluateSlices(data.dataset, data.preds, data.truths,
                              Metric::kErrorRate, {{{"zzz", "v0"}}})
                   .ok());
  EXPECT_FALSE(EvaluateSlices(data.dataset, data.preds, data.truths,
                              Metric::kErrorRate, {{{"a0", "nope"}}})
                   .ok());
  EXPECT_FALSE(
      EvaluateSlices(data.dataset, data.preds, data.truths,
                     Metric::kErrorRate,
                     {{{"a0", "v0"}, {"a0", "v1"}}})
          .ok());
  EXPECT_FALSE(EvaluateSlices(data.dataset, {1, 0}, data.truths,
                              Metric::kErrorRate, {})
                   .ok());
}

}  // namespace
}  // namespace divexp
