#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include <cmath>

namespace divexp {
namespace {

TEST(BootstrapRateCiTest, ContainsPointEstimate) {
  Rng rng(1);
  const BootstrapCi ci = BootstrapRateCi(30, 70, &rng);
  EXPECT_TRUE(ci.Contains(0.3));
  EXPECT_GT(ci.hi, ci.lo);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
}

TEST(BootstrapRateCiTest, WidthShrinksWithSampleSize) {
  Rng rng(2);
  const BootstrapCi small = BootstrapRateCi(30, 70, &rng);
  const BootstrapCi large = BootstrapRateCi(3000, 7000, &rng);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(BootstrapRateCiTest, LargeSampleNormalPathConsistent) {
  // Above the exact-binomial cutoff the normal approximation is used;
  // the CI should be close to the analytic Wald interval.
  Rng rng(3);
  const uint64_t pos = 3000, neg = 7000;
  BootstrapOptions opts;
  opts.resamples = 4000;
  const BootstrapCi ci = BootstrapRateCi(pos, neg, &rng, opts);
  const double p = 0.3;
  const double se = std::sqrt(p * (1 - p) / 10000.0);
  EXPECT_NEAR(ci.lo, p - 1.96 * se, 3e-3);
  EXPECT_NEAR(ci.hi, p + 1.96 * se, 3e-3);
}

TEST(BootstrapRateCiTest, DegenerateCounts) {
  Rng rng(4);
  EXPECT_TRUE(BootstrapRateCi(0, 0, &rng).Contains(0.5));
  const BootstrapCi all_pos = BootstrapRateCi(50, 0, &rng);
  EXPECT_DOUBLE_EQ(all_pos.lo, 1.0);
  EXPECT_DOUBLE_EQ(all_pos.hi, 1.0);
}

TEST(BootstrapRateCiTest, CoversTruthAtNominalRate) {
  // Simulation: CI from binomial draws covers the true rate roughly
  // 95% of the time (loose bounds to stay robust).
  Rng rng(5);
  const double true_p = 0.35;
  const uint64_t n = 400;
  int covered = 0;
  const int trials = 200;
  BootstrapOptions opts;
  opts.resamples = 400;
  for (int trial = 0; trial < trials; ++trial) {
    uint64_t pos = 0;
    for (uint64_t i = 0; i < n; ++i) pos += rng.Bernoulli(true_p) ? 1 : 0;
    if (BootstrapRateCi(pos, n - pos, &rng, opts).Contains(true_p)) {
      ++covered;
    }
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GT(coverage, 0.88);
  EXPECT_LE(coverage, 1.0);
}

TEST(BootstrapDivergenceCiTest, ZeroDivergenceCiStraddlesZero) {
  Rng rng(6);
  // Subgroup rate equals the dataset rate: CI must contain 0.
  const BootstrapCi ci = BootstrapDivergenceCi(30, 70, 300, 700, &rng);
  EXPECT_TRUE(ci.Contains(0.0));
}

TEST(BootstrapDivergenceCiTest, StrongDivergenceExcludesZero) {
  Rng rng(7);
  // Subgroup rate 0.8 vs dataset 0.2 with decent counts.
  const BootstrapCi ci =
      BootstrapDivergenceCi(160, 40, 2000, 8000, &rng);
  EXPECT_FALSE(ci.Contains(0.0));
  EXPECT_GT(ci.lo, 0.3);
}

TEST(BootstrapDivergenceCiTest, AgreesWithWelchTOnSignificance) {
  // The two significance treatments should usually agree: a |t| >= 3
  // pattern should have a CI excluding zero, a |t| < 0.5 one should
  // not.
  Rng rng(8);
  const BootstrapCi strong =
      BootstrapDivergenceCi(90, 10, 5000, 5000, &rng);
  EXPECT_FALSE(strong.Contains(0.0));
  const BootstrapCi weak =
      BootstrapDivergenceCi(52, 48, 5000, 5000, &rng);
  EXPECT_TRUE(weak.Contains(0.0));
}

}  // namespace
}  // namespace divexp
