#include "stats/descriptive.h"

#include <gtest/gtest.h>

namespace divexp {
namespace {

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-5.0}), -5.0);
}

TEST(SampleVarianceTest, UnbiasedDenominator) {
  // var of {1, 2, 3} with n-1: ((1)+(0)+(1))/2 = 1.
  EXPECT_DOUBLE_EQ(SampleVariance({1.0, 2.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(SampleVariance({7.0}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({}), 0.0);
}

TEST(SampleStdDevTest, SquareRootOfVariance) {
  EXPECT_DOUBLE_EQ(SampleStdDev({1.0, 2.0, 3.0}), 1.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0 / 3.0), 2.0);
}

TEST(QuantileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(QuantileTest, EmptyGivesZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(EffectSizeTest, CohensDStyle) {
  // means 1 apart, both variances 1 -> pooled std 1 -> effect 1.
  EXPECT_DOUBLE_EQ(EffectSize(2.0, 1.0, 1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(EffectSize(1.0, 1.0, 2.0, 1.0), -1.0);
}

TEST(EffectSizeTest, ZeroPooledVarianceGivesZero) {
  EXPECT_DOUBLE_EQ(EffectSize(2.0, 0.0, 1.0, 0.0), 0.0);
}

}  // namespace
}  // namespace divexp
