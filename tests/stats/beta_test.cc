#include "stats/beta.h"

#include <gtest/gtest.h>

#include <cmath>

namespace divexp {
namespace {

TEST(BetaPosteriorTest, UniformPriorWhenNoObservations) {
  // Paper §3.3: the form stays numerically stable at k+ + k- = 0 (all
  // outcomes ⊥) — it degrades to the uniform prior.
  const BetaPosterior p = BetaPosteriorFromCounts(0, 0);
  EXPECT_DOUBLE_EQ(p.mean, 0.5);
  EXPECT_DOUBLE_EQ(p.variance, 1.0 / 12.0);
}

TEST(BetaPosteriorTest, MatchesPaperEquation3) {
  // mu = (k+ + 1) / (k+ + k- + 2), v per Eq. 3.
  const uint64_t kp = 7;
  const uint64_t km = 3;
  const BetaPosterior p = BetaPosteriorFromCounts(kp, km);
  EXPECT_DOUBLE_EQ(p.mean, 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(p.variance, (8.0 * 4.0) / (12.0 * 12.0 * 13.0));
}

TEST(BetaPosteriorTest, MeanConvergesToEmpiricalRate) {
  const BetaPosterior p = BetaPosteriorFromCounts(30000, 10000);
  EXPECT_NEAR(p.mean, 0.75, 1e-4);
  EXPECT_LT(p.variance, 1e-5);
}

TEST(BetaPosteriorTest, VarianceShrinksWithData) {
  double last = 1.0;
  for (uint64_t n : {1u, 10u, 100u, 1000u}) {
    const BetaPosterior p = BetaPosteriorFromCounts(n, n);
    EXPECT_LT(p.variance, last);
    last = p.variance;
  }
}

TEST(BetaPosteriorTest, SymmetricCountsGiveHalf) {
  const BetaPosterior p = BetaPosteriorFromCounts(5, 5);
  EXPECT_DOUBLE_EQ(p.mean, 0.5);
}

TEST(BetaPdfTest, UniformWhenAlphaBetaOne) {
  for (double z : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(BetaPdf(1.0, 1.0, z), 1.0, 1e-10);
  }
}

TEST(BetaPdfTest, IntegratesToOne) {
  // Trapezoid integration of Beta(3, 5).
  const int n = 20000;
  double integral = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z0 = static_cast<double>(i) / n;
    const double z1 = static_cast<double>(i + 1) / n;
    integral += 0.5 * (BetaPdf(3, 5, z0) + BetaPdf(3, 5, z1)) * (z1 - z0);
  }
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(BetaPdfTest, ZeroOutsideSupport) {
  EXPECT_DOUBLE_EQ(BetaPdf(2, 2, -0.1), 0.0);
  EXPECT_DOUBLE_EQ(BetaPdf(2, 2, 1.1), 0.0);
}

TEST(BetaCdfTest, MonotoneAndBounded) {
  double last = -1.0;
  for (double z = 0.0; z <= 1.0; z += 0.05) {
    const double c = BetaCdf(4.0, 2.0, z);
    EXPECT_GE(c, last);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    last = c;
  }
  EXPECT_DOUBLE_EQ(BetaCdf(4.0, 2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BetaCdf(4.0, 2.0, 1.0), 1.0);
}

TEST(BetaCdfTest, MedianOfSymmetricBetaIsHalf) {
  EXPECT_NEAR(BetaCdf(6.0, 6.0, 0.5), 0.5, 1e-10);
}

}  // namespace
}  // namespace divexp
