#include "stats/alpha_investing.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace divexp {
namespace {

TEST(AlphaInvestingTest, RejectsTinyPValues) {
  AlphaInvesting investor;
  EXPECT_TRUE(investor.Test(1e-9));
  EXPECT_EQ(investor.rejections(), 1u);
  EXPECT_EQ(investor.tests(), 1u);
}

TEST(AlphaInvestingTest, AcceptsLargePValues) {
  AlphaInvesting investor;
  EXPECT_FALSE(investor.Test(0.9));
  EXPECT_EQ(investor.rejections(), 0u);
}

TEST(AlphaInvestingTest, WealthGrowsOnRejection) {
  AlphaInvesting investor;
  const double before = investor.wealth();
  investor.Test(1e-9);
  EXPECT_GT(investor.wealth(), before);
}

TEST(AlphaInvestingTest, WealthShrinksOnAcceptance) {
  AlphaInvesting investor;
  const double before = investor.wealth();
  investor.Test(0.9);
  EXPECT_LT(investor.wealth(), before);
}

TEST(AlphaInvestingTest, ExhaustionStopsRejections) {
  AlphaInvesting investor;
  // Burn the wealth with repeated acceptances.
  for (int i = 0; i < 200; ++i) investor.Test(0.99);
  EXPECT_TRUE(investor.Exhausted());
  // Even an impossibly small p-value is no longer rejected.
  EXPECT_FALSE(investor.Test(1e-12));
}

TEST(AlphaInvestingTest, WealthNeverNegative) {
  AlphaInvesting investor;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    investor.Test(rng.Uniform());
    EXPECT_GE(investor.wealth(), 0.0);
  }
}

TEST(AlphaInvestingTest, RejectionsReplenishBudgetForLaterTests) {
  // A stream of strong signals keeps the tester alive indefinitely.
  AlphaInvesting investor;
  size_t rejected = 0;
  for (int i = 0; i < 100; ++i) {
    rejected += investor.Test(1e-8) ? 1 : 0;
  }
  EXPECT_EQ(rejected, 100u);
  EXPECT_FALSE(investor.Exhausted());
}

TEST(AlphaInvestingTest, ControlsFalseRejectionsUnderNull) {
  // With uniform p-values (all nulls), the expected number of false
  // rejections stays small — far below a fixed per-test alpha = 0.05
  // over 1000 tests (which would give ~50).
  Rng rng(7);
  AlphaInvesting investor;
  size_t rejected = 0;
  for (int i = 0; i < 1000; ++i) {
    rejected += investor.Test(rng.Uniform()) ? 1 : 0;
  }
  EXPECT_LT(rejected, 10u);
}

}  // namespace
}  // namespace divexp
