#include "stats/welch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/beta.h"
#include "util/random.h"

namespace divexp {
namespace {

TEST(WelchFromPosteriorsTest, MatchesPaperFormula) {
  // t = |mu1 - mu2| / sqrt(v1 + v2).
  EXPECT_DOUBLE_EQ(WelchTFromPosteriors(0.5, 0.01, 0.3, 0.03), 1.0);
  EXPECT_DOUBLE_EQ(WelchTFromPosteriors(0.3, 0.01, 0.5, 0.03), 1.0);
}

TEST(WelchFromPosteriorsTest, ZeroVarianceGivesZero) {
  EXPECT_DOUBLE_EQ(WelchTFromPosteriors(0.5, 0.0, 0.3, 0.0), 0.0);
}

TEST(WelchFromPosteriorsTest, GrowsWithDivergenceAndData) {
  // More data -> tighter posterior -> bigger t for the same gap.
  const BetaPosterior small = BetaPosteriorFromCounts(8, 2);
  const BetaPosterior large = BetaPosteriorFromCounts(800, 200);
  const BetaPosterior ref = BetaPosteriorFromCounts(5000, 5000);
  const double t_small = WelchTFromPosteriors(small.mean, small.variance,
                                              ref.mean, ref.variance);
  const double t_large = WelchTFromPosteriors(large.mean, large.variance,
                                              ref.mean, ref.variance);
  EXPECT_GT(t_large, t_small);
}

TEST(WelchTTestSummaryTest, IdenticalSamplesGiveZeroT) {
  const WelchResult r = WelchTTest(1.0, 0.5, 100, 1.0, 0.5, 100);
  EXPECT_DOUBLE_EQ(r.t, 0.0);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
}

TEST(WelchTTestSummaryTest, TinySamplesAreDegenerate) {
  const WelchResult r = WelchTTest(1.0, 0.5, 1, 2.0, 0.5, 100);
  EXPECT_DOUBLE_EQ(r.t, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WelchTTestSummaryTest, KnownExample) {
  // Classic textbook example: n1=n2=10, means 20/22, variances 4/9.
  const WelchResult r = WelchTTest(20.0, 4.0, 10, 22.0, 9.0, 10);
  EXPECT_NEAR(r.t, 2.0 / std::sqrt(0.4 + 0.9), 1e-12);
  EXPECT_GT(r.df, 15.0);
  EXPECT_LT(r.df, 18.0);
  EXPECT_LT(r.p_value, 0.15);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(WelchTTestRawTest, DetectsMeanShift) {
  Rng rng(99);
  std::vector<double> a(500), b(500);
  for (auto& x : a) x = rng.Normal(0.0, 1.0);
  for (auto& x : b) x = rng.Normal(0.5, 1.0);
  const WelchResult r = WelchTTest(a, b);
  EXPECT_GT(r.t, 4.0);
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(WelchTTestRawTest, NoShiftUsuallyInsignificant) {
  Rng rng(7);
  std::vector<double> a(500), b(500);
  for (auto& x : a) x = rng.Normal(0.0, 1.0);
  for (auto& x : b) x = rng.Normal(0.0, 1.0);
  const WelchResult r = WelchTTest(a, b);
  EXPECT_LT(r.t, 3.0);
  EXPECT_GT(r.p_value, 0.001);
}

}  // namespace
}  // namespace divexp
