// Golden-value checks of the statistical machinery against closed-form
// references, to 1e-9. The Beta quantiles use shapes whose CDFs invert
// analytically (polynomials in z), so the expected values are exact:
//   Beta(1,1): F(z) = z            => q(p) = p
//   Beta(2,1): F(z) = z^2          => q(p) = sqrt(p)
//   Beta(1,2): F(z) = 1 - (1-z)^2  => q(p) = 1 - sqrt(1-p)
//   Beta(3,1): F(z) = z^3          => q(p) = cbrt(p)
//   Beta(2,2): F(z) = 3z^2 - 2z^3  => q(5/32) = 1/4, q(27/32) = 3/4
// Degenerate inputs (zero variance, n = 1, all-⊥ outcomes) pin the
// documented fallback behavior so it can't drift silently.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/beta.h"
#include "stats/welch.h"

namespace divexp {
namespace {

constexpr double kTol = 1e-9;

TEST(BetaQuantileGoldenTest, UniformShapeIsIdentity) {
  for (double p : {0.0, 0.025, 0.25, 0.5, 0.75, 0.975, 1.0}) {
    EXPECT_NEAR(BetaQuantile(1.0, 1.0, p), p, kTol) << "p=" << p;
  }
}

TEST(BetaQuantileGoldenTest, PolynomialShapes) {
  for (double p : {0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99}) {
    EXPECT_NEAR(BetaQuantile(2.0, 1.0, p), std::sqrt(p), kTol);
    EXPECT_NEAR(BetaQuantile(1.0, 2.0, p), 1.0 - std::sqrt(1.0 - p), kTol);
    EXPECT_NEAR(BetaQuantile(3.0, 1.0, p), std::cbrt(p), kTol);
  }
  // Beta(2,2): F(1/4) = 3/16 - 2/64 = 5/32, F(3/4) = 27/16 - 54/64.
  EXPECT_NEAR(BetaQuantile(2.0, 2.0, 5.0 / 32.0), 0.25, kTol);
  EXPECT_NEAR(BetaQuantile(2.0, 2.0, 27.0 / 32.0), 0.75, kTol);
  EXPECT_NEAR(BetaQuantile(2.0, 2.0, 0.5), 0.5, kTol);
}

TEST(BetaQuantileGoldenTest, RoundTripsThroughCdf) {
  for (double alpha : {0.5, 1.0, 3.5, 12.0}) {
    for (double beta : {0.5, 2.0, 7.0}) {
      for (double p : {0.025, 0.5, 0.975}) {
        const double q = BetaQuantile(alpha, beta, p);
        EXPECT_NEAR(BetaCdf(alpha, beta, q), p, kTol)
            << "alpha=" << alpha << " beta=" << beta << " p=" << p;
      }
    }
  }
}

TEST(BetaQuantileGoldenTest, ClampsOutOfRangeProbability) {
  EXPECT_EQ(BetaQuantile(2.0, 3.0, -0.5), 0.0);
  EXPECT_EQ(BetaQuantile(2.0, 3.0, 1.5), 1.0);
}

TEST(BetaCredibleIntervalGoldenTest, AllBottomOutcomesStayUniform) {
  // An itemset whose rows are all ⊥ contributes k+ = k- = 0: the
  // posterior is the Beta(1,1) prior and the 95% central interval is
  // exactly [0.025, 0.975] (the paper's numerical-stability case).
  const BetaPosterior post = BetaPosteriorFromCounts(0, 0);
  EXPECT_NEAR(post.mean, 0.5, kTol);
  EXPECT_NEAR(post.variance, 1.0 / 12.0, kTol);
  const CredibleInterval ci = BetaCredibleInterval(1.0, 1.0, 0.95);
  EXPECT_NEAR(ci.lo, 0.025, kTol);
  EXPECT_NEAR(ci.hi, 0.975, kTol);
}

TEST(BetaCredibleIntervalGoldenTest, OneSuccessShape) {
  // One T, zero F outcomes => Beta(2,1); q(p) = sqrt(p).
  const CredibleInterval ci = BetaCredibleInterval(2.0, 1.0, 0.9);
  EXPECT_NEAR(ci.lo, std::sqrt(0.05), kTol);
  EXPECT_NEAR(ci.hi, std::sqrt(0.95), kTol);
}

TEST(BetaCredibleIntervalGoldenTest, FullMassIsWholeSupport) {
  const CredibleInterval ci = BetaCredibleInterval(4.0, 6.0, 1.0);
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(WelchGoldenTest, PosteriorTStatistic) {
  // |0.3 - 0.5| / sqrt(0.01 + 0.0025) = 0.2 / sqrt(0.0125).
  EXPECT_NEAR(WelchTFromPosteriors(0.3, 0.01, 0.5, 0.0025),
              1.7888543819998317, kTol);
  // Symmetric in the two posteriors.
  EXPECT_NEAR(WelchTFromPosteriors(0.5, 0.0025, 0.3, 0.01),
              1.7888543819998317, kTol);
}

TEST(WelchGoldenTest, ZeroVariancePosteriorsAreNotSignificant) {
  // Degenerate zero-variance posteriors: the documented fallback is
  // t = 0 rather than a NaN/Inf escaping into the divergence table.
  EXPECT_EQ(WelchTFromPosteriors(0.2, 0.0, 0.8, 0.0), 0.0);
}

TEST(WelchGoldenTest, SummaryStatisticsTest) {
  // mean1=1, var1=4, n1=4 vs mean2=3, var2=9, n2=9:
  //   se^2 = 4/4 + 9/9 = 2          => t = 2 / sqrt(2) = sqrt(2)
  //   df = 2^2 / (1/3 + 1/8) = 96/11.
  const WelchResult r = WelchTTest(1.0, 4.0, 4, 3.0, 9.0, 9);
  EXPECT_NEAR(r.t, 1.4142135623730951, kTol);
  EXPECT_NEAR(r.df, 96.0 / 11.0, kTol);
  EXPECT_GT(r.p_value, 0.0);
  EXPECT_LT(r.p_value, 1.0);
}

TEST(WelchGoldenTest, DegenerateSampleSizes) {
  // n = 1 (or 0) on either side cannot estimate a variance; the
  // documented result is the null (t=0, df=1, p=1).
  for (const WelchResult& r :
       {WelchTTest(1.0, 4.0, 1, 3.0, 9.0, 9),
        WelchTTest(1.0, 4.0, 4, 3.0, 9.0, 1),
        WelchTTest(1.0, 4.0, 0, 3.0, 9.0, 9)}) {
    EXPECT_EQ(r.t, 0.0);
    EXPECT_EQ(r.df, 1.0);
    EXPECT_EQ(r.p_value, 1.0);
  }
  // Zero sample variance on both sides: same null fallback.
  const WelchResult r = WelchTTest(1.0, 0.0, 5, 1.0, 0.0, 5);
  EXPECT_EQ(r.t, 0.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(WelchGoldenTest, RawSamplesMatchSummaryPath) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {2.0, 4.0, 6.0};
  const WelchResult raw = WelchTTest(a, b);
  // mean(a)=2.5, var(a)=5/3, mean(b)=4, var(b)=4.
  const WelchResult summary = WelchTTest(2.5, 5.0 / 3.0, 4, 4.0, 4.0, 3);
  EXPECT_NEAR(raw.t, summary.t, kTol);
  EXPECT_NEAR(raw.df, summary.df, kTol);
  EXPECT_NEAR(raw.p_value, summary.p_value, kTol);
}

}  // namespace
}  // namespace divexp
