#include "stats/special.h"

#include <gtest/gtest.h>

#include <cmath>

namespace divexp {
namespace {

TEST(LogGammaTest, MatchesKnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-9);
  EXPECT_NEAR(LogGamma(0.5), std::log(std::sqrt(M_PI)), 1e-9);
  EXPECT_NEAR(LogGamma(10.0), std::log(362880.0), 1e-7);
}

TEST(LogGammaTest, AgreesWithStdLgamma) {
  for (double x : {0.1, 0.7, 1.3, 3.7, 12.5, 100.0}) {
    EXPECT_NEAR(LogGamma(x), std::lgamma(x), 1e-8) << "x=" << x;
  }
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetricCase) {
  // I_0.5(a, a) = 0.5 by symmetry.
  for (double a : {0.5, 1.0, 2.0, 7.0}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(a, a, 0.5), 0.5, 1e-10);
  }
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.75, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBetaTest, ClosedFormQuadratic) {
  // I_x(2, 1) = x^2 and I_x(1, 2) = 1 - (1 - x)^2.
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 1.0, x), x * x, 1e-10);
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 2.0, x),
                1.0 - (1.0 - x) * (1.0 - x), 1e-10);
  }
}

TEST(IncompleteBetaTest, ComplementIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.15, 0.4, 0.85}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(3.0, 5.0, x),
                1.0 - RegularizedIncompleteBeta(5.0, 3.0, 1.0 - x),
                1e-10);
  }
}

TEST(StudentTCdfTest, SymmetricAroundZero) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(1.3, 8.0) + StudentTCdf(-1.3, 8.0), 1.0, 1e-12);
}

TEST(StudentTCdfTest, KnownQuantiles) {
  // t = 2.776 is the 97.5% quantile for df = 4.
  EXPECT_NEAR(StudentTCdf(2.776, 4.0), 0.975, 1e-3);
  // t = 1.812 is the 95% quantile for df = 10.
  EXPECT_NEAR(StudentTCdf(1.812, 10.0), 0.95, 1e-3);
}

TEST(StudentTCdfTest, LargeDfApproachesNormal) {
  EXPECT_NEAR(StudentTCdf(1.96, 100000.0), NormalCdf(1.96), 1e-4);
}

TEST(TwoSidedTPValueTest, MatchesCdf) {
  const double t = 2.0;
  const double df = 12.0;
  EXPECT_NEAR(TwoSidedTPValue(t, df), 2.0 * (1.0 - StudentTCdf(t, df)),
              1e-10);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-4);
}

}  // namespace
}  // namespace divexp
