// Property-based cross-checks of the two miners:
//  * soundness/completeness vs a brute-force enumerator (Theorem 5.1),
//  * Apriori and FP-growth produce identical pattern tables,
//  * anti-monotonicity of support.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "fpm/apriori.h"
#include "fpm/fpgrowth.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

struct RandomCase {
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
};

RandomCase MakeRandomCase(uint64_t seed, size_t rows, size_t attrs,
                          int domain) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells(rows, std::vector<int>(attrs));
  std::vector<Outcome> outcomes(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < attrs; ++a) {
      cells[r][a] = static_cast<int>(rng.Below(domain));
    }
    const double u = rng.Uniform();
    outcomes[r] = u < 0.3   ? Outcome::kTrue
                  : u < 0.7 ? Outcome::kFalse
                            : Outcome::kBottom;
  }
  RandomCase c;
  c.dataset = MakeEncoded(cells, std::vector<int>(attrs, domain));
  c.outcomes = std::move(outcomes);
  return c;
}

// Exhaustive reference implementation: enumerate every itemset (over
// distinct attributes) by brute force and tally outcomes row by row.
std::map<Itemset, OutcomeCounts> BruteForce(const EncodedDataset& ds,
                                            const std::vector<Outcome>& o,
                                            double min_support) {
  std::map<Itemset, OutcomeCounts> out;
  const uint64_t min_count = MinCount(min_support, ds.num_rows);
  // Every attribute picks one of its items or nothing.
  std::vector<int> choice(ds.num_attributes, -1);
  std::vector<uint32_t> firsts(ds.num_attributes);
  for (uint32_t a = 0; a < ds.num_attributes; ++a) {
    firsts[a] = ds.catalog.first_item(a);
  }
  std::function<void(size_t)> rec = [&](size_t attr) {
    if (attr == ds.num_attributes) {
      Itemset items;
      for (size_t a = 0; a < ds.num_attributes; ++a) {
        if (choice[a] >= 0) {
          items.push_back(firsts[a] + static_cast<uint32_t>(choice[a]));
        }
      }
      items = MakeItemset(items);
      OutcomeCounts counts;
      for (size_t r = 0; r < ds.num_rows; ++r) {
        bool covered = true;
        for (size_t a = 0; a < ds.num_attributes; ++a) {
          if (choice[a] >= 0 &&
              ds.at(r, a) != firsts[a] + static_cast<uint32_t>(choice[a])) {
            covered = false;
            break;
          }
        }
        if (!covered) continue;
        switch (o[r]) {
          case Outcome::kTrue:
            ++counts.t;
            break;
          case Outcome::kFalse:
            ++counts.f;
            break;
          case Outcome::kBottom:
            ++counts.bot;
            break;
        }
      }
      if (items.empty() || counts.total() >= min_count) {
        out[items] = counts;
      }
      return;
    }
    for (int v = -1; v < static_cast<int>(ds.catalog.domain_size(
                             static_cast<uint32_t>(attr)));
         ++v) {
      choice[attr] = v;
      rec(attr + 1);
    }
    choice[attr] = -1;
  };
  rec(0);
  return out;
}

std::map<Itemset, OutcomeCounts> ToMap(
    const std::vector<MinedPattern>& patterns) {
  std::map<Itemset, OutcomeCounts> out;
  for (const auto& p : patterns) out[p.items] = p.counts;
  return out;
}

class MinerPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(MinerPropertyTest, BothMinersMatchBruteForce) {
  const auto [seed, support] = GetParam();
  const RandomCase c = MakeRandomCase(seed, 60, 4, 3);
  auto db = TransactionDatabase::Create(c.dataset, c.outcomes);
  ASSERT_TRUE(db.ok());

  MinerOptions opts;
  opts.min_support = support;

  const auto expected = BruteForce(c.dataset, c.outcomes, support);

  for (MinerKind kind :
       {MinerKind::kFpGrowth, MinerKind::kApriori, MinerKind::kEclat}) {
    auto miner = MakeMiner(kind);
    auto patterns = miner->Mine(*db, opts);
    ASSERT_TRUE(patterns.ok());
    EXPECT_EQ(ToMap(*patterns), expected)
        << miner->name() << " mismatch";
  }
}

TEST_P(MinerPropertyTest, SupportIsAntiMonotone) {
  const auto [seed, support] = GetParam();
  const RandomCase c = MakeRandomCase(seed + 1000, 80, 4, 3);
  auto db = TransactionDatabase::Create(c.dataset, c.outcomes);
  ASSERT_TRUE(db.ok());
  MinerOptions opts;
  opts.min_support = support;
  FpGrowthMiner fp;
  auto patterns = fp.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  const auto map = ToMap(*patterns);
  for (const auto& [items, counts] : map) {
    for (uint32_t alpha : items) {
      const Itemset sub = Without(items, alpha);
      ASSERT_EQ(map.count(sub), 1u)
          << "subset of a frequent itemset missing";
      EXPECT_GE(map.at(sub).total(), counts.total());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0.02, 0.05, 0.15, 0.4)));

TEST(MinerEquivalenceTest, LargerRandomInstance) {
  const RandomCase c = MakeRandomCase(99, 500, 6, 4);
  auto db = TransactionDatabase::Create(c.dataset, c.outcomes);
  ASSERT_TRUE(db.ok());
  MinerOptions opts;
  opts.min_support = 0.02;
  FpGrowthMiner fp;
  AprioriMiner ap;
  auto a = fp.Mine(*db, opts);
  auto b = ap.Mine(*db, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->size(), b->size());
  EXPECT_EQ(ToMap(*a), ToMap(*b));
}

TEST(SortPatternsTest, DeterministicOrder) {
  std::vector<MinedPattern> patterns;
  patterns.push_back({Itemset{2, 3}, {}});
  patterns.push_back({Itemset{1}, {}});
  patterns.push_back({Itemset{}, {}});
  patterns.push_back({Itemset{1, 4}, {}});
  SortPatterns(&patterns);
  EXPECT_EQ(patterns[0].items, Itemset{});
  EXPECT_EQ(patterns[1].items, Itemset{1});
  EXPECT_EQ(patterns[2].items, (Itemset{1, 4}));
  EXPECT_EQ(patterns[3].items, (Itemset{2, 3}));
}

}  // namespace
}  // namespace divexp
