// Kernel-level differential suite: every KernelOps implementation the
// build ships (scalar, AVX2, NEON) must be bit-identical to a naive
// bit-at-a-time oracle — and to each other — on randomized inputs
// across every length 0..300, shifted (unaligned) buffers, all-zero /
// all-one edges, and garbage in the padding bits past num_bits. The
// scalar table is additionally the documented oracle for the SIMD
// tables, so both directions are checked. A kernel that reads past the
// tail-word mask, mis-handles a partial vector, or drifts from the
// scalar tally by one bit fails here before it can perturb a mined
// pattern.
#include "fpm/kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace divexp {
namespace fpm {
namespace {

constexpr size_t kMaxBits = 300;
// Extra lead words so tests can probe shifted (vector-unaligned)
// buffer starts without growing the logical bitmap.
constexpr size_t kLeadSlack = 3;

size_t WordsFor(size_t num_bits) { return (num_bits + 63) / 64; }

// The independent oracle: bit-at-a-time, no words, no masks. Both the
// scalar and SIMD tables must agree with it exactly.
bool BitAt(const uint64_t* words, size_t i) {
  return ((words[i / 64] >> (i % 64)) & 1u) != 0;
}

uint64_t NaivePopcount(const uint64_t* words, size_t num_bits) {
  uint64_t n = 0;
  for (size_t i = 0; i < num_bits; ++i) n += BitAt(words, i) ? 1 : 0;
  return n;
}

KernelTally NaiveTally(const uint64_t* rows, const uint64_t* t_mask,
                       const uint64_t* f_mask, size_t num_bits) {
  KernelTally out;
  for (size_t i = 0; i < num_bits; ++i) {
    if (!BitAt(rows, i)) continue;
    ++out.support;
    if (BitAt(t_mask, i)) ++out.t;
    if (BitAt(f_mask, i)) ++out.f;
  }
  return out;
}

// A bitmap buffer whose padding bits (past num_bits) are filled with
// garbage: the kernel contract says they must never influence any
// count, so every fixture poisons them deliberately.
std::vector<uint64_t> RandomWords(size_t num_bits, std::mt19937_64* rng,
                                  double density) {
  std::vector<uint64_t> words(kLeadSlack + WordsFor(num_bits) + 1, 0);
  std::bernoulli_distribution bit(density);
  for (size_t i = 0; i < num_bits; ++i) {
    if (bit(*rng)) words[kLeadSlack + i / 64] |= uint64_t{1} << (i % 64);
  }
  // Poison the padding: garbage above num_bits in the tail word and a
  // full garbage word after it.
  if (num_bits % 64 != 0) {
    words[kLeadSlack + num_bits / 64] |=
        (*rng)() & ~TailWordMask(num_bits);
  }
  words.back() = (*rng)();
  return words;
}

std::vector<const KernelOps*> AllKernels() {
  std::vector<const KernelOps*> all = {&ScalarKernelOps()};
  if (SimdKernelOps() != nullptr) all.push_back(SimdKernelOps());
  return all;
}

TEST(KernelDifferentialTest, PopcountMatchesOracleAllLengths) {
  std::mt19937_64 rng(0xD17E);
  for (size_t bits = 0; bits <= kMaxBits; ++bits) {
    for (double density : {0.02, 0.5, 0.97}) {
      const auto words = RandomWords(bits, &rng, density);
      const uint64_t* p = words.data() + kLeadSlack;
      const uint64_t want = NaivePopcount(p, bits);
      for (const KernelOps* ops : AllKernels()) {
        ASSERT_EQ(ops->popcount(p, bits), want)
            << ops->name << " bits=" << bits << " density=" << density;
      }
    }
  }
}

TEST(KernelDifferentialTest, AndPopcountMatchesOracleAllLengths) {
  std::mt19937_64 rng(0xA11D);
  for (size_t bits = 0; bits <= kMaxBits; ++bits) {
    const auto a = RandomWords(bits, &rng, 0.4);
    const auto b = RandomWords(bits, &rng, 0.4);
    const uint64_t* pa = a.data() + kLeadSlack;
    const uint64_t* pb = b.data() + kLeadSlack;
    uint64_t want = 0;
    for (size_t i = 0; i < bits; ++i) {
      want += (BitAt(pa, i) && BitAt(pb, i)) ? 1 : 0;
    }
    for (const KernelOps* ops : AllKernels()) {
      ASSERT_EQ(ops->and_popcount(pa, pb, bits), want)
          << ops->name << " bits=" << bits;
    }
  }
}

TEST(KernelDifferentialTest, FusedTallyEqualsOracleAndSeparateRecounts) {
  std::mt19937_64 rng(0x7A11);
  for (size_t bits = 0; bits <= kMaxBits; ++bits) {
    const auto rows = RandomWords(bits, &rng, 0.5);
    const auto t = RandomWords(bits, &rng, 0.3);
    const auto f = RandomWords(bits, &rng, 0.3);
    const uint64_t* pr = rows.data() + kLeadSlack;
    const uint64_t* pt = t.data() + kLeadSlack;
    const uint64_t* pf = f.data() + kLeadSlack;
    const KernelTally want = NaiveTally(pr, pt, pf, bits);
    for (const KernelOps* ops : AllKernels()) {
      const KernelTally got = ops->tally(pr, pt, pf, bits);
      ASSERT_EQ(got.support, want.support) << ops->name << " bits=" << bits;
      ASSERT_EQ(got.t, want.t) << ops->name << " bits=" << bits;
      ASSERT_EQ(got.f, want.f) << ops->name << " bits=" << bits;
      // The fused pass must equal three separate counting passes — the
      // exact recount the pre-kernel Apriori code performed.
      ASSERT_EQ(got.support, ops->popcount(pr, bits)) << ops->name;
      ASSERT_EQ(got.t, ops->and_popcount(pr, pt, bits)) << ops->name;
      ASSERT_EQ(got.f, ops->and_popcount(pr, pf, bits)) << ops->name;
    }
  }
}

TEST(KernelDifferentialTest, AndAssignTallyWritesExactIntersection) {
  std::mt19937_64 rng(0xAA57);
  for (size_t bits = 0; bits <= kMaxBits; ++bits) {
    const auto a = RandomWords(bits, &rng, 0.6);
    const auto b = RandomWords(bits, &rng, 0.6);
    const auto t = RandomWords(bits, &rng, 0.3);
    const auto f = RandomWords(bits, &rng, 0.3);
    const uint64_t* pa = a.data() + kLeadSlack;
    const uint64_t* pb = b.data() + kLeadSlack;
    const uint64_t* pt = t.data() + kLeadSlack;
    const uint64_t* pf = f.data() + kLeadSlack;
    const size_t nw = WordsFor(bits);
    for (const KernelOps* ops : AllKernels()) {
      std::vector<uint64_t> dst(nw + 1, 0xDEADBEEFDEADBEEFull);
      const KernelTally got =
          ops->and_assign_tally(dst.data(), pa, pb, pt, pf, bits);
      // Tallies match a tally over the materialized intersection.
      std::vector<uint64_t> expect_words(nw + 1, 0);
      for (size_t w = 0; w < nw; ++w) expect_words[w] = pa[w] & pb[w];
      const KernelTally want =
          NaiveTally(expect_words.data(), pt, pf, bits);
      ASSERT_EQ(got.support, want.support) << ops->name << " bits=" << bits;
      ASSERT_EQ(got.t, want.t) << ops->name << " bits=" << bits;
      ASSERT_EQ(got.f, want.f) << ops->name << " bits=" << bits;
      // dst holds the exact word-wise AND on every valid bit, and the
      // kernel never wrote past the word array.
      for (size_t i = 0; i < bits; ++i) {
        ASSERT_EQ(BitAt(dst.data(), i),
                  BitAt(pa, i) && BitAt(pb, i))
            << ops->name << " bits=" << bits << " i=" << i;
      }
      ASSERT_EQ(dst[nw], 0xDEADBEEFDEADBEEFull)
          << ops->name << " wrote past the last word, bits=" << bits;
    }
  }
}

TEST(KernelDifferentialTest, AllZeroAndAllOneEdges) {
  for (size_t bits : {0ul, 1ul, 63ul, 64ul, 65ul, 127ul, 128ul, 129ul,
                      255ul, 256ul, 300ul}) {
    const size_t nw = WordsFor(bits);
    std::vector<uint64_t> zeros(nw + 1, 0);
    std::vector<uint64_t> ones(nw + 1, ~uint64_t{0});
    // Garbage beyond num_bits even in the "all zero" fixture.
    if (nw > 0) zeros[nw - 1] |= ~TailWordMask(bits);
    zeros[nw] = ~uint64_t{0};
    for (const KernelOps* ops : AllKernels()) {
      ASSERT_EQ(ops->popcount(zeros.data(), bits), 0u)
          << ops->name << " bits=" << bits;
      ASSERT_EQ(ops->popcount(ones.data(), bits), bits)
          << ops->name << " bits=" << bits;
      ASSERT_EQ(ops->and_popcount(zeros.data(), ones.data(), bits), 0u)
          << ops->name << " bits=" << bits;
      ASSERT_EQ(ops->and_popcount(ones.data(), ones.data(), bits), bits)
          << ops->name << " bits=" << bits;
      const KernelTally tally =
          ops->tally(ones.data(), ones.data(), zeros.data(), bits);
      ASSERT_EQ(tally.support, bits) << ops->name;
      ASSERT_EQ(tally.t, bits) << ops->name;
      ASSERT_EQ(tally.f, 0u) << ops->name;
    }
  }
}

TEST(KernelDifferentialTest, ShiftedBuffersStayIdentical) {
  // SIMD loads must be alignment-agnostic: the same logical bitmap
  // presented at word offsets 0..kLeadSlack yields the same counts.
  std::mt19937_64 rng2(0x51F7);
  for (size_t bits : {65ul, 130ul, 192ul, 300ul}) {
    const auto base = RandomWords(bits, &rng2, 0.5);
    const size_t nw = WordsFor(bits);
    const uint64_t want =
        NaivePopcount(base.data() + kLeadSlack, bits);
    for (size_t shift = 0; shift <= kLeadSlack; ++shift) {
      std::vector<uint64_t> moved(shift + nw + 1, 0);
      std::copy(base.begin() + kLeadSlack,
                base.begin() + kLeadSlack + nw + 1,
                moved.begin() + shift);
      for (const KernelOps* ops : AllKernels()) {
        ASSERT_EQ(ops->popcount(moved.data() + shift, bits), want)
            << ops->name << " bits=" << bits << " shift=" << shift;
      }
    }
  }
}

std::vector<uint32_t> RandomSortedTids(size_t max_len, uint32_t universe,
                                       std::mt19937_64* rng) {
  std::uniform_int_distribution<size_t> len_dist(0, max_len);
  std::uniform_int_distribution<uint32_t> tid_dist(0, universe);
  std::vector<uint32_t> tids;
  const size_t len = len_dist(*rng);
  tids.reserve(len);
  for (size_t i = 0; i < len; ++i) tids.push_back(tid_dist(*rng));
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  return tids;
}

TEST(KernelDifferentialTest, IntersectMatchesSetIntersection) {
  std::mt19937_64 rng(0x1B7E);
  for (int trial = 0; trial < 400; ++trial) {
    const auto a = RandomSortedTids(kMaxBits, 512, &rng);
    const auto b = RandomSortedTids(kMaxBits, 512, &rng);
    std::vector<uint32_t> want;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(want));
    for (const KernelOps* ops : AllKernels()) {
      std::vector<uint32_t> out(std::min(a.size(), b.size()) + 1,
                                0xFFFFFFFFu);
      const size_t n = ops->intersect(a.data(), a.size(), b.data(),
                                      b.size(), out.data());
      ASSERT_EQ(n, want.size()) << ops->name << " trial=" << trial;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], want[i]) << ops->name << " trial=" << trial;
      }
    }
  }
}

TEST(KernelDifferentialTest, BoundedIntersectHonorsItsContract) {
  // Contract: a result >= min_count is the exact full intersection;
  // a result < min_count certifies the exact size is also < min_count
  // (the pruned candidate was truly infrequent, so discarding it can
  // never change the mined output).
  std::mt19937_64 rng(0xB0DD);
  for (int trial = 0; trial < 400; ++trial) {
    const auto a = RandomSortedTids(kMaxBits, 400, &rng);
    const auto b = RandomSortedTids(kMaxBits, 400, &rng);
    std::vector<uint32_t> want;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(want));
    std::uniform_int_distribution<uint64_t> bound_dist(
        0, std::min(a.size(), b.size()) + 2);
    const uint64_t min_count = bound_dist(rng);
    for (const KernelOps* ops : AllKernels()) {
      std::vector<uint32_t> out(std::min(a.size(), b.size()) + 1,
                                0xFFFFFFFFu);
      const size_t n =
          ops->intersect_bounded(a.data(), a.size(), b.data(), b.size(),
                                 out.data(), min_count);
      if (n >= min_count) {
        ASSERT_EQ(n, want.size())
            << ops->name << " trial=" << trial << " bound=" << min_count;
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[i], want[i]) << ops->name << " trial=" << trial;
        }
      } else {
        ASSERT_LT(want.size(), min_count)
            << ops->name << " pruned a frequent candidate, trial="
            << trial;
      }
    }
  }
}

TEST(KernelDifferentialTest, ScalarAndSimdTablesAreDistinctWhenPresent) {
  EXPECT_STREQ(ScalarKernelOps().name, "scalar");
  if (!SimdAvailable()) {
    GTEST_SKIP() << "no SIMD kernel compiled in for this target";
  }
  ASSERT_NE(SimdKernelOps(), nullptr);
  EXPECT_STRNE(SimdKernelOps()->name, "scalar");
  // Resolution: explicit scalar always wins; auto/simd pick the table.
  EXPECT_EQ(&ResolveKernel(KernelKind::kScalar), &ScalarKernelOps());
  EXPECT_EQ(&ResolveKernel(KernelKind::kSimd), SimdKernelOps());
  EXPECT_EQ(&ResolveKernel(KernelKind::kAuto), SimdKernelOps());
}

TEST(SupportUpperBoundTest, MinOverItemSupports) {
  const uint64_t supports[] = {10, 3, 7, 0, 42};
  const uint32_t items_a[] = {0, 2};
  EXPECT_EQ(SupportUpperBound(items_a, 2, supports, 5), 7u);
  const uint32_t items_b[] = {0, 1, 4};
  EXPECT_EQ(SupportUpperBound(items_b, 3, supports, 5), 3u);
  const uint32_t items_c[] = {3};
  EXPECT_EQ(SupportUpperBound(items_c, 1, supports, 5), 0u);
  // Unknown items (outside the table) bound to zero.
  const uint32_t items_d[] = {0, 9};
  EXPECT_EQ(SupportUpperBound(items_d, 2, supports, 5), 0u);
  // The empty itemset is unconstrained.
  EXPECT_EQ(SupportUpperBound(nullptr, 0, supports, 5),
            ~uint64_t{0});
}

}  // namespace
}  // namespace fpm
}  // namespace divexp
