// Pattern-budget truncation semantics, which all miners must share:
// deterministic output, sequential == parallel, a consistent truncated
// flag, and truncated sets that are genuine subsets of the full run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fpm/miner.h"
#include "testing/test_data.h"
#include "util/random.h"
#include "util/run_guard.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

TransactionDatabase MakeDb(uint64_t seed, size_t rows) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells;
  std::vector<Outcome> outcomes;
  for (size_t r = 0; r < rows; ++r) {
    cells.push_back({static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(2)),
                     static_cast<int>(rng.Below(2))});
    const double u = rng.Uniform();
    outcomes.push_back(u < 0.35  ? Outcome::kTrue
                       : u < 0.8 ? Outcome::kFalse
                                 : Outcome::kBottom);
  }
  auto db = TransactionDatabase::Create(MakeEncoded(cells, {3, 3, 2, 2}),
                                        outcomes);
  DIVEXP_CHECK(db.ok());
  return *std::move(db);
}

void ExpectSamePatterns(const std::vector<MinedPattern>& a,
                        const std::vector<MinedPattern>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].items, b[i].items) << "at " << i;
    EXPECT_EQ(a[i].counts, b[i].counts) << "at " << i;
  }
}

class TruncationTest : public ::testing::TestWithParam<MinerKind> {};

TEST_P(TruncationTest, BudgetedRunIsEmissionOrderPrefixOfFullRun) {
  const TransactionDatabase db = MakeDb(17, 600);
  auto miner = MakeMiner(GetParam());
  MinerOptions opts;
  opts.min_support = 0.02;

  auto full = miner->Mine(db, opts);
  ASSERT_TRUE(full.ok());
  const uint64_t budget = 10;
  ASSERT_GT(full->size(), budget + 1);

  RunLimits limits;
  limits.max_patterns = budget;
  RunGuard guard(limits);
  MinerOptions bounded = opts;
  bounded.guard = &guard;
  auto truncated = miner->Mine(db, bounded);
  ASSERT_TRUE(truncated.ok());

  // Exactly budget patterns plus the empty itemset, and the breach is
  // the soft pattern-budget one (no hard stop).
  ASSERT_EQ(truncated->size(), budget + 1);
  EXPECT_TRUE((*truncated)[0].items.empty());
  EXPECT_EQ(guard.breach(), LimitBreach::kPatternBudget);
  EXPECT_TRUE(guard.stopped());
  EXPECT_FALSE(guard.hard_stopped());

  // The truncated output is the prefix of the full output in this
  // miner's emission order — budget truncation never reorders.
  for (size_t i = 0; i < truncated->size(); ++i) {
    EXPECT_EQ((*truncated)[i].items, (*full)[i].items) << "at " << i;
    EXPECT_EQ((*truncated)[i].counts, (*full)[i].counts) << "at " << i;
  }
}

TEST_P(TruncationTest, BudgetedRunIsDeterministic) {
  const TransactionDatabase db = MakeDb(23, 600);
  auto miner = MakeMiner(GetParam());
  MinerOptions opts;
  opts.min_support = 0.02;

  RunLimits limits;
  limits.max_patterns = 25;
  std::vector<MinedPattern> previous;
  for (int run = 0; run < 3; ++run) {
    RunGuard guard(limits);
    MinerOptions bounded = opts;
    bounded.guard = &guard;
    auto out = miner->Mine(db, bounded);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(guard.breach(), LimitBreach::kPatternBudget);
    if (run > 0) ExpectSamePatterns(*out, previous);
    previous = *std::move(out);
  }
}

TEST_P(TruncationTest, ParallelBudgetedRunMatchesSequential) {
  const TransactionDatabase db = MakeDb(31, 600);
  auto miner = MakeMiner(GetParam());
  RunLimits limits;
  limits.max_patterns = 15;

  RunGuard seq_guard(limits);
  MinerOptions seq;
  seq.min_support = 0.02;
  seq.guard = &seq_guard;
  auto sequential = miner->Mine(db, seq);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(seq_guard.breach(), LimitBreach::kPatternBudget);

  for (size_t threads : {2u, 4u}) {
    RunGuard par_guard(limits);
    MinerOptions par = seq;
    par.num_threads = threads;
    par.guard = &par_guard;
    auto parallel = miner->Mine(db, par);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(par_guard.breach(), LimitBreach::kPatternBudget)
        << "threads=" << threads;
    ExpectSamePatterns(*parallel, *sequential);
  }
}

TEST_P(TruncationTest, SortedTruncatedSetIsSubsetOfFullSet) {
  const TransactionDatabase db = MakeDb(41, 600);
  auto miner = MakeMiner(GetParam());
  MinerOptions opts;
  opts.min_support = 0.02;
  auto full = miner->Mine(db, opts);
  ASSERT_TRUE(full.ok());

  RunLimits limits;
  limits.max_patterns = 12;
  RunGuard guard(limits);
  MinerOptions bounded = opts;
  bounded.guard = &guard;
  auto truncated = miner->Mine(db, bounded);
  ASSERT_TRUE(truncated.ok());

  SortPatterns(&*full);
  SortPatterns(&*truncated);
  size_t fi = 0;
  for (const MinedPattern& p : *truncated) {
    while (fi < full->size() && (*full)[fi].items != p.items) ++fi;
    ASSERT_LT(fi, full->size())
        << "truncated pattern missing from the full run";
    EXPECT_EQ((*full)[fi].counts, p.counts);
  }
}

TEST_P(TruncationTest, GenerousBudgetDoesNotTruncate) {
  const TransactionDatabase db = MakeDb(47, 400);
  auto miner = MakeMiner(GetParam());
  MinerOptions opts;
  opts.min_support = 0.02;
  auto full = miner->Mine(db, opts);
  ASSERT_TRUE(full.ok());

  // A budget equal to the number of non-empty patterns must not latch
  // a breach: truncation means patterns were actually left unmined.
  RunLimits limits;
  limits.max_patterns = full->size() - 1;
  RunGuard guard(limits);
  MinerOptions bounded = opts;
  bounded.guard = &guard;
  auto out = miner->Mine(db, bounded);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(guard.breach(), LimitBreach::kNone);
  ExpectSamePatterns(*out, *full);
}

INSTANTIATE_TEST_SUITE_P(AllMiners, TruncationTest,
                         ::testing::Values(MinerKind::kFpGrowth,
                                           MinerKind::kApriori,
                                           MinerKind::kEclat),
                         [](const auto& info) {
                           return std::string(MinerKindName(info.param));
                         });

TEST(TruncationAgreementTest, AllMinersAgreeOnTruncatedFlag) {
  const TransactionDatabase db = MakeDb(53, 500);
  for (uint64_t budget : {5u, 50u, 100000u}) {
    RunLimits limits;
    limits.max_patterns = budget;
    int truncated_count = 0;
    size_t expected_size = 0;
    bool first = true;
    for (MinerKind kind : {MinerKind::kFpGrowth, MinerKind::kApriori,
                           MinerKind::kEclat}) {
      RunGuard guard(limits);
      MinerOptions opts;
      opts.min_support = 0.02;
      opts.guard = &guard;
      auto out = MakeMiner(kind)->Mine(db, opts);
      ASSERT_TRUE(out.ok());
      if (guard.stopped()) ++truncated_count;
      // All miners enumerate the same total set, so the truncated
      // output size is identical even when its contents differ.
      if (first) {
        expected_size = out->size();
        first = false;
      } else {
        EXPECT_EQ(out->size(), expected_size)
            << MinerKindName(kind) << " budget=" << budget;
      }
    }
    EXPECT_TRUE(truncated_count == 0 || truncated_count == 3)
        << "miners disagree on truncation at budget=" << budget;
  }
}

TEST(TruncationAgreementTest, MinersAgreeExactlyOnCraftedSingletonOrder) {
  // One attribute with strictly increasing value frequencies: v0 once,
  // v1 twice, v2 three times, v3 four times. Every miner then emits
  // singletons in the same order — FP-growth mines least-frequent
  // headers first (= ascending id here, no ties), Apriori and ECLAT go
  // in id order — so with max_length=1 the truncated outputs must be
  // *identical* across backends, not merely same-sized.
  std::vector<std::vector<int>> cells;
  for (int v = 0; v < 4; ++v) {
    for (int k = 0; k <= v; ++k) cells.push_back({v});
  }
  std::vector<Outcome> outcomes(cells.size(), Outcome::kTrue);
  auto db =
      TransactionDatabase::Create(MakeEncoded(cells, {4}), outcomes);
  ASSERT_TRUE(db.ok());

  std::vector<std::vector<MinedPattern>> results;
  for (MinerKind kind : {MinerKind::kFpGrowth, MinerKind::kApriori,
                         MinerKind::kEclat}) {
    RunLimits limits;
    limits.max_patterns = 2;
    RunGuard guard(limits);
    MinerOptions opts;
    opts.min_support = 0.05;  // min count 1: all four singletons frequent
    opts.max_length = 1;
    opts.guard = &guard;
    auto out = MakeMiner(kind)->Mine(*db, opts);
    ASSERT_TRUE(out.ok()) << MinerKindName(kind);
    EXPECT_EQ(guard.breach(), LimitBreach::kPatternBudget)
        << MinerKindName(kind);
    ASSERT_EQ(out->size(), 3u) << MinerKindName(kind);
    results.push_back(*std::move(out));
  }
  ExpectSamePatterns(results[1], results[0]);
  ExpectSamePatterns(results[2], results[0]);
  // And the order is the known one: empty, then v0 (support 1), v1.
  EXPECT_TRUE(results[0][0].items.empty());
  EXPECT_EQ(results[0][1].counts.total(), 1u);
  EXPECT_EQ(results[0][2].counts.total(), 2u);
}

}  // namespace
}  // namespace divexp
