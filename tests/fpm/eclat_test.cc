#include "fpm/eclat.h"

#include <gtest/gtest.h>

#include <map>

#include "fpm/fpgrowth.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;
using testing::OutcomesFromString;

std::map<Itemset, OutcomeCounts> ToMap(
    const std::vector<MinedPattern>& patterns) {
  std::map<Itemset, OutcomeCounts> out;
  for (const auto& p : patterns) {
    EXPECT_EQ(out.count(p.items), 0u) << "duplicate itemset";
    out[p.items] = p.counts;
  }
  return out;
}

TEST(EclatTest, MinesTinyDatasetCompletely) {
  const EncodedDataset ds =
      MakeEncoded({{0, 0}, {0, 1}, {1, 0}, {1, 1}}, {2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TTFF"));
  ASSERT_TRUE(db.ok());
  EclatMiner miner;
  MinerOptions opts;
  opts.min_support = 0.25;
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  const auto map = ToMap(*patterns);
  EXPECT_EQ(map.size(), 9u);
  EXPECT_EQ(map.at(Itemset{}), (OutcomeCounts{2, 2, 0}));
  EXPECT_EQ(map.at(Itemset{0}), (OutcomeCounts{2, 0, 0}));
  EXPECT_EQ(map.at(Itemset{1, 3}), (OutcomeCounts{0, 1, 0}));
}

TEST(EclatTest, AgreesWithFpGrowthOnRandomData) {
  Rng rng(31);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::vector<int>> cells;
    std::vector<Outcome> outcomes;
    for (int r = 0; r < 200; ++r) {
      cells.push_back({static_cast<int>(rng.Below(3)),
                       static_cast<int>(rng.Below(2)),
                       static_cast<int>(rng.Below(4))});
      const double u = rng.Uniform();
      outcomes.push_back(u < 0.4   ? Outcome::kTrue
                         : u < 0.8 ? Outcome::kFalse
                                   : Outcome::kBottom);
    }
    const EncodedDataset ds = MakeEncoded(cells, {3, 2, 4});
    auto db = TransactionDatabase::Create(ds, outcomes);
    ASSERT_TRUE(db.ok());
    MinerOptions opts;
    opts.min_support = 0.03 + 0.04 * round;
    EclatMiner eclat;
    FpGrowthMiner fp;
    auto a = eclat.Mine(*db, opts);
    auto b = fp.Mine(*db, opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(ToMap(*a), ToMap(*b)) << "round " << round;
  }
}

TEST(EclatTest, MaxLengthRespected) {
  const EncodedDataset ds =
      MakeEncoded({{0, 0, 0}, {0, 0, 0}, {1, 1, 1}}, {2, 2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TTF"));
  ASSERT_TRUE(db.ok());
  EclatMiner miner;
  MinerOptions opts;
  opts.min_support = 0.3;
  opts.max_length = 2;
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  size_t pairs = 0;
  for (const auto& p : *patterns) {
    EXPECT_LE(p.items.size(), 2u);
    pairs += p.items.size() == 2;
  }
  EXPECT_GT(pairs, 0u);
}

TEST(EclatTest, EmptyDatabaseYieldsOnlyRoot) {
  const EncodedDataset ds = MakeEncoded({}, {2});
  auto db = TransactionDatabase::Create(ds, {});
  ASSERT_TRUE(db.ok());
  EclatMiner miner;
  auto patterns = miner.Mine(*db, MinerOptions{});
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ(patterns->size(), 1u);
}

TEST(EclatTest, InvalidSupportRejected) {
  const EncodedDataset ds = MakeEncoded({{0}}, {1});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("T"));
  ASSERT_TRUE(db.ok());
  EclatMiner miner;
  MinerOptions opts;
  opts.min_support = 2.0;
  EXPECT_FALSE(miner.Mine(*db, opts).ok());
}

TEST(EclatTest, RegisteredInFactory) {
  auto miner = MakeMiner(MinerKind::kEclat);
  ASSERT_NE(miner, nullptr);
  EXPECT_EQ(miner->name(), "eclat");
  EXPECT_STREQ(MinerKindName(MinerKind::kEclat), "eclat");
}

}  // namespace
}  // namespace divexp
