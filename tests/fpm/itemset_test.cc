#include "fpm/itemset.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

namespace divexp {
namespace {

TEST(MakeItemsetTest, SortsAndDedupes) {
  EXPECT_EQ(MakeItemset({3, 1, 3, 2}), (Itemset{1, 2, 3}));
  EXPECT_EQ(MakeItemset({}), Itemset{});
}

TEST(IsSubsetTest, Basics) {
  EXPECT_TRUE(IsSubset({1, 3}, {1, 2, 3}));
  EXPECT_TRUE(IsSubset({}, {1}));
  EXPECT_TRUE(IsSubset({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(IsSubset({4}, {1, 2, 3}));
  EXPECT_FALSE(IsSubset({1, 2, 3}, {1, 3}));
}

TEST(UnionTest, MergesSorted) {
  EXPECT_EQ(Union({1, 3}, {2, 3}), (Itemset{1, 2, 3}));
  EXPECT_EQ(Union({}, {5}), Itemset{5});
}

TEST(WithoutTest, RemovesSingleItem) {
  EXPECT_EQ(Without({1, 2, 3}, 2), (Itemset{1, 3}));
  EXPECT_EQ(Without({7}, 7), Itemset{});
}

TEST(WithTest, InsertsInOrder) {
  EXPECT_EQ(With({1, 3}, 2), (Itemset{1, 2, 3}));
  EXPECT_EQ(With({1, 3}, 0), (Itemset{0, 1, 3}));
  EXPECT_EQ(With({1, 3}, 9), (Itemset{1, 3, 9}));
  EXPECT_EQ(With({}, 5), Itemset{5});
}

TEST(WithWithoutTest, AreInverses) {
  const Itemset base = {2, 5, 9};
  for (uint32_t alpha : {0u, 4u, 11u}) {
    EXPECT_EQ(Without(With(base, alpha), alpha), base);
  }
}

TEST(ForEachSubsetTest, EnumeratesAllSubsets) {
  std::set<Itemset> seen;
  ForEachSubset({1, 2, 3}, [&](const Itemset& s) { seen.insert(s); });
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_TRUE(seen.count({}));
  EXPECT_TRUE(seen.count({1, 2, 3}));
  EXPECT_TRUE(seen.count({1, 3}));
}

TEST(ForEachSubsetTest, EmptyItemsetHasOneSubset) {
  int count = 0;
  ForEachSubset({}, [&](const Itemset&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ItemsetHashTest, EqualItemsetsHashEqual) {
  ItemsetHash h;
  EXPECT_EQ(h(Itemset{1, 2}), h(Itemset{1, 2}));
  EXPECT_NE(h(Itemset{1, 2}), h(Itemset{2, 1, 0}));
}

TEST(ItemsetHashTest, SpanHashesLikeItemset) {
  ItemsetHash h;
  const Itemset items = {3, 7, 11};
  EXPECT_EQ(h(ItemSpan(items)), h(items));
  EXPECT_EQ(h(ItemSpan()), h(Itemset{}));
}

TEST(ItemsetHashTest, SkipViewHashesLikeWithout) {
  ItemsetHash h;
  const Itemset items = {2, 5, 9, 14};
  for (size_t skip = 0; skip < items.size(); ++skip) {
    const Itemset materialized = Without(items, items[skip]);
    EXPECT_EQ(h(ItemsetSkipView{ItemSpan(items), skip}), h(materialized))
        << "skip=" << skip;
  }
}

TEST(ItemsetEqTest, ComparesAcrossRepresentations) {
  ItemsetEq eq;
  const Itemset items = {2, 5, 9};
  EXPECT_TRUE(eq(items, ItemSpan(items)));
  EXPECT_TRUE(eq(ItemSpan(items), items));
  EXPECT_FALSE(eq(items, ItemSpan(Itemset{2, 5})));
  const Itemset full = {2, 5, 9, 14};
  for (size_t skip = 0; skip < full.size(); ++skip) {
    const ItemsetSkipView view{ItemSpan(full), skip};
    EXPECT_TRUE(eq(view, Without(full, full[skip])));
    EXPECT_TRUE(eq(Without(full, full[skip]), view));
    EXPECT_FALSE(eq(view, full));
  }
}

TEST(ItemsetHashTest, HeterogeneousMapLookupIsAllocationFree) {
  std::unordered_map<Itemset, int, ItemsetHash, ItemsetEq> map;
  map[MakeItemset({1, 2, 3})] = 1;
  map[MakeItemset({1, 3})] = 2;
  map[MakeItemset({})] = 3;

  const Itemset query = {1, 2, 3};
  const uint64_t before = ItemsetAllocCount();
  auto it = map.find(ItemSpan(query));
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second, 1);
  // {1,2,3} \ {2} = {1,3}.
  it = map.find(ItemsetSkipView{ItemSpan(query), 1});
  ASSERT_NE(it, map.end());
  EXPECT_EQ(it->second, 2);
  EXPECT_EQ(map.find(ItemsetSkipView{ItemSpan(query), 0}), map.end());
  EXPECT_EQ(ItemsetAllocCount(), before);
}

TEST(ItemsetAllocCountTest, CountsMaterializations) {
  const uint64_t before = ItemsetAllocCount();
  const Itemset a = MakeItemset({4, 1});
  EXPECT_EQ(ItemsetAllocCount(), before + 1);
  (void)Union(a, a);
  (void)Without(a, 1);
  (void)With(a, 9);
  EXPECT_EQ(ItemsetAllocCount(), before + 4);
}

TEST(ItemsetDebugStringTest, Renders) {
  EXPECT_EQ(ItemsetDebugString({1, 2}), "{1, 2}");
  EXPECT_EQ(ItemsetDebugString({}), "{}");
}

}  // namespace
}  // namespace divexp
