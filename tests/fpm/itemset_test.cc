#include "fpm/itemset.h"

#include <gtest/gtest.h>

#include <set>

namespace divexp {
namespace {

TEST(MakeItemsetTest, SortsAndDedupes) {
  EXPECT_EQ(MakeItemset({3, 1, 3, 2}), (Itemset{1, 2, 3}));
  EXPECT_EQ(MakeItemset({}), Itemset{});
}

TEST(IsSubsetTest, Basics) {
  EXPECT_TRUE(IsSubset({1, 3}, {1, 2, 3}));
  EXPECT_TRUE(IsSubset({}, {1}));
  EXPECT_TRUE(IsSubset({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(IsSubset({4}, {1, 2, 3}));
  EXPECT_FALSE(IsSubset({1, 2, 3}, {1, 3}));
}

TEST(UnionTest, MergesSorted) {
  EXPECT_EQ(Union({1, 3}, {2, 3}), (Itemset{1, 2, 3}));
  EXPECT_EQ(Union({}, {5}), Itemset{5});
}

TEST(WithoutTest, RemovesSingleItem) {
  EXPECT_EQ(Without({1, 2, 3}, 2), (Itemset{1, 3}));
  EXPECT_EQ(Without({7}, 7), Itemset{});
}

TEST(WithTest, InsertsInOrder) {
  EXPECT_EQ(With({1, 3}, 2), (Itemset{1, 2, 3}));
  EXPECT_EQ(With({1, 3}, 0), (Itemset{0, 1, 3}));
  EXPECT_EQ(With({1, 3}, 9), (Itemset{1, 3, 9}));
  EXPECT_EQ(With({}, 5), Itemset{5});
}

TEST(WithWithoutTest, AreInverses) {
  const Itemset base = {2, 5, 9};
  for (uint32_t alpha : {0u, 4u, 11u}) {
    EXPECT_EQ(Without(With(base, alpha), alpha), base);
  }
}

TEST(ForEachSubsetTest, EnumeratesAllSubsets) {
  std::set<Itemset> seen;
  ForEachSubset({1, 2, 3}, [&](const Itemset& s) { seen.insert(s); });
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_TRUE(seen.count({}));
  EXPECT_TRUE(seen.count({1, 2, 3}));
  EXPECT_TRUE(seen.count({1, 3}));
}

TEST(ForEachSubsetTest, EmptyItemsetHasOneSubset) {
  int count = 0;
  ForEachSubset({}, [&](const Itemset&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ItemsetHashTest, EqualItemsetsHashEqual) {
  ItemsetHash h;
  EXPECT_EQ(h(Itemset{1, 2}), h(Itemset{1, 2}));
  EXPECT_NE(h(Itemset{1, 2}), h(Itemset{2, 1, 0}));
}

TEST(ItemsetDebugStringTest, Renders) {
  EXPECT_EQ(ItemsetDebugString({1, 2}), "{1, 2}");
  EXPECT_EQ(ItemsetDebugString({}), "{}");
}

}  // namespace
}  // namespace divexp
