#include "fpm/bitmap.h"

#include <gtest/gtest.h>

#include "fpm/kernels/kernels.h"

namespace divexp {
namespace {

TEST(BitmapTest, SetGetCount) {
  Bitmap b(130);  // spans three words
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(129));
  EXPECT_FALSE(b.Get(1));
  EXPECT_FALSE(b.Get(128));
  EXPECT_EQ(b.Count(), 4u);
}

TEST(BitmapTest, AssignAnd) {
  Bitmap a(100), b(100), c;
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(2);
  c.AssignAnd(a, b);
  EXPECT_EQ(c.Count(), 2u);
  EXPECT_TRUE(c.Get(50));
  EXPECT_TRUE(c.Get(99));
  EXPECT_FALSE(c.Get(1));
}

TEST(BitmapTest, AndCountWithoutMaterializing) {
  Bitmap a(200), b(200);
  for (size_t i = 0; i < 200; i += 2) a.Set(i);
  for (size_t i = 0; i < 200; i += 3) b.Set(i);
  // Multiples of 6 in [0, 200): 34 values.
  EXPECT_EQ(a.AndCount(b), 34u);
}

TEST(BitmapTest, ToIndicesSortedAscending) {
  Bitmap b(70);
  b.Set(69);
  b.Set(0);
  b.Set(33);
  EXPECT_EQ(b.ToIndices(), (std::vector<size_t>{0, 33, 69}));
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap b(0);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.ToIndices().empty());
}

// The padding-bit contract (bitmap.h): bits past num_bits are
// unspecified, so every counting path must mask the tail word rather
// than trust it to be zero. Seed garbage there through mutable_words()
// — exactly what the kernels' word-level and_assign writers may do —
// and check every read-side API stays exact.
TEST(BitmapPaddingTest, CountIgnoresGarbagePaddingBits) {
  for (size_t bits : {1ul, 63ul, 65ul, 100ul, 129ul}) {
    Bitmap b(bits);
    b.Set(0);
    b.Set(bits - 1);
    const uint64_t want = bits == 1 ? 1 : 2;
    ASSERT_EQ(b.Count(), want) << bits;
    // Poison every padding bit of the tail word.
    b.mutable_words()[b.num_words() - 1] |=
        ~fpm::TailWordMask(b.num_bits());
    EXPECT_EQ(b.Count(), want) << "padding leaked into Count, bits=" << bits;
  }
}

TEST(BitmapPaddingTest, AndCountIgnoresGarbagePaddingBits) {
  Bitmap a(100), b(100);
  for (size_t i = 0; i < 100; i += 2) a.Set(i);
  for (size_t i = 0; i < 100; i += 5) b.Set(i);
  const uint64_t want = a.AndCount(b);  // multiples of 10 in [0, 100)
  EXPECT_EQ(want, 10u);
  a.mutable_words()[a.num_words() - 1] |= ~fpm::TailWordMask(100);
  b.mutable_words()[b.num_words() - 1] |= ~fpm::TailWordMask(100);
  EXPECT_EQ(a.AndCount(b), want);
  EXPECT_EQ(b.AndCount(a), want);
}

TEST(BitmapPaddingTest, ToIndicesIgnoresGarbagePaddingBits) {
  Bitmap b(70);
  b.Set(0);
  b.Set(69);
  b.mutable_words()[b.num_words() - 1] |= ~fpm::TailWordMask(70);
  EXPECT_EQ(b.ToIndices(), (std::vector<size_t>{0, 69}));
}

TEST(BitmapPaddingTest, WholeWordBitmapHasNoPadding) {
  Bitmap b(128);
  b.Set(127);
  EXPECT_EQ(fpm::TailWordMask(b.num_bits()), ~uint64_t{0});
  EXPECT_EQ(b.Count(), 1u);
}

}  // namespace
}  // namespace divexp
