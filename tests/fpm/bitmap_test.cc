#include "fpm/bitmap.h"

#include <gtest/gtest.h>

namespace divexp {
namespace {

TEST(BitmapTest, SetGetCount) {
  Bitmap b(130);  // spans three words
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(129));
  EXPECT_FALSE(b.Get(1));
  EXPECT_FALSE(b.Get(128));
  EXPECT_EQ(b.Count(), 4u);
}

TEST(BitmapTest, AssignAnd) {
  Bitmap a(100), b(100), c;
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(2);
  c.AssignAnd(a, b);
  EXPECT_EQ(c.Count(), 2u);
  EXPECT_TRUE(c.Get(50));
  EXPECT_TRUE(c.Get(99));
  EXPECT_FALSE(c.Get(1));
}

TEST(BitmapTest, AndCountWithoutMaterializing) {
  Bitmap a(200), b(200);
  for (size_t i = 0; i < 200; i += 2) a.Set(i);
  for (size_t i = 0; i < 200; i += 3) b.Set(i);
  // Multiples of 6 in [0, 200): 34 values.
  EXPECT_EQ(a.AndCount(b), 34u);
}

TEST(BitmapTest, ToIndicesSortedAscending) {
  Bitmap b(70);
  b.Set(69);
  b.Set(0);
  b.Set(33);
  EXPECT_EQ(b.ToIndices(), (std::vector<size_t>{0, 33, 69}));
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap b(0);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.ToIndices().empty());
}

}  // namespace
}  // namespace divexp
