// Unit tests for the adaptive mining dispatcher: the plan must be a
// pure function of (shape, support, request) so checkpoints and shard
// merges resolve identically, explicit requests must be honored
// verbatim, and the shape thresholds must route each corner of the
// density/support grid to the documented miner.
#include "fpm/dispatch.h"

#include <gtest/gtest.h>

namespace divexp {
namespace fpm {
namespace {

// rows, attributes, items chosen so density() = attributes / items
// lands well inside each regime.
DatasetShape DenseShape() { return DatasetShape{100000, 10, 50}; }    // 0.2
DatasetShape SparseShape() { return DatasetShape{100000, 10, 1000}; } // 0.01
DatasetShape MidShape() { return DatasetShape{100000, 10, 200}; }     // 0.05

TEST(DispatchTest, ExplicitMinerIsHonoredVerbatim) {
  for (MinerKind kind :
       {MinerKind::kFpGrowth, MinerKind::kApriori, MinerKind::kEclat}) {
    const MiningPlan plan = ChooseMiningPlan(
        DenseShape(), 0.01, kind, KernelKind::kScalar, 4);
    EXPECT_EQ(plan.miner, kind);
    EXPECT_EQ(plan.num_threads, 4u) << "explicit miner keeps threads";
  }
}

TEST(DispatchTest, AutoPicksAprioriOnDenseLowSupport) {
  const MiningPlan plan = ChooseMiningPlan(
      DenseShape(), 0.05, MinerKind::kAuto, KernelKind::kScalar, 2);
  EXPECT_EQ(plan.miner, MinerKind::kApriori);
}

TEST(DispatchTest, AutoPicksEclatOnSparseShapes) {
  const MiningPlan plan = ChooseMiningPlan(
      SparseShape(), 0.05, MinerKind::kAuto, KernelKind::kScalar, 2);
  EXPECT_EQ(plan.miner, MinerKind::kEclat);
}

TEST(DispatchTest, AutoDefaultsToFpGrowthInTheMiddle) {
  const MiningPlan plan = ChooseMiningPlan(
      MidShape(), 0.05, MinerKind::kAuto, KernelKind::kScalar, 2);
  EXPECT_EQ(plan.miner, MinerKind::kFpGrowth);
  // Dense but high support: the lattice is shallow, Apriori's edge
  // evaporates, FP-growth stays the default.
  const MiningPlan high = ChooseMiningPlan(
      DenseShape(), 0.5, MinerKind::kAuto, KernelKind::kScalar, 2);
  EXPECT_EQ(high.miner, MinerKind::kFpGrowth);
}

TEST(DispatchTest, AutoFoldsTinyWorkloadsToOneThread) {
  const DatasetShape tiny{100, 5, 20};  // 2000 cells << 1<<15
  const MiningPlan plan = ChooseMiningPlan(
      tiny, 0.05, MinerKind::kAuto, KernelKind::kScalar, 8);
  EXPECT_EQ(plan.num_threads, 1u);
  const MiningPlan big = ChooseMiningPlan(
      MidShape(), 0.05, MinerKind::kAuto, KernelKind::kScalar, 8);
  EXPECT_EQ(big.num_threads, 8u);
}

TEST(DispatchTest, KernelResolutionNeverReturnsNull) {
  for (KernelKind kind :
       {KernelKind::kAuto, KernelKind::kScalar, KernelKind::kSimd}) {
    const MiningPlan plan = ChooseMiningPlan(
        MidShape(), 0.05, MinerKind::kAuto, kind, 1);
    ASSERT_NE(plan.ops, nullptr);
    if (kind == KernelKind::kScalar) {
      EXPECT_EQ(plan.kernel, KernelKind::kScalar);
      EXPECT_STREQ(plan.ops->name, "scalar");
    } else if (SimdAvailable()) {
      EXPECT_EQ(plan.kernel, KernelKind::kSimd);
      EXPECT_STRNE(plan.ops->name, "scalar");
    } else {
      EXPECT_EQ(plan.kernel, KernelKind::kScalar);
      EXPECT_STREQ(plan.ops->name, "scalar");
    }
  }
}

TEST(DispatchTest, PlanIsDeterministic) {
  const MiningPlan a = ChooseMiningPlan(
      DenseShape(), 0.05, MinerKind::kAuto, KernelKind::kAuto, 2);
  const MiningPlan b = ChooseMiningPlan(
      DenseShape(), 0.05, MinerKind::kAuto, KernelKind::kAuto, 2);
  EXPECT_EQ(a.miner, b.miner);
  EXPECT_EQ(a.kernel, b.kernel);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.num_threads, b.num_threads);
  EXPECT_EQ(a.rationale, b.rationale);
  EXPECT_FALSE(a.rationale.empty());
}

TEST(DispatchTest, ZeroThreadRequestFoldsToOne) {
  const MiningPlan plan = ChooseMiningPlan(
      MidShape(), 0.05, MinerKind::kFpGrowth, KernelKind::kScalar, 0);
  EXPECT_EQ(plan.num_threads, 1u);
}

}  // namespace
}  // namespace fpm
}  // namespace divexp
