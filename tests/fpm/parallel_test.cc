// Multi-threaded mining must produce byte-identical output to the
// sequential run, for every backend.
#include <gtest/gtest.h>

#include <atomic>

#include "fpm/miner.h"
#include "testing/test_data.h"
#include "util/parallel.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> hits(100);
    ParallelFor(threads, hits.size(),
                [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1) << "threads=" << threads;
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleton) {
  int calls = 0;
  ParallelFor(4, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(4, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(16, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

struct ParallelCase {
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
};

ParallelCase MakeCase(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells;
  ParallelCase c;
  for (int r = 0; r < 600; ++r) {
    cells.push_back({static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(2)),
                     static_cast<int>(rng.Below(2))});
    const double u = rng.Uniform();
    c.outcomes.push_back(u < 0.35  ? Outcome::kTrue
                         : u < 0.8 ? Outcome::kFalse
                                   : Outcome::kBottom);
  }
  c.dataset = MakeEncoded(cells, {3, 3, 2, 2});
  return c;
}

class ParallelMinerTest : public ::testing::TestWithParam<MinerKind> {};

TEST_P(ParallelMinerTest, ParallelOutputIdenticalToSequential) {
  const ParallelCase c = MakeCase(17);
  auto db = TransactionDatabase::Create(c.dataset, c.outcomes);
  ASSERT_TRUE(db.ok());
  auto miner = MakeMiner(GetParam());

  MinerOptions seq;
  seq.min_support = 0.02;
  auto sequential = miner->Mine(*db, seq);
  ASSERT_TRUE(sequential.ok());

  for (size_t threads : {2u, 4u}) {
    MinerOptions par = seq;
    par.num_threads = threads;
    auto parallel = miner->Mine(*db, par);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), sequential->size())
        << "threads=" << threads;
    // Identical content *and* identical order: the parallel merge
    // preserves the sequential emission order.
    for (size_t i = 0; i < sequential->size(); ++i) {
      EXPECT_EQ((*parallel)[i].items, (*sequential)[i].items);
      EXPECT_EQ((*parallel)[i].counts, (*sequential)[i].counts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMiners, ParallelMinerTest,
                         ::testing::Values(MinerKind::kFpGrowth,
                                           MinerKind::kApriori,
                                           MinerKind::kEclat),
                         [](const auto& info) {
                           return std::string(MinerKindName(info.param));
                         });

}  // namespace
}  // namespace divexp
