// Multi-threaded mining must produce byte-identical output to the
// sequential run, for every backend.
#include <gtest/gtest.h>

#include <atomic>

#include "fpm/miner.h"
#include "testing/test_data.h"
#include "util/parallel.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> hits(100);
    ParallelFor(threads, hits.size(),
                [&](size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1) << "threads=" << threads;
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleton) {
  int calls = 0;
  ParallelFor(4, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(4, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(16, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, WorkerExceptionIsRethrownAfterJoin) {
  // A throwing worker must not crash the process (std::terminate from
  // an exception escaping a thread); the first exception is captured
  // and rethrown on the calling thread once every worker has joined.
  for (size_t threads : {1u, 2u, 4u}) {
    EXPECT_THROW(
        ParallelFor(threads, 64,
                    [](size_t i) {
                      if (i == 13) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
  }
}

TEST(ParallelForTest, FirstExceptionWinsAndWorkStopsEarly) {
  std::atomic<int> calls{0};
  try {
    ParallelFor(4, 10000, [&](size_t i) {
      calls.fetch_add(1);
      if (i < 8) throw std::runtime_error("early");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "early");
  }
  // Remaining iterations are skipped once a failure is observed; with
  // the failing indices at the front, far fewer than all 10000 run.
  EXPECT_LT(calls.load(), 10000);
}

TEST(ParallelForTest, SequentialPathPropagatesException) {
  // threads == 1 short-circuits to a plain loop; it must throw the
  // same way the threaded path does.
  EXPECT_THROW(ParallelFor(1, 5,
                           [](size_t i) {
                             if (i == 2) throw std::logic_error("seq");
                           }),
               std::logic_error);
}

struct ParallelCase {
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
};

ParallelCase MakeCase(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> cells;
  ParallelCase c;
  for (int r = 0; r < 600; ++r) {
    cells.push_back({static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(3)),
                     static_cast<int>(rng.Below(2)),
                     static_cast<int>(rng.Below(2))});
    const double u = rng.Uniform();
    c.outcomes.push_back(u < 0.35  ? Outcome::kTrue
                         : u < 0.8 ? Outcome::kFalse
                                   : Outcome::kBottom);
  }
  c.dataset = MakeEncoded(cells, {3, 3, 2, 2});
  return c;
}

class ParallelMinerTest : public ::testing::TestWithParam<MinerKind> {};

TEST_P(ParallelMinerTest, ParallelOutputIdenticalToSequential) {
  const ParallelCase c = MakeCase(17);
  auto db = TransactionDatabase::Create(c.dataset, c.outcomes);
  ASSERT_TRUE(db.ok());
  auto miner = MakeMiner(GetParam());

  MinerOptions seq;
  seq.min_support = 0.02;
  auto sequential = miner->Mine(*db, seq);
  ASSERT_TRUE(sequential.ok());

  for (size_t threads : {2u, 4u}) {
    MinerOptions par = seq;
    par.num_threads = threads;
    auto parallel = miner->Mine(*db, par);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), sequential->size())
        << "threads=" << threads;
    // Identical content *and* identical order: the parallel merge
    // preserves the sequential emission order.
    for (size_t i = 0; i < sequential->size(); ++i) {
      EXPECT_EQ((*parallel)[i].items, (*sequential)[i].items);
      EXPECT_EQ((*parallel)[i].counts, (*sequential)[i].counts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMiners, ParallelMinerTest,
                         ::testing::Values(MinerKind::kFpGrowth,
                                           MinerKind::kApriori,
                                           MinerKind::kEclat),
                         [](const auto& info) {
                           return std::string(MinerKindName(info.param));
                         });

}  // namespace
}  // namespace divexp
