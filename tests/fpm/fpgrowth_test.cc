#include "fpm/fpgrowth.h"

#include <gtest/gtest.h>

#include <map>

#include "testing/test_data.h"

namespace divexp {
namespace {

using testing::MakeEncoded;
using testing::OutcomesFromString;

std::map<Itemset, OutcomeCounts> ToMap(
    const std::vector<MinedPattern>& patterns) {
  std::map<Itemset, OutcomeCounts> out;
  for (const auto& p : patterns) {
    EXPECT_EQ(out.count(p.items), 0u) << "duplicate itemset";
    out[p.items] = p.counts;
  }
  return out;
}

TEST(FpGrowthTest, MinesTinyDatasetCompletely) {
  // Two binary attributes, four rows covering every combination.
  const EncodedDataset ds =
      MakeEncoded({{0, 0}, {0, 1}, {1, 0}, {1, 1}}, {2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TTFF"));
  ASSERT_TRUE(db.ok());
  FpGrowthMiner miner;
  MinerOptions opts;
  opts.min_support = 0.25;  // 1 row
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  const auto map = ToMap(*patterns);
  // 1 empty + 4 single + 4 pairs (same-attribute pairs are impossible).
  EXPECT_EQ(map.size(), 9u);
  EXPECT_EQ(map.at(Itemset{}), (OutcomeCounts{2, 2, 0}));
  // a0=v0 covers rows 0, 1 -> both T.
  EXPECT_EQ(map.at(Itemset{0}), (OutcomeCounts{2, 0, 0}));
  // a0=v1 covers rows 2, 3 -> both F.
  EXPECT_EQ(map.at(Itemset{1}), (OutcomeCounts{0, 2, 0}));
  // {a0=v0, a1=v1} covers row 1 only.
  EXPECT_EQ(map.at(Itemset{0, 3}), (OutcomeCounts{1, 0, 0}));
}

TEST(FpGrowthTest, SupportThresholdFilters) {
  // Row {1,1} appears once out of 5: below support 0.3.
  const EncodedDataset ds = MakeEncoded(
      {{0, 0}, {0, 0}, {0, 1}, {0, 1}, {1, 1}}, {2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TTTTT"));
  ASSERT_TRUE(db.ok());
  FpGrowthMiner miner;
  MinerOptions opts;
  opts.min_support = 0.3;  // min count 2
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  const auto map = ToMap(*patterns);
  EXPECT_EQ(map.count(Itemset{1}), 0u);     // a0=v1 support 1
  EXPECT_EQ(map.count(Itemset{0}), 1u);     // a0=v0 support 4
  EXPECT_EQ(map.count(Itemset{0, 2}), 1u);  // support 2
  EXPECT_EQ(map.count(Itemset{1, 3}), 0u);  // support 1
}

TEST(FpGrowthTest, BottomOutcomesCountedInSupport) {
  const EncodedDataset ds = MakeEncoded({{0}, {0}, {0}, {1}}, {2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("BBTF"));
  ASSERT_TRUE(db.ok());
  FpGrowthMiner miner;
  MinerOptions opts;
  opts.min_support = 0.5;  // needs 2 rows
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  const auto map = ToMap(*patterns);
  // a0=v0 has support 3 (2 bottoms + 1 T) and passes.
  ASSERT_EQ(map.count(Itemset{0}), 1u);
  EXPECT_EQ(map.at(Itemset{0}), (OutcomeCounts{1, 0, 2}));
  EXPECT_EQ(map.count(Itemset{1}), 0u);
}

TEST(FpGrowthTest, MaxLengthBoundsPatternSize) {
  const EncodedDataset ds =
      MakeEncoded({{0, 0, 0}, {0, 0, 0}, {1, 1, 1}}, {2, 2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TTF"));
  ASSERT_TRUE(db.ok());
  FpGrowthMiner miner;
  MinerOptions opts;
  opts.min_support = 0.3;
  opts.max_length = 2;
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  for (const auto& p : *patterns) {
    EXPECT_LE(p.items.size(), 2u);
  }
  // Length-2 patterns must still be present.
  bool has_pair = false;
  for (const auto& p : *patterns) has_pair |= p.items.size() == 2;
  EXPECT_TRUE(has_pair);
}

TEST(FpGrowthTest, EmptyDatabaseYieldsOnlyRoot) {
  const EncodedDataset ds = MakeEncoded({}, {2});
  auto db = TransactionDatabase::Create(ds, {});
  ASSERT_TRUE(db.ok());
  FpGrowthMiner miner;
  auto patterns = miner.Mine(*db, MinerOptions{});
  ASSERT_TRUE(patterns.ok());
  ASSERT_EQ(patterns->size(), 1u);
  EXPECT_TRUE(patterns->front().items.empty());
}

TEST(FpGrowthTest, InvalidSupportRejected) {
  const EncodedDataset ds = MakeEncoded({{0}}, {1});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("T"));
  ASSERT_TRUE(db.ok());
  FpGrowthMiner miner;
  MinerOptions opts;
  opts.min_support = 0.0;
  EXPECT_FALSE(miner.Mine(*db, opts).ok());
  opts.min_support = 1.5;
  EXPECT_FALSE(miner.Mine(*db, opts).ok());
}

TEST(FpGrowthTest, PatternCountsSumConsistency) {
  // For every pattern, t+f+bot must equal its true cover size.
  const EncodedDataset ds = MakeEncoded(
      {{0, 1, 0}, {1, 1, 0}, {0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {0, 1, 0}},
      {2, 2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TFBTFB"));
  ASSERT_TRUE(db.ok());
  FpGrowthMiner miner;
  MinerOptions opts;
  opts.min_support = 1.0 / 6.0;
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  for (const auto& p : *patterns) {
    EXPECT_EQ(p.counts.total(), ds.Cover(p.items).size())
        << ItemsetDebugString(p.items);
  }
}

}  // namespace
}  // namespace divexp
