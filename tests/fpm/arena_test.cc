// NodeArena regression suite: bump-pointer invariants (alignment,
// block reuse, oversized requests, Reset), plus the two integration
// guarantees the FP-growth rewiring depends on — the
// `fpm.kernel.arena.bytes` counter reports real reserved block bytes,
// and RunGuard's memory accounting sees those same bytes (not just the
// node payload sum). The arena-on/off output-identity property lives
// in differential_test.cc, which CI also runs under ASan so a
// use-after-Reset or out-of-block write surfaces there.
#include "fpm/kernels/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "fpm/fpgrowth.h"
#include "obs/metrics.h"
#include "testing/test_data.h"
#include "util/run_guard.h"

namespace divexp {
namespace {

using testing::MakeEncoded;
using testing::OutcomesFromString;

TEST(NodeArenaTest, BumpAllocatesWithinOneBlock) {
  fpm::NodeArena arena;
  EXPECT_EQ(arena.num_blocks(), 0u);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  void* a = arena.Allocate(64, 8);
  void* b = arena.Allocate(64, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  // Two small allocations share the first 64 KiB block.
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_EQ(arena.allocated_bytes(), fpm::NodeArena::kDefaultBlockBytes);
  // Bump order: consecutive allocations are adjacent (modulo padding).
  EXPECT_EQ(static_cast<unsigned char*>(b),
            static_cast<unsigned char*>(a) + 64);
}

TEST(NodeArenaTest, RespectsAlignment) {
  fpm::NodeArena arena(256);
  for (size_t align : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    for (int i = 0; i < 8; ++i) {
      void* p = arena.Allocate(3, align);  // odd size forces padding
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "align=" << align << " i=" << i;
    }
  }
}

TEST(NodeArenaTest, SpillsToNewBlocksAndCountsRealBytes) {
  fpm::NodeArena arena(128);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(16, 8);
    EXPECT_TRUE(seen.insert(p).second) << "allocation reused a live slot";
  }
  // 8 allocations of 16 bytes per 128-byte block -> >= 13 blocks.
  EXPECT_GE(arena.num_blocks(), 13u);
  EXPECT_EQ(arena.allocated_bytes(),
            static_cast<uint64_t>(arena.num_blocks()) * 128u);
}

TEST(NodeArenaTest, OversizedRequestGetsDedicatedBlock) {
  fpm::NodeArena arena(128);
  void* big = arena.Allocate(1024, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_GE(arena.allocated_bytes(), 1024u);
  // The next small allocation must not land inside the big object.
  void* small = arena.Allocate(16, 8);
  EXPECT_TRUE(small < big ||
              static_cast<unsigned char*>(small) >=
                  static_cast<unsigned char*>(big) + 1024);
}

TEST(NodeArenaTest, ResetReleasesEverything) {
  fpm::NodeArena arena(256);
  for (int i = 0; i < 32; ++i) arena.Allocate(32, 8);
  EXPECT_GT(arena.num_blocks(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.num_blocks(), 0u);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  // The arena is reusable after Reset.
  EXPECT_NE(arena.Allocate(32, 8), nullptr);
  EXPECT_EQ(arena.num_blocks(), 1u);
}

TEST(NodeArenaTest, NewValueInitializesTrivialTypes) {
  struct Node {
    uint64_t a;
    uint32_t b;
  };
  fpm::NodeArena arena;
  for (int i = 0; i < 16; ++i) {
    Node* n = arena.New<Node>();
    EXPECT_EQ(n->a, 0u);
    EXPECT_EQ(n->b, 0u);
    n->a = ~uint64_t{0};  // dirty the slot; later News get fresh ones
  }
}

Result<std::vector<MinedPattern>> MineSmall(const MinerOptions& opts) {
  // 64 rows over 4 attributes — enough tree to force arena blocks.
  std::vector<std::vector<int>> cells;
  std::string outcomes;
  for (int r = 0; r < 64; ++r) {
    cells.push_back({r % 2, r % 3, r % 4, (r / 2) % 2});
    outcomes += (r % 3 == 0) ? 'T' : (r % 3 == 1 ? 'F' : 'B');
  }
  const EncodedDataset ds = MakeEncoded(cells, {2, 3, 4, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString(outcomes));
  EXPECT_TRUE(db.ok());
  FpGrowthMiner miner;
  return miner.Mine(*db, opts);
}

TEST(ArenaAccountingTest, CounterReportsReservedBlockBytes) {
  obs::Counter* counter = obs::MetricsRegistry::Default().GetCounter(
      "fpm.kernel.arena.bytes");
  const uint64_t before = counter->Value();
  MinerOptions opts;
  opts.min_support = 0.05;
  auto patterns = MineSmall(opts);
  ASSERT_TRUE(patterns.ok());
  // The top-level tree reserves at least one 64 KiB block.
  EXPECT_GE(counter->Value() - before,
            uint64_t{fpm::NodeArena::kDefaultBlockBytes});

  // Arena off: the counter must not move.
  const uint64_t mid = counter->Value();
  opts.use_arena = false;
  auto fallback = MineSmall(opts);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(counter->Value(), mid);
}

TEST(ArenaAccountingTest, RunGuardSeesArenaBlockBytes) {
  // In arena mode the guard is charged the reserved block bytes (>= one
  // 64 KiB block); in fallback mode only the node payloads, which for
  // this tiny tree are far below one block. The gap proves RunGuard
  // accounts what the allocator actually took from the heap.
  RunGuard arena_guard{RunLimits{}};
  MinerOptions opts;
  opts.min_support = 0.05;
  opts.guard = &arena_guard;
  ASSERT_TRUE(MineSmall(opts).ok());
  EXPECT_GE(arena_guard.peak_memory_bytes(),
            uint64_t{fpm::NodeArena::kDefaultBlockBytes});

  RunGuard fallback_guard{RunLimits{}};
  opts.use_arena = false;
  opts.guard = &fallback_guard;
  ASSERT_TRUE(MineSmall(opts).ok());
  EXPECT_LT(fallback_guard.peak_memory_bytes(),
            arena_guard.peak_memory_bytes());
}

}  // namespace
}  // namespace divexp
