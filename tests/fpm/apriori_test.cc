#include "fpm/apriori.h"

#include <gtest/gtest.h>

#include <map>

#include "testing/test_data.h"

namespace divexp {
namespace {

using testing::MakeEncoded;
using testing::OutcomesFromString;

std::map<Itemset, OutcomeCounts> ToMap(
    const std::vector<MinedPattern>& patterns) {
  std::map<Itemset, OutcomeCounts> out;
  for (const auto& p : patterns) {
    EXPECT_EQ(out.count(p.items), 0u) << "duplicate itemset";
    out[p.items] = p.counts;
  }
  return out;
}

TEST(AprioriTest, MinesTinyDatasetCompletely) {
  const EncodedDataset ds =
      MakeEncoded({{0, 0}, {0, 1}, {1, 0}, {1, 1}}, {2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TTFF"));
  ASSERT_TRUE(db.ok());
  AprioriMiner miner;
  MinerOptions opts;
  opts.min_support = 0.25;
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  const auto map = ToMap(*patterns);
  EXPECT_EQ(map.size(), 9u);
  EXPECT_EQ(map.at(Itemset{}), (OutcomeCounts{2, 2, 0}));
  EXPECT_EQ(map.at(Itemset{0}), (OutcomeCounts{2, 0, 0}));
  // {a0=v1, a1=v1} covers row 3 only (outcome F).
  EXPECT_EQ(map.at(Itemset{1, 3}), (OutcomeCounts{0, 1, 0}));
}

TEST(AprioriTest, NoSameAttributeCandidates) {
  const EncodedDataset ds = MakeEncoded({{0}, {1}, {2}}, {3});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TTT"));
  ASSERT_TRUE(db.ok());
  AprioriMiner miner;
  MinerOptions opts;
  opts.min_support = 0.3;
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  for (const auto& p : *patterns) {
    EXPECT_LE(p.items.size(), 1u);
  }
}

TEST(AprioriTest, ThreeAttributeDeepPatterns) {
  const EncodedDataset ds = MakeEncoded(
      {{0, 0, 0}, {0, 0, 0}, {0, 0, 1}, {1, 1, 1}}, {2, 2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TTFF"));
  ASSERT_TRUE(db.ok());
  AprioriMiner miner;
  MinerOptions opts;
  opts.min_support = 0.25;
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  const auto map = ToMap(*patterns);
  // {a0=v0, a1=v0, a2=v0} covers rows 0, 1.
  ASSERT_EQ(map.count(Itemset{0, 2, 4}), 1u);
  EXPECT_EQ(map.at(Itemset{0, 2, 4}), (OutcomeCounts{2, 0, 0}));
  // {a0=v1, a1=v1, a2=v1} covers row 3.
  EXPECT_EQ(map.at(Itemset{1, 3, 5}), (OutcomeCounts{0, 1, 0}));
}

TEST(AprioriTest, MaxLengthRespected) {
  const EncodedDataset ds =
      MakeEncoded({{0, 0, 0}, {0, 0, 0}}, {2, 2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TT"));
  ASSERT_TRUE(db.ok());
  AprioriMiner miner;
  MinerOptions opts;
  opts.min_support = 0.5;
  opts.max_length = 1;
  auto patterns = miner.Mine(*db, opts);
  ASSERT_TRUE(patterns.ok());
  for (const auto& p : *patterns) {
    EXPECT_LE(p.items.size(), 1u);
  }
}

TEST(AprioriTest, InvalidSupportRejected) {
  const EncodedDataset ds = MakeEncoded({{0}}, {1});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("T"));
  ASSERT_TRUE(db.ok());
  AprioriMiner miner;
  MinerOptions opts;
  opts.min_support = -0.1;
  EXPECT_FALSE(miner.Mine(*db, opts).ok());
}

TEST(MinCountTest, CeilingSemantics) {
  EXPECT_EQ(MinCount(0.1, 100), 10u);
  EXPECT_EQ(MinCount(0.101, 100), 11u);
  EXPECT_EQ(MinCount(0.0001, 100), 1u);  // never below 1
  EXPECT_EQ(MinCount(1.0, 7), 7u);
}

TEST(MinerFactoryTest, ProducesBothKinds) {
  auto fp = MakeMiner(MinerKind::kFpGrowth);
  auto ap = MakeMiner(MinerKind::kApriori);
  ASSERT_NE(fp, nullptr);
  ASSERT_NE(ap, nullptr);
  EXPECT_EQ(fp->name(), "fpgrowth");
  EXPECT_EQ(ap->name(), "apriori");
  EXPECT_STREQ(MinerKindName(MinerKind::kFpGrowth), "fpgrowth");
  EXPECT_STREQ(MinerKindName(MinerKind::kApriori), "apriori");
}

}  // namespace
}  // namespace divexp
