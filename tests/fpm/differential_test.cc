// Differential cross-miner harness: seeded-PRNG random tables with
// varying arity, NULL density and value skew, asserting that FP-growth,
// Apriori and Eclat emit byte-identical (itemset, support,
// outcome-tally) sets at several min-support levels, across every
// kernel implementation (scalar and the CPU's SIMD table), and that the
// parallel mining paths (num_threads ∈ {1, 2, 8}) reproduce the
// sequential result exactly. The full kernel × miner × threads matrix
// runs under TSan in CI, so the 8-thread SIMD configurations double as
// a race detector for the mining internals.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "fpm/miner.h"
#include "testing/test_data.h"
#include "util/random.h"

namespace divexp {
namespace {

using testing::MakeEncoded;

struct TableSpec {
  std::string label;
  uint64_t seed;
  size_t rows;
  /// Per-attribute domain sizes (mixed arity is the point).
  std::vector<int> domains;
  /// Probability that a cell takes the dedicated "missing" category
  /// (value 0) — the post-discretization representation of NULLs.
  double null_prob;
  /// Geometric skew toward low value indices; 0 = uniform.
  double skew;
};

std::vector<TableSpec> Specs() {
  return {
      {"uniform_small_arity", 11, 240, {2, 3, 3, 2, 4}, 0.0, 0.0},
      {"nulls_mixed_arity", 23, 320, {3, 5, 2, 4, 3, 2}, 0.25, 0.0},
      {"heavy_skew", 37, 400, {4, 4, 6, 3, 2}, 0.05, 0.6},
      {"wide_arity_sparse", 53, 300, {8, 2, 5, 7, 3}, 0.15, 0.35},
  };
}

struct Case {
  EncodedDataset dataset;
  std::vector<Outcome> outcomes;
};

Case MakeCase(const TableSpec& spec) {
  Rng rng(spec.seed);
  std::vector<std::vector<int>> cells(spec.rows,
                                      std::vector<int>(spec.domains.size()));
  std::vector<Outcome> outcomes(spec.rows);
  for (size_t r = 0; r < spec.rows; ++r) {
    for (size_t a = 0; a < spec.domains.size(); ++a) {
      const int domain = spec.domains[a];
      int v = 0;
      if (rng.Uniform() >= spec.null_prob) {
        // Geometric walk away from the sentinel: high skew piles the
        // mass on a few values, which is what stresses the miners'
        // header ordering / tid-list intersection differently.
        v = 1 + static_cast<int>(rng.Below(static_cast<uint64_t>(
                std::max(1, domain - 1))));
        while (v > 1 && rng.Uniform() < spec.skew) --v;
      }
      cells[r][a] = v;
    }
    // Outcome distribution correlated with the first attribute so the
    // tallies differ across itemsets (not just the supports).
    const double bias = cells[r][0] == 0 ? 0.55 : 0.25;
    const double u = rng.Uniform();
    outcomes[r] = u < bias         ? Outcome::kTrue
                  : u < bias + 0.3 ? Outcome::kFalse
                                   : Outcome::kBottom;
  }
  Case c;
  c.dataset = MakeEncoded(cells, spec.domains);
  c.outcomes = std::move(outcomes);
  return c;
}

using PatternMap = std::map<Itemset, OutcomeCounts>;

PatternMap ToMap(const std::vector<MinedPattern>& patterns) {
  PatternMap out;
  for (const MinedPattern& p : patterns) {
    // A miner must never emit the same itemset twice.
    EXPECT_TRUE(out.emplace(p.items, p.counts).second)
        << "duplicate itemset emitted";
  }
  return out;
}

class DifferentialMinerTest : public ::testing::TestWithParam<TableSpec> {};

TEST_P(DifferentialMinerTest, MinersAndThreadCountsAgree) {
  const TableSpec& spec = GetParam();
  const Case c = MakeCase(spec);
  auto db = TransactionDatabase::Create(c.dataset, c.outcomes);
  ASSERT_TRUE(db.ok());

  for (double support : {0.02, 0.08, 0.25}) {
    // Sequential scalar-kernel FP-growth is the reference for this
    // support level.
    MinerOptions ref_opts;
    ref_opts.min_support = support;
    ref_opts.kernel = fpm::KernelKind::kScalar;
    auto reference = MakeMiner(MinerKind::kFpGrowth)->Mine(*db, ref_opts);
    ASSERT_TRUE(reference.ok());
    const PatternMap expected = ToMap(*reference);
    ASSERT_GE(expected.size(), 1u);  // at least the empty itemset

    for (MinerKind kind :
         {MinerKind::kFpGrowth, MinerKind::kApriori, MinerKind::kEclat}) {
      for (fpm::KernelKind kernel :
           {fpm::KernelKind::kScalar, fpm::KernelKind::kSimd}) {
        for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
          MinerOptions opts;
          opts.min_support = support;
          opts.num_threads = threads;
          opts.kernel = kernel;
          auto patterns = MakeMiner(kind)->Mine(*db, opts);
          ASSERT_TRUE(patterns.ok());
          EXPECT_EQ(ToMap(*patterns), expected)
              << spec.label << ": " << MinerKindName(kind)
              << " s=" << support << " threads=" << threads << " kernel="
              << fpm::KernelKindName(kernel)
              << " diverged from the reference";
        }
      }
    }

    // Arena on/off must not change a single FP-growth tally: the arena
    // only relocates node storage.
    MinerOptions no_arena = ref_opts;
    no_arena.use_arena = false;
    auto fallback = MakeMiner(MinerKind::kFpGrowth)->Mine(*db, no_arena);
    ASSERT_TRUE(fallback.ok());
    EXPECT_EQ(ToMap(*fallback), expected)
        << spec.label << ": arena-off FP-growth diverged, s=" << support;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tables, DifferentialMinerTest, ::testing::ValuesIn(Specs()),
    [](const ::testing::TestParamInfo<TableSpec>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace divexp
