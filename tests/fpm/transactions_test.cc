#include "fpm/transactions.h"

#include <gtest/gtest.h>

#include "testing/test_data.h"

namespace divexp {
namespace {

using testing::MakeEncoded;
using testing::OutcomesFromString;

TEST(OutcomeCountsTest, TotalsAndRate) {
  OutcomeCounts c{3, 1, 6};
  EXPECT_EQ(c.total(), 10u);
  EXPECT_DOUBLE_EQ(c.PositiveRate(), 0.75);
}

TEST(OutcomeCountsTest, AllBottomRateIsZero) {
  OutcomeCounts c{0, 0, 5};
  EXPECT_DOUBLE_EQ(c.PositiveRate(), 0.0);
}

TEST(OutcomeCountsTest, Accumulation) {
  OutcomeCounts a{1, 2, 3};
  a += OutcomeCounts{4, 5, 6};
  EXPECT_EQ(a, (OutcomeCounts{5, 7, 9}));
}

TEST(TransactionDatabaseTest, CreateComputesTotals) {
  const EncodedDataset ds =
      MakeEncoded({{0, 0}, {0, 1}, {1, 0}, {1, 1}}, {2, 2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TFBT"));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_rows(), 4u);
  EXPECT_EQ(db->num_attributes(), 2u);
  EXPECT_EQ(db->num_items(), 4u);
  EXPECT_EQ(db->totals(), (OutcomeCounts{2, 1, 1}));
}

TEST(TransactionDatabaseTest, RowAccessAndAttributeOfItem) {
  const EncodedDataset ds = MakeEncoded({{1, 0}}, {2, 3});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("T"));
  ASSERT_TRUE(db.ok());
  const uint32_t* row = db->row(0);
  EXPECT_EQ(row[0], 1u);  // a0=v1
  EXPECT_EQ(row[1], 2u);  // a1=v0 (first id after a0's two items)
  EXPECT_EQ(db->attribute_of(0), 0u);
  EXPECT_EQ(db->attribute_of(1), 0u);
  EXPECT_EQ(db->attribute_of(2), 1u);
  EXPECT_EQ(db->attribute_of(4), 1u);
}

TEST(TransactionDatabaseTest, SizeMismatchRejected) {
  const EncodedDataset ds = MakeEncoded({{0}, {1}}, {2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("T"));
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransactionDatabaseTest, OutcomePerRow) {
  const EncodedDataset ds = MakeEncoded({{0}, {1}, {0}}, {2});
  auto db = TransactionDatabase::Create(ds, OutcomesFromString("TFB"));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->outcome(0), Outcome::kTrue);
  EXPECT_EQ(db->outcome(1), Outcome::kFalse);
  EXPECT_EQ(db->outcome(2), Outcome::kBottom);
}

}  // namespace
}  // namespace divexp
