// The CLI's pipeline (CSV -> discretize -> explore -> reports),
// separated from main() so integration tests can drive it.
#ifndef DIVEXP_TOOLS_CLI_RUN_H_
#define DIVEXP_TOOLS_CLI_RUN_H_

#include <ostream>

#include "tools/cli_options.h"

namespace divexp {
namespace cli {

/// Executes the analysis described by `opts`, writing reports to `out`
/// and progress/log lines to `log`.
Status Run(const CliOptions& opts, std::ostream& out, std::ostream& log);

}  // namespace cli
}  // namespace divexp

#endif  // DIVEXP_TOOLS_CLI_RUN_H_
