// divexp — command-line pattern-divergence analysis.
//
// Reads a CSV with prediction/label columns, discretizes the remaining
// attributes, runs DivExplorer and prints the requested reports. See
// --help for the flag reference; examples:
//
//   divexp --csv data.csv --metric FNR --support 0.02 --top 15
//   divexp --csv data.csv --global --corrective --epsilon 0.05
//   divexp --csv data.csv --multi --export patterns.csv --miner eclat
//   divexp --csv data.csv --lattice "sex=Male,age=<=28" > lattice.dot
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "shard/worker/worker.h"
#include "tools/cli_options.h"
#include "tools/cli_run.h"
#include "tools/cli_serve.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // Hidden verb: the shard coordinator re-execs this binary as a
  // process-isolated worker (--shard-isolation=process). Dispatched
  // before normal flag parsing; not part of the user-facing surface.
  if (!args.empty() && args[0] == "shard-worker") {
    return divexp::shard::worker::ShardWorkerMain(
        {args.begin() + 1, args.end()});
  }
  if (!args.empty() && args[0] == "serve") {
    auto sopts = divexp::cli::ParseServeOptions(
        {args.begin() + 1, args.end()});
    if (!sopts.ok()) {
      std::fprintf(stderr, "error: %s\n\n%s",
                   sopts.status().message().c_str(),
                   divexp::cli::ServeUsageString().c_str());
      return 2;
    }
    if (sopts->show_help) {
      std::printf("%s", divexp::cli::ServeUsageString().c_str());
      return 0;
    }
    const divexp::Status status =
        divexp::cli::RunServe(*sopts, std::cin, std::cout, std::cerr);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }
  auto opts = divexp::cli::ParseCliOptions(args);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n\n%s",
                 opts.status().message().c_str(),
                 divexp::cli::UsageString().c_str());
    return 2;
  }
  if (opts->show_help) {
    std::printf("%s", divexp::cli::UsageString().c_str());
    return 0;
  }
  const divexp::Status status =
      divexp::cli::Run(*opts, std::cout, std::cerr);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
