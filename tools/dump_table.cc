// Inspector for pattern-table serving artifacts (and, via the eager
// fallback loader, pattern-table snapshots): prints the header, the
// section table with per-section CRCs, the table fingerprint and the
// top-k divergent rows — without ever deserializing the table.
//
// usage: divexp-dump-table FILE [--top=N] [--verify]
//   --top=N    rows to print (default 10, 0 = none)
//   --verify   full validation: every section CRC, a complete row
//              walk and a fingerprint recompute (exit 1 on mismatch)
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/artifact.h"
#include "serve/query.h"
#include "util/string_util.h"

namespace divexp {
namespace {

int Run(int argc, char** argv) {
  std::string path;
  size_t top = 10;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg.rfind("--top=", 0) == 0) {
      top = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: divexp-dump-table FILE [--top=N] [--verify]\n");
    return 2;
  }

  const serve::ArtifactValidation validation =
      verify ? serve::ArtifactValidation::kFull
             : serve::ArtifactValidation::kHeader;
  auto table = serve::OpenServingTable(path, validation);
  if (!table.ok()) {
    std::fprintf(stderr, "failed to open %s: %s\n", path.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  const serve::TableView& view = table->view();

  if (table->artifact != nullptr) {
    const serve::ArtifactInfo& info = table->artifact->info();
    std::printf("artifact: %s\n", path.c_str());
    std::printf("  version:      %u\n", info.version);
    std::printf("  file size:    %" PRIu64 " bytes\n", info.file_size);
    std::printf("  fingerprint:  %016" PRIx64 "\n", info.fingerprint);
    std::printf("  rows:         %" PRIu64 " (+ empty-itemset row)\n",
                info.num_rows - 1);
    std::printf("  dataset rows: %" PRIu64 "\n", info.num_dataset_rows);
    std::printf("  global rate:  %.6f\n", info.global_rate);
    std::printf("  sections:\n");
    for (const serve::ArtifactSectionInfo& s : info.sections) {
      std::printf("    %-12s off=%-10" PRIu64 " size=%-10" PRIu64
                  " crc=%08x\n",
                  serve::ArtifactSectionName(
                      static_cast<serve::ArtifactSection>(s.id)),
                  s.offset, s.size, s.crc);
    }
    if (verify) std::printf("  full validation: OK\n");
  } else {
    std::printf("snapshot (eager load): %s\n", path.c_str());
    std::printf("  fingerprint:  %016" PRIx64 "\n", view.fingerprint);
    std::printf("  rows:         %zu (+ empty-itemset row)\n",
                view.size() - 1);
    std::printf("  dataset rows: %" PRIu64 "\n", view.num_dataset_rows);
    std::printf("  global rate:  %.6f\n", view.global_rate);
  }

  if (top == 0) return 0;
  serve::QueryEngine engine(&view);
  serve::TopKQuery query;
  query.k = top;
  auto rows = engine.TopK(query);
  if (!rows.ok()) {
    std::fprintf(stderr, "top-k failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  std::printf("top %zu rows by divergence:\n", rows->size());
  for (const size_t i : *rows) {
    std::printf("  %-50s sup=%.4f div=%+.4f t=%.2f\n",
                engine.ItemsetName(view.row_items(i)).c_str(),
                view.support(i), view.divergence(i), view.t(i));
  }
  return 0;
}

}  // namespace
}  // namespace divexp

int main(int argc, char** argv) { return divexp::Run(argc, argv); }
