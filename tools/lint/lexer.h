// Token stream for the cross-file lint passes. The per-line rules in
// lint.cc deliberately stay textual (they survive unparseable input),
// but the lock-order and blocking passes need real statement structure:
// comments and string bodies must not look like code, and brace depth
// must be exact. This lexer produces just enough of C++ for that — no
// preprocessing, no templates-awareness, no keywords table — while
// staying std-only like the rest of tools/lint.
#ifndef DIVEXP_TOOLS_LINT_LEXER_H_
#define DIVEXP_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace divexp {
namespace lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (digit separators included)
  kString,  // "...", R"(...)" — text excludes the quotes
  kChar,    // '...'
  kPunct,   // one punctuator; "::" and "->" are single tokens
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// Lexes `content`. Comments are dropped. Preprocessor directives
// (including backslash-continued ones) are dropped entirely — the
// include graph is built from raw lines, not tokens. Malformed input
// never fails; the lexer resynchronizes at the next character.
std::vector<Token> Lex(const std::string& content);

}  // namespace lint
}  // namespace divexp

#endif  // DIVEXP_TOOLS_LINT_LEXER_H_
