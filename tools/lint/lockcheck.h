// The cross-file lock passes built on lint/index.h:
//
//  lock-order-cycle      — derives every "lock A held while acquiring
//                          lock B" edge from nested MutexLock scopes,
//                          REQUIRES entry sets and annotated call
//                          edges, then fails on any cycle among the
//                          edges or any edge that contradicts the
//                          canonical hierarchy in
//                          docs/static-analysis.md.
//  undeclared-lock-edge  — an edge whose endpoints are not both ranked
//                          in the hierarchy table (new lock pairs must
//                          be declared before they ship).
//  no-blocking-under-lock — file IO, util/subprocess calls, sleeps and
//                          condition waits while a divexp::Mutex is
//                          held, directly or through a call chain.
//                          Locks marked "may block: yes" in the
//                          hierarchy table are exempt (serialized IO
//                          under the lock is their documented design).
#ifndef DIVEXP_TOOLS_LINT_LOCKCHECK_H_
#define DIVEXP_TOOLS_LINT_LOCKCHECK_H_

#include <functional>
#include <string>

#include "lint/index.h"
#include "lint/lint.h"

namespace divexp {
namespace lint {

// Sink for findings. The caller owns suppression handling
// (`lint:allow` on the site line) and diagnostic storage.
using LockCheckEmit = std::function<void(
    const std::string& file, int line, const char* rule,
    const std::string& message)>;

// Runs both passes over a built index. Only functions defined under
// src/ and tools/ contribute findings; tests and benches may violate
// ordering on purpose (the runtime detector's own tests do).
void RunLockPasses(const SymbolIndex& index, const Catalogs& catalogs,
                   const LockCheckEmit& emit);

}  // namespace lint
}  // namespace divexp

#endif  // DIVEXP_TOOLS_LINT_LOCKCHECK_H_
