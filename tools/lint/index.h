// Cross-file symbol index for the lock-order passes: per-TU token
// streams (lint/lexer.h), the quoted-include graph, every
// `divexp::Mutex` declaration (members, globals and function locals),
// and every function with its `MutexLock` acquisitions, call sites and
// blocking-call sites — each recorded with the set of locks held at
// that point. lockcheck.cc consumes this to derive "lock A held while
// acquiring lock B" edges and blocking-under-lock findings.
//
// Like the rest of tools/lint this is a best-effort structural parse,
// not a compiler: it must never crash on odd input, and it errs toward
// silence (an unrecognized construct contributes no facts) because a
// lint that cries wolf gets suppressed instead of fixed.
#ifndef DIVEXP_TOOLS_LINT_INDEX_H_
#define DIVEXP_TOOLS_LINT_INDEX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace divexp {
namespace lint {

// A canonical lock identifier:
//  - class member:   enclosing scopes + member, with the repo-wide
//    `divexp` namespace stripped (e.g. `recovery::Checkpointer::mu_`,
//    `serve::ResultCache::Shard::mu`)
//  - namespace-scope global: scopes + name (e.g. `detail::g_mu`)
//  - function local: `<file>#<name>` (never rankable; local locks are
//    anonymous leaves of the hierarchy)
// The docs/static-analysis.md hierarchy table keys on these strings.

// One "lock X acquired at this point" event inside a function body.
struct AcquireSite {
  std::string lock;               // canonical lock id
  int line = 0;
  int depth = 0;                  // brace depth inside the body (>= 1)
  std::vector<std::string> held;  // locks already held, outermost first
};

// A call made while analyzing a function body. `held` is the held-lock
// snapshot; callee resolution happens in lockcheck.cc via the index.
struct CallSite {
  std::string name;        // base callee name (last identifier)
  std::string class_qual;  // explicit `Foo::` qualifier if written
  int line = 0;
  std::vector<std::string> held;
};

// A direct blocking token (sleep/IO/subprocess/condition wait) hit
// while locks were held. Token-level; the transitive closure through
// calls is lockcheck.cc's job.
struct BlockSite {
  std::string token;
  int line = 0;
  std::vector<std::string> held;
};

struct FunctionInfo {
  std::string name;        // base name, e.g. "WriteLocked"
  std::string class_name;  // fully scoped class, "" for free functions
  std::string display;     // human name for messages
  std::string file;
  int line = 0;
  bool is_definition = false;
  // Locks from REQUIRES(...) — held on entry to the definition's body.
  std::vector<std::string> requires_locks;
  // Locks from EXCLUDES(...)/ACQUIRE(...) — acquired internally. By
  // repo convention EXCLUDES(mu) documents "takes mu inside".
  std::vector<std::string> acquired_locks;
  // Definition-body facts (empty for pure declarations).
  std::vector<AcquireSite> acquires;
  std::vector<CallSite> calls;
  std::vector<BlockSite> blocks;
};

struct IndexedFile {
  std::string path;                   // logical repo-relative path
  std::vector<std::string> lines;     // raw lines, for suppressions
  std::vector<std::string> includes;  // implied repo paths of quoted
                                      // includes (e.g. src/util/mutex.h)
  std::vector<FunctionInfo> functions;
};

// The index itself. Usage: AddFile() for every file, then Build()
// exactly once, then query.
class SymbolIndex {
 public:
  // Lexes and structurally scans one file. `logical_path` must already
  // be the effective (lint-path-pinned) path.
  void AddFile(const std::string& logical_path,
               const std::string& content);

  // Resolves lock names and finalizes per-function facts. Call after
  // the last AddFile.
  void Build();

  const std::vector<IndexedFile>& files() const { return files_; }

  // Every canonical member/global lock id, with the file declaring it.
  const std::map<std::string, std::string>& locks() const {
    return locks_;
  }

  // Functions keyed by "Class::name" (or "name" for free functions);
  // multiple entries on overloads / multi-class name collisions.
  const std::multimap<std::string, const FunctionInfo*>& by_key() const {
    return by_key_;
  }
  // Same functions keyed by bare base name.
  const std::multimap<std::string, const FunctionInfo*>& by_name() const {
    return by_name_;
  }

  // Include closure of `path` (reflexive, transitive over quoted
  // includes that resolve into the tree).
  const std::set<std::string>& Closure(const std::string& path) const;

  // Files in which the key "Class::name" (or "name") is declared or
  // defined — used to check whether a callee is visible to a caller.
  const std::set<std::string>& DeclFiles(const std::string& key) const;

 private:
  std::vector<IndexedFile> files_;
  std::map<std::string, std::string> locks_;
  std::multimap<std::string, const FunctionInfo*> by_key_;
  std::multimap<std::string, const FunctionInfo*> by_name_;
  std::map<std::string, std::set<std::string>> decl_files_;
  mutable std::map<std::string, std::set<std::string>> closures_;
};

}  // namespace lint
}  // namespace divexp

#endif  // DIVEXP_TOOLS_LINT_INDEX_H_
