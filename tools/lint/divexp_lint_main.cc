// divexp-lint CLI. With no file arguments it lints the whole tree
// (src/ tools/ tests/ bench/ examples/) under --root; with file
// arguments it lints exactly those files, which is how the corpus
// fixtures and CI's changed-file mode drive it.
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage/configuration
// error (missing docs, unreadable file).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool HasLintableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::vector<fs::path> CollectTreeFiles(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* dir :
       {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      if (!HasLintableExtension(entry.path())) continue;
      // Corpus fixtures are deliberately bad; only the fixture tests
      // and CI's self-check gate run the linter over them.
      if (entry.path().string().find("lint_corpus") != std::string::npos) {
        continue;
      }
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int Usage() {
  std::cerr << "usage: divexp-lint [--root DIR] [--format=text|json|github] "
               "[file...]\n"
               "  Lints the repo tree (or the given files) against the\n"
               "  rules in docs/static-analysis.md.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<fs::path> files;
  std::string format = "text";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg.compare(0, 9, "--format=") == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "github") {
        std::cerr << "divexp-lint: unknown format '" << format << "'\n";
        return Usage();
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "divexp-lint: unknown flag " << arg << "\n";
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  root = fs::absolute(root).lexically_normal();

  divexp::lint::Catalogs catalogs;
  std::string error;
  if (!divexp::lint::LoadCatalogs(root.string(), &catalogs, &error)) {
    std::cerr << "divexp-lint: " << error << "\n";
    return 2;
  }

  if (files.empty()) files = CollectTreeFiles(root);

  divexp::lint::TreeLinter linter(catalogs);
  size_t linted = 0;
  for (const fs::path& file : files) {
    std::string content;
    if (!ReadFile(file, &content)) {
      std::cerr << "divexp-lint: cannot read " << file.string() << "\n";
      return 2;
    }
    const fs::path abs = fs::absolute(file).lexically_normal();
    std::string logical = fs::relative(abs, root).generic_string();
    if (logical.empty() || logical.compare(0, 2, "..") == 0) {
      // Outside the root (e.g. a fixture fed by absolute path): fall
      // back to the raw path; a `// lint-path:` comment may still pin
      // the logical location.
      logical = file.generic_string();
    }
    linter.AddFile(logical, content);
    ++linted;
  }
  const std::vector<divexp::lint::Diagnostic> diagnostics = linter.Run();

  if (format == "json") {
    std::cout << divexp::lint::RenderJson(diagnostics, linted);
  } else if (format == "github") {
    std::cout << divexp::lint::RenderGitHub(diagnostics);
    std::cerr << "divexp-lint: " << linted << " files, "
              << diagnostics.size() << " finding"
              << (diagnostics.size() == 1 ? "" : "s") << "\n";
  } else {
    for (const auto& d : diagnostics) {
      std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
                << d.message << "\n";
    }
    std::cout << "divexp-lint: " << linted << " files, "
              << diagnostics.size() << " finding"
              << (diagnostics.size() == 1 ? "" : "s") << "\n";
  }
  return diagnostics.empty() ? 0 : 1;
}
