#include "lint/lockcheck.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace divexp {
namespace lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool InScope(const std::string& path) {
  return StartsWith(path, "src/") || StartsWith(path, "tools/");
}

// Pretty-prints a lock id for messages; file-local ids keep their
// `file#name` form, which is self-explanatory.
std::string Lk(const std::string& id) { return "`" + id + "`"; }

struct Edge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
  std::string via;  // "" for a direct MutexLock nesting
};

class LockAnalysis {
 public:
  LockAnalysis(const SymbolIndex& index, const Catalogs& catalogs,
               const LockCheckEmit& emit)
      : index_(index), catalogs_(catalogs), emit_(emit) {}

  void Run() {
    CollectAnnotations();
    CollectDefinitions();
    CollectEdges();
    CheckEdges();
    CheckBlocking();
  }

 private:
  struct KeyAnnotations {
    std::set<std::string> requires_locks;
    std::set<std::string> acquired_locks;
  };

  std::string KeyOf(const FunctionInfo& fn) const {
    std::string class_base = fn.class_name;
    size_t sep = class_base.rfind("::");
    if (sep != std::string::npos) class_base = class_base.substr(sep + 2);
    return class_base.empty() ? fn.name : class_base + "::" + fn.name;
  }

  void CollectAnnotations() {
    for (const IndexedFile& file : index_.files()) {
      for (const FunctionInfo& fn : file.functions) {
        KeyAnnotations& ann = annotations_[KeyOf(fn)];
        ann.requires_locks.insert(fn.requires_locks.begin(),
                                  fn.requires_locks.end());
        ann.acquired_locks.insert(fn.acquired_locks.begin(),
                                  fn.acquired_locks.end());
      }
    }
  }

  void CollectDefinitions() {
    for (const IndexedFile& file : index_.files()) {
      for (const FunctionInfo& fn : file.functions) {
        if (fn.is_definition) definitions_.push_back(&fn);
      }
    }
    std::sort(definitions_.begin(), definitions_.end(),
              [](const FunctionInfo* a, const FunctionInfo* b) {
                if (a->file != b->file) return a->file < b->file;
                return a->line < b->line;
              });
  }

  // Callee candidates for a call site, visibility-filtered: the
  // callee's key must be declared in a file the caller includes
  // (transitively) or in the caller's own file.
  std::vector<const FunctionInfo*> Resolve(const CallSite& call,
                                           const std::string& from_file) {
    std::vector<const FunctionInfo*> out;
    const std::set<std::string>& closure = index_.Closure(from_file);
    auto visible = [&](const FunctionInfo* fn) {
      if (fn->file == from_file) return true;
      for (const std::string& f : index_.DeclFiles(KeyOf(*fn))) {
        if (closure.count(f) > 0) return true;
      }
      return false;
    };
    if (!call.class_qual.empty()) {
      const std::string key = call.class_qual + "::" + call.name;
      auto [lo, hi] = index_.by_key().equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        if (visible(it->second)) out.push_back(it->second);
      }
      if (!out.empty()) return out;
    }
    auto [lo, hi] = index_.by_name().equal_range(call.name);
    for (auto it = lo; it != hi; ++it) {
      if (visible(it->second)) out.push_back(it->second);
    }
    return out;
  }

  // Locks a function may acquire internally: direct MutexLock sites,
  // EXCLUDES/ACQUIRE annotations on any declaration of its key, and
  // transitively its callees'. REQUIRES locks are excluded — the
  // caller already holds those.
  const std::set<std::string>& AcquiresStar(const FunctionInfo* fn) {
    auto memo = acquires_star_.find(fn);
    if (memo != acquires_star_.end()) return memo->second;
    // Break recursion cycles: an on-stack function contributes what is
    // known so far (its direct set).
    if (acquires_on_stack_.count(fn) > 0) {
      static const std::set<std::string>* empty =
          new std::set<std::string>();
      return *empty;
    }
    acquires_on_stack_.insert(fn);
    std::set<std::string> result;
    auto ann = annotations_.find(KeyOf(*fn));
    if (ann != annotations_.end()) {
      result.insert(ann->second.acquired_locks.begin(),
                    ann->second.acquired_locks.end());
    }
    for (const AcquireSite& site : fn->acquires) {
      result.insert(site.lock);
    }
    if (fn->is_definition) {
      for (const CallSite& call : fn->calls) {
        for (const FunctionInfo* callee : Resolve(call, fn->file)) {
          const std::set<std::string>& sub = AcquiresStar(callee);
          result.insert(sub.begin(), sub.end());
        }
      }
    }
    acquires_on_stack_.erase(fn);
    return acquires_star_.emplace(fn, std::move(result)).first->second;
  }

  // Whether a function may block, with a human-readable reason chain.
  // Empty string = does not block (as far as the index can see).
  const std::string& BlocksStar(const FunctionInfo* fn) {
    auto memo = blocks_star_.find(fn);
    if (memo != blocks_star_.end()) return memo->second;
    static const std::string* empty = new std::string();
    if (blocks_on_stack_.count(fn) > 0) return *empty;
    blocks_on_stack_.insert(fn);
    std::string reason;
    if (!fn->blocks.empty()) {
      reason = "'" + fn->blocks.front().token + "' in " + fn->display +
               " (" + fn->file + ":" +
               std::to_string(fn->blocks.front().line) + ")";
    } else if (fn->is_definition) {
      for (const CallSite& call : fn->calls) {
        for (const FunctionInfo* callee : Resolve(call, fn->file)) {
          const std::string& sub = BlocksStar(callee);
          if (!sub.empty()) {
            reason = sub;
            break;
          }
        }
        if (!reason.empty()) break;
      }
    }
    blocks_on_stack_.erase(fn);
    return blocks_star_.emplace(fn, std::move(reason)).first->second;
  }

  std::set<std::string> EntryHeld(const FunctionInfo* fn) {
    std::set<std::string> held(fn->requires_locks.begin(),
                               fn->requires_locks.end());
    auto ann = annotations_.find(KeyOf(*fn));
    if (ann != annotations_.end()) {
      held.insert(ann->second.requires_locks.begin(),
                  ann->second.requires_locks.end());
    }
    return held;
  }

  void AddEdge(const std::string& from, const std::string& to,
               const std::string& file, int line, std::string via) {
    if (!seen_edges_.insert(from + "\x1f" + to).second) return;
    edges_.push_back(Edge{from, to, file, line, std::move(via)});
  }

  void CollectEdges() {
    for (const FunctionInfo* fn : definitions_) {
      if (!InScope(fn->file)) continue;
      const std::set<std::string> entry = EntryHeld(fn);
      for (const AcquireSite& site : fn->acquires) {
        std::set<std::string> held = entry;
        held.insert(site.held.begin(), site.held.end());
        for (const std::string& h : held) {
          AddEdge(h, site.lock, fn->file, site.line, "");
        }
      }
      for (const CallSite& call : fn->calls) {
        std::set<std::string> held = entry;
        held.insert(call.held.begin(), call.held.end());
        if (held.empty()) continue;
        for (const FunctionInfo* callee : Resolve(call, fn->file)) {
          for (const std::string& lock : AcquiresStar(callee)) {
            if (held.count(lock) > 0) continue;  // caller-held re-entry
                                                 // is clang TSA's beat
            for (const std::string& h : held) {
              AddEdge(h, lock, fn->file, call.line,
                      "via call to " + callee->display);
            }
          }
        }
      }
    }
    std::sort(edges_.begin(), edges_.end(),
              [](const Edge& a, const Edge& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                if (a.from != b.from) return a.from < b.from;
                return a.to < b.to;
              });
  }

  // Is `to` already known to reach `from` through recorded edges?
  // Fills `path` with the lock chain from `to` back to `from`.
  bool Reaches(const std::string& start, const std::string& goal,
               std::vector<std::string>* path,
               std::set<std::string>* visited) {
    if (!visited->insert(start).second) return false;
    path->push_back(start);
    if (start == goal) return true;
    auto it = adjacency_.find(start);
    if (it != adjacency_.end()) {
      for (const std::string& next : it->second) {
        if (Reaches(next, goal, path, visited)) return true;
      }
    }
    path->pop_back();
    return false;
  }

  void CheckEdges() {
    std::set<std::string> in_cycle;  // edge keys skipped by rank check
    for (const Edge& e : edges_) {
      const std::string suffix =
          e.via.empty() ? "" : " (" + e.via + ")";
      if (e.from == e.to) {
        emit_(e.file, e.line, kRuleLockOrderCycle,
              "acquiring " + Lk(e.to) + " while already holding it" +
                  suffix + "; divexp::Mutex is non-recursive — this "
                  "self-deadlocks");
        in_cycle.insert(e.from + "\x1f" + e.to);
        continue;
      }
      std::vector<std::string> path;
      std::set<std::string> visited;
      if (Reaches(e.to, e.from, &path, &visited)) {
        std::string chain;
        for (const std::string& lock : path) chain += Lk(lock) + " -> ";
        chain += Lk(e.to);
        emit_(e.file, e.line, kRuleLockOrderCycle,
              "acquiring " + Lk(e.to) + " while holding " + Lk(e.from) +
                  suffix + " closes a lock cycle: " + chain +
                  "; two threads taking these locks in opposite order "
                  "deadlock");
        in_cycle.insert(e.from + "\x1f" + e.to);
        // The edges along the discovered path are part of the same
        // cycle; reporting them again as undeclared would double-count
        // one bug.
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          in_cycle.insert(path[i] + "\x1f" + path[i + 1]);
        }
        if (!path.empty()) {
          in_cycle.insert(path.back() + "\x1f" + e.to);
        }
      }
      adjacency_[e.from].insert(e.to);
    }
    for (const Edge& e : edges_) {
      if (in_cycle.count(e.from + "\x1f" + e.to) > 0) continue;
      const std::string suffix =
          e.via.empty() ? "" : " (" + e.via + ")";
      auto from_rank = catalogs_.lock_ranks.find(e.from);
      auto to_rank = catalogs_.lock_ranks.find(e.to);
      if (from_rank == catalogs_.lock_ranks.end() ||
          to_rank == catalogs_.lock_ranks.end()) {
        const std::string& missing =
            from_rank == catalogs_.lock_ranks.end() ? e.from : e.to;
        emit_(e.file, e.line, kRuleUndeclaredLockEdge,
              "holds " + Lk(e.from) + " while acquiring " + Lk(e.to) +
                  suffix + ", but " + Lk(missing) +
                  " has no rank in the canonical lock hierarchy of "
                  "docs/static-analysis.md; declare the lock (and this "
                  "edge's direction) there before shipping it");
        continue;
      }
      if (from_rank->second >= to_rank->second) {
        emit_(e.file, e.line, kRuleLockOrderCycle,
              "holds " + Lk(e.from) + " (rank " +
                  std::to_string(from_rank->second) +
                  ") while acquiring " + Lk(e.to) + " (rank " +
                  std::to_string(to_rank->second) + ")" + suffix +
                  "; the canonical hierarchy in docs/static-analysis.md "
                  "only permits acquiring strictly increasing ranks");
      }
    }
  }

  void CheckBlocking() {
    for (const FunctionInfo* fn : definitions_) {
      if (!InScope(fn->file)) continue;
      const std::set<std::string> entry = EntryHeld(fn);
      auto strict_held = [&](const std::vector<std::string>& site_held) {
        std::set<std::string> held = entry;
        held.insert(site_held.begin(), site_held.end());
        std::set<std::string> strict;
        for (const std::string& h : held) {
          if (catalogs_.lock_may_block.count(h) == 0) strict.insert(h);
        }
        return strict;
      };
      for (const BlockSite& site : fn->blocks) {
        const std::set<std::string> held = strict_held(site.held);
        if (held.empty()) continue;
        emit_(fn->file, site.line, kRuleNoBlockingUnderLock,
              "'" + site.token + "' while holding " + Lk(*held.begin()) +
                  "; blocking under a divexp::Mutex stalls every other "
                  "waiter — move the IO/wait outside the critical "
                  "section (locks that serialize IO by design are "
                  "marked 'may block' in docs/static-analysis.md)");
      }
      for (const CallSite& call : fn->calls) {
        const std::set<std::string> held = strict_held(call.held);
        if (held.empty()) continue;
        for (const FunctionInfo* callee : Resolve(call, fn->file)) {
          const std::string& reason = BlocksStar(callee);
          if (reason.empty()) continue;
          emit_(fn->file, call.line, kRuleNoBlockingUnderLock,
                "call to " + callee->display + " may block (" + reason +
                    ") while holding " + Lk(*held.begin()) +
                    "; move the call outside the critical section or "
                    "mark the lock 'may block' in "
                    "docs/static-analysis.md");
          break;  // one finding per call site is enough
        }
      }
    }
  }

  const SymbolIndex& index_;
  const Catalogs& catalogs_;
  const LockCheckEmit& emit_;
  std::map<std::string, KeyAnnotations> annotations_;
  std::vector<const FunctionInfo*> definitions_;
  std::map<const FunctionInfo*, std::set<std::string>> acquires_star_;
  std::set<const FunctionInfo*> acquires_on_stack_;
  std::map<const FunctionInfo*, std::string> blocks_star_;
  std::set<const FunctionInfo*> blocks_on_stack_;
  std::vector<Edge> edges_;
  std::set<std::string> seen_edges_;
  std::map<std::string, std::set<std::string>> adjacency_;
};

}  // namespace

void RunLockPasses(const SymbolIndex& index, const Catalogs& catalogs,
                   const LockCheckEmit& emit) {
  LockAnalysis(index, catalogs, emit).Run();
}

}  // namespace lint
}  // namespace divexp
