#include "lint/index.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <memory>

namespace divexp {
namespace lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Identifiers that can never be a function name at a call/definition
// site. Not a full keyword table — just what precedes '(' in practice.
bool IsNonCallKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",       "while",    "switch",  "return",
      "sizeof",   "alignof",   "decltype", "noexcept", "catch",
      "throw",    "new",       "delete",   "assert",  "defined",
      "static_assert", "alignas", "operator", "void",  "int",
      "char",     "bool",      "auto",     "float",   "double",
      "unsigned", "long",      "short",    "co_await", "co_return",
  };
  return kKeywords.count(s) > 0;
}

// Annotation macros whose arguments name locks. TRY_ACQUIRE/RELEASE
// args are deliberately excluded: TRY_ACQUIRE's argument is the success
// value, and RELEASE adds no ordering information.
bool IsLockAnnotation(const std::string& s) {
  return s == "REQUIRES" || s == "EXCLUDES" || s == "ACQUIRE" ||
         s == "ACQUIRE_SHARED" || s == "REQUIRES_SHARED";
}

// Direct blocking tokens for the no-blocking-under-lock pass. The
// `member_only` ones (condition waits, thread join) only count after
// `.`/`->` so that unrelated free functions named `wait` stay quiet.
struct BlockingToken {
  const char* text;
  bool member_only;
  bool needs_call;  // must be followed by '(' (stream types are not)
};
const BlockingToken kBlockingTokens[] = {
    {"sleep_for", false, true},   {"sleep_until", false, true},
    {"usleep", false, true},      {"nanosleep", false, true},
    {"wait", true, true},         {"wait_for", true, true},
    {"wait_until", true, true},   {"join", true, true},
    {"poll", false, true},        {"select", false, true},
    {"accept", false, true},      {"accept4", false, true},
    {"connect", false, true},     {"recv", false, true},
    {"recvmsg", false, true},     {"recvfrom", false, true},
    {"send", false, true},        {"sendmsg", false, true},
    {"sendto", false, true},      {"waitpid", false, true},
    {"fsync", false, true},       {"fdatasync", false, true},
    {"fopen", false, true},       {"fread", false, true},
    {"fwrite", false, true},      {"fgets", false, true},
    {"system", false, true},      {"ifstream", false, false},
    // Banned-token strings, not writes:
    {"ofstream", false, false},  // lint:allow(no-raw-file-output): token table
    {"fstream", false, false},
    // util/subprocess.h API: spawning, waiting on and killing children
    // are all potentially unbounded waits.
    {"SpawnWithStatusPipe", false, true},
    {"WaitForExit", false, true}, {"KillProcess", false, true},
    {"ReadSome", false, true},    {"WriteAll", false, true},
    // The sanctioned file-write entry point is still file IO.
    {"WriteFileAtomic", false, true},
};

const BlockingToken* FindBlockingToken(const std::string& s) {
  for (const BlockingToken& t : kBlockingTokens) {
    if (s == t.text) return &t;
  }
  return nullptr;
}

// Lock-infrastructure files whose own bodies must not feed the passes
// (MutexLock's constructor is the acquisition primitive itself).
bool IsLockInfraFile(const std::string& path) {
  return path == "src/util/mutex.h" || path == "src/util/deadlock.h" ||
         path == "src/util/deadlock.cc";
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string line;
  size_t start = 0;
  while (start <= content.size()) {
    size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      if (start < content.size()) {
        lines.push_back(content.substr(start));
      }
      break;
    }
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string DirName(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// Joins scope components into a canonical id, dropping the repo-wide
// `divexp` namespace and anonymous scopes.
std::string JoinScopes(const std::vector<std::string>& scopes) {
  std::string out;
  for (const std::string& s : scopes) {
    if (s.empty() || s == "divexp") continue;
    if (!out.empty()) out += "::";
    out += s;
  }
  return out;
}

// Last identifier-ish segment of a raw lock expression
// (`shard.mu` -> `mu`, `self->mu_` -> `mu_`, `mu_` -> `mu_`).
std::string LastIdent(const std::string& expr) {
  size_t end = expr.size();
  while (end > 0) {
    const char c = expr[end - 1];
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      break;
    }
    --end;
  }
  size_t start = end;
  while (start > 0) {
    const char c = expr[start - 1];
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      break;
    }
    --start;
  }
  return expr.substr(start, end - start);
}

}  // namespace

// Raw per-function facts captured during the structural scan; lock
// references stay unresolved strings until Build() has seen every
// file's Mutex declarations.
namespace internal_index {

struct RawFunction {
  FunctionInfo info;                     // lock fields hold raw refs
  std::vector<std::string> scope_path;   // canonical enclosing scopes
  std::map<std::string, std::string> local_locks;  // name -> file#name
};

struct RawFile {
  IndexedFile indexed;
  std::vector<std::string> raw_includes;
  std::vector<std::unique_ptr<RawFunction>> functions;
};

struct Scanner {
  Scanner(const std::string& path, const std::vector<Token>& toks,
          RawFile* out, std::map<std::string, std::string>* locks)
      : path_(path), toks_(toks), out_(out), locks_(locks) {}

  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
    std::string name;
    RawFunction* fn = nullptr;
    int saved_paren_depth = 0;
  };

  void Run() {
    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") {
          ++paren_depth_;
        } else if (t.text == ")") {
          if (paren_depth_ > 0) --paren_depth_;
        } else if (t.text == "{") {
          OpenBrace();
          continue;
        } else if (t.text == "}") {
          CloseBrace();
          continue;
        } else if (t.text == ";" && paren_depth_ == 0) {
          EndStatement();
          continue;
        }
      }
      stmt_.push_back(t);
    }
  }

 private:
  RawFunction* EnclosingFunction() {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return it->fn;
      if (it->kind == Scope::kClass || it->kind == Scope::kNamespace) {
        return nullptr;  // a local class resets function context
      }
    }
    return nullptr;
  }

  int InnerDepth() {
    // 1 when directly inside the nearest function body, +1 per block.
    int depth = 0;
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      ++depth;
      if (it->kind == Scope::kFunction) return depth;
    }
    return 0;
  }

  std::vector<std::string> ScopePath() {
    std::vector<std::string> path;
    for (const Scope& s : stack_) {
      if (s.kind == Scope::kNamespace || s.kind == Scope::kClass) {
        path.push_back(s.name);
      }
    }
    return path;
  }

  // --- statement classification -----------------------------------

  bool HasTopLevelToken(const std::string& text) {
    int depth = 0;
    for (const Token& t : stmt_) {
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(" || t.text == "[") ++depth;
        if (t.text == ")" || t.text == "]") --depth;
      }
      if (depth == 0 && t.text == text) return true;
    }
    return false;
  }

  bool HasKeyword(const std::string& kw) {
    for (const Token& t : stmt_) {
      if (t.kind == TokKind::kIdent && t.text == kw) return true;
    }
    return false;
  }

  // Class/struct name: last identifier before the first top-level ':'
  // (base clause) ignoring identifiers inside parens (attribute macros
  // like CAPABILITY("mutex")) and the `final` specifier.
  std::string ClassName() {
    std::string name;
    int depth = 0;
    for (const Token& t : stmt_) {
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") ++depth;
        if (t.text == ")") --depth;
        if (depth == 0 && t.text == ":") break;
      }
      if (depth == 0 && t.kind == TokKind::kIdent && t.text != "final") {
        name = t.text;
      }
    }
    return name;
  }

  // Function signature shape: first top-level '(' preceded by a
  // non-keyword identifier, with a matching ')'. Fills name, explicit
  // `Foo::` qualifier chain and lock annotations.
  struct Signature {
    bool ok = false;
    std::string name;
    std::vector<std::string> qual;  // e.g. {"Checkpointer"}
    int line = 0;
    std::vector<std::string> requires_locks;  // raw refs
    std::vector<std::string> acquired_locks;  // raw refs
  };

  Signature ParseSignature() {
    Signature sig;
    int depth = 0;
    size_t open = stmt_.size();
    for (size_t i = 0; i < stmt_.size(); ++i) {
      const Token& t = stmt_[i];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(") {
        if (depth == 0) {
          open = i;
          break;
        }
        ++depth;
      } else if (t.text == "<") {
        ++depth;  // crude template-argument skip
      } else if (t.text == ">") {
        if (depth > 0) --depth;
      }
    }
    if (open == stmt_.size() || open == 0) return sig;
    const Token& name_tok = stmt_[open - 1];
    if (name_tok.kind != TokKind::kIdent ||
        IsNonCallKeyword(name_tok.text)) {
      return sig;
    }
    sig.name = name_tok.text;
    sig.line = name_tok.line;
    // Walk the `A::B::name` qualifier chain backwards.
    size_t i = open - 1;
    while (i >= 2 && stmt_[i - 1].text == "::" &&
           stmt_[i - 2].kind == TokKind::kIdent) {
      sig.qual.insert(sig.qual.begin(), stmt_[i - 2].text);
      i -= 2;
    }
    // Find the matching ')'.
    int pdepth = 0;
    size_t close = stmt_.size();
    for (size_t j = open; j < stmt_.size(); ++j) {
      if (stmt_[j].text == "(") ++pdepth;
      if (stmt_[j].text == ")" && --pdepth == 0) {
        close = j;
        break;
      }
    }
    if (close == stmt_.size()) return sig;
    // Annotations after the parameter list.
    for (size_t j = close + 1; j + 1 < stmt_.size(); ++j) {
      if (stmt_[j].kind != TokKind::kIdent ||
          !IsLockAnnotation(stmt_[j].text) || stmt_[j + 1].text != "(") {
        continue;
      }
      std::vector<std::string> args;
      std::string arg;
      int adepth = 0;
      size_t k = j + 1;
      for (; k < stmt_.size(); ++k) {
        if (stmt_[k].text == "(" && ++adepth == 1) continue;
        if (stmt_[k].text == ")" && --adepth == 0) break;
        if (stmt_[k].text == "," && adepth == 1) {
          if (!arg.empty()) args.push_back(arg);
          arg.clear();
          continue;
        }
        arg += stmt_[k].text;
      }
      if (!arg.empty()) args.push_back(arg);
      for (const std::string& a : args) {
        if (a.empty() || a[0] == '!') continue;  // negative capability
        if (stmt_[j].text == "REQUIRES" ||
            stmt_[j].text == "REQUIRES_SHARED") {
          sig.requires_locks.push_back(a);
        } else {
          sig.acquired_locks.push_back(a);
        }
      }
      j = k;
    }
    sig.ok = true;
    return sig;
  }

  // --- fact extraction --------------------------------------------

  // Registers `Mutex name;` declarations found in `stmt_` for the
  // given scope. At class/namespace scope the id is scope-qualified;
  // inside a function it becomes a file-local id.
  void ScanMutexDecls(RawFunction* fn) {
    for (size_t i = 0; i + 1 < stmt_.size(); ++i) {
      if (stmt_[i].kind != TokKind::kIdent || stmt_[i].text != "Mutex") {
        continue;
      }
      // Only a declaration when preceded by nothing, an access
      // specifier (the `private:` tokens share the member's statement
      // buffer), `static`, `mutable`, or a `divexp::` qualifier.
      if (i > 0) {
        const std::string& prev = stmt_[i - 1].text;
        const bool qualified =
            prev == "::" && i >= 2 && stmt_[i - 2].text == "divexp";
        const bool after_access =
            prev == ":" && i >= 2 &&
            (stmt_[i - 2].text == "public" ||
             stmt_[i - 2].text == "private" ||
             stmt_[i - 2].text == "protected");
        if (!qualified && !after_access && prev != "static" &&
            prev != "mutable" && prev != "inline") {
          continue;
        }
        if (prev == "::" && !(i >= 2 && stmt_[i - 2].text == "divexp")) {
          continue;
        }
      }
      // One or more `name` tokens separated by commas, ending the
      // statement (references/pointers/returns don't match).
      size_t j = i + 1;
      while (j < stmt_.size() && stmt_[j].kind == TokKind::kIdent) {
        const std::string name = stmt_[j].text;
        const bool last = j + 1 == stmt_.size();
        const bool comma = !last && stmt_[j + 1].text == ",";
        if (!last && !comma) break;
        if (fn != nullptr) {
          fn->local_locks[name] = path_ + "#" + name;
        } else {
          const std::string scope = JoinScopes(ScopePath());
          const std::string id =
              scope.empty() ? name : scope + "::" + name;
          (*locks_)[id] = path_;
        }
        if (last) break;
        j += 2;
      }
    }
  }

  // Extracts MutexLock acquisitions, calls and blocking tokens from
  // the current statement into `fn`.
  void ScanFunctionStatement(RawFunction* fn) {
    const int depth = InnerDepth();
    for (size_t i = 0; i < stmt_.size(); ++i) {
      const Token& t = stmt_[i];
      if (t.kind != TokKind::kIdent) continue;
      const bool call_next =
          i + 1 < stmt_.size() && stmt_[i + 1].text == "(";
      // MutexLock guard(expr): an acquisition holding to end of scope.
      if (t.text == "MutexLock" && i + 2 < stmt_.size() &&
          stmt_[i + 1].kind == TokKind::kIdent &&
          stmt_[i + 2].text == "(") {
        std::string expr;
        int pdepth = 0;
        for (size_t j = i + 2; j < stmt_.size(); ++j) {
          if (stmt_[j].text == "(" && ++pdepth == 1) continue;
          if (stmt_[j].text == ")" && --pdepth == 0) break;
          expr += stmt_[j].text;
        }
        AcquireSite site;
        site.lock = expr;  // raw; resolved in Build()
        site.line = t.line;
        site.depth = depth;
        for (const auto& h : held_) site.held.push_back(h.first);
        fn->info.acquires.push_back(site);
        held_.emplace_back(expr, depth);
        i += 2;
        continue;
      }
      // Fail-point macros reach FailPointRegistry::Fire (which locks
      // the registry and, for delay actions, sleeps).
      if ((t.text == "DIVEXP_FAILPOINT" ||
           t.text == "DIVEXP_FAILPOINT_STATUS") &&
          call_next) {
        CallSite call;
        call.name = "Fire";
        call.class_qual = "FailPointRegistry";
        call.line = t.line;
        for (const auto& h : held_) call.held.push_back(h.first);
        fn->info.calls.push_back(call);
        continue;
      }
      const BlockingToken* blocking = FindBlockingToken(t.text);
      if (blocking != nullptr) {
        const bool member =
            i > 0 &&
            (stmt_[i - 1].text == "." || stmt_[i - 1].text == "->");
        const bool shape_ok =
            (!blocking->needs_call || call_next) &&
            (!blocking->member_only || member);
        if (shape_ok) {
          BlockSite site;
          site.token = t.text;
          site.line = t.line;
          for (const auto& h : held_) site.held.push_back(h.first);
          fn->info.blocks.push_back(site);
          continue;
        }
      }
      if (!call_next || IsNonCallKeyword(t.text) ||
          IsLockAnnotation(t.text) || t.text == "MutexLock") {
        continue;
      }
      CallSite call;
      call.line = t.line;
      // `Type var(...)`: the side effect is Type's constructor.
      if (i > 0 && stmt_[i - 1].kind == TokKind::kIdent &&
          !IsNonCallKeyword(stmt_[i - 1].text) &&
          stmt_[i - 1].text != "return") {
        call.name = stmt_[i - 1].text;
        call.class_qual = stmt_[i - 1].text;
      } else {
        call.name = t.text;
        size_t k = i;
        while (k >= 2 && stmt_[k - 1].text == "::" &&
               stmt_[k - 2].kind == TokKind::kIdent) {
          call.class_qual = stmt_[k - 2].text;
          k -= 2;
        }
      }
      for (const auto& h : held_) call.held.push_back(h.first);
      fn->info.calls.push_back(call);
    }
  }

  // --- brace handling ---------------------------------------------

  void OpenBrace() {
    Scope scope;
    scope.saved_paren_depth = paren_depth_;
    RawFunction* fn = EnclosingFunction();
    if (paren_depth_ > 0 || fn != nullptr) {
      // Inside parens (lambda/init in an argument list) or a function
      // body: a plain block — but local classes still open class
      // scope, and the control header may carry facts.
      if (fn != nullptr && paren_depth_ == 0 &&
          (HasKeyword("class") || HasKeyword("struct")) &&
          !ParseSignature().ok) {
        scope.kind = Scope::kClass;
        scope.name = ClassName();
      } else {
        if (fn != nullptr) {
          ScanMutexDecls(fn);
          ScanFunctionStatement(fn);
        }
        scope.kind = Scope::kBlock;
      }
    } else if (HasKeyword("namespace")) {
      scope.kind = Scope::kNamespace;
      std::string name;
      for (const Token& t : stmt_) {
        if (t.kind == TokKind::kIdent && t.text != "namespace" &&
            t.text != "inline") {
          name = t.text;
        }
      }
      scope.name = name;
    } else if (HasKeyword("class") || HasKeyword("struct") ||
               HasKeyword("union") || HasKeyword("enum")) {
      scope.kind = Scope::kClass;
      scope.name = ClassName();
    } else if (!HasTopLevelToken("=")) {
      Signature sig = ParseSignature();
      if (sig.ok) {
        auto raw = std::make_unique<RawFunction>();
        raw->info.name = sig.name;
        raw->info.file = path_;
        raw->info.line = sig.line;
        raw->info.is_definition = true;
        raw->info.requires_locks = sig.requires_locks;
        raw->info.acquired_locks = sig.acquired_locks;
        raw->scope_path = ScopePath();
        for (const std::string& q : sig.qual) {
          raw->scope_path.push_back(q);
        }
        // The innermost enclosing class (scope or qualifier chain).
        raw->info.class_name = JoinScopes(raw->scope_path);
        raw->info.display = raw->info.class_name.empty()
                                ? sig.name
                                : raw->info.class_name + "::" + sig.name;
        // scope_path holds the *class* path only when the enclosing
        // scope actually is a class; for free functions it is the
        // namespace path, which resolution also wants.
        scope.kind = Scope::kFunction;
        scope.fn = raw.get();
        out_->functions.push_back(std::move(raw));
      } else {
        scope.kind = Scope::kBlock;
      }
    } else {
      scope.kind = Scope::kBlock;  // aggregate initializer etc.
    }
    stack_.push_back(scope);
    paren_depth_ = 0;
    stmt_.clear();
  }

  void CloseBrace() {
    stmt_.clear();
    if (stack_.empty()) return;
    const Scope scope = stack_.back();
    stack_.pop_back();
    paren_depth_ = scope.saved_paren_depth;
    // Release every lock acquired at or inside the closed scope.
    const int depth = InnerDepth();
    if (EnclosingFunction() == nullptr) {
      held_.clear();
    } else {
      while (!held_.empty() && held_.back().second > depth) {
        held_.pop_back();
      }
    }
  }

  void EndStatement() {
    RawFunction* fn = EnclosingFunction();
    if (fn != nullptr) {
      ScanMutexDecls(fn);
      ScanFunctionStatement(fn);
      stmt_.clear();
      return;
    }
    // Class or namespace scope: Mutex members/globals and function
    // declarations (with or without annotations).
    ScanMutexDecls(nullptr);
    Signature sig = ParseSignature();
    if (sig.ok && !HasTopLevelToken("=")) {
      auto raw = std::make_unique<RawFunction>();
      raw->info.name = sig.name;
      raw->info.file = path_;
      raw->info.line = sig.line;
      raw->info.is_definition = false;
      raw->info.requires_locks = sig.requires_locks;
      raw->info.acquired_locks = sig.acquired_locks;
      raw->scope_path = ScopePath();
      for (const std::string& q : sig.qual) {
        raw->scope_path.push_back(q);
      }
      raw->info.class_name = JoinScopes(raw->scope_path);
      raw->info.display = raw->info.class_name.empty()
                              ? sig.name
                              : raw->info.class_name + "::" + sig.name;
      out_->functions.push_back(std::move(raw));
    }
    stmt_.clear();
  }

  const std::string& path_;
  const std::vector<Token>& toks_;
  RawFile* out_;
  std::map<std::string, std::string>* locks_;
  std::vector<Scope> stack_;
  std::vector<Token> stmt_;
  int paren_depth_ = 0;
  // Raw lock refs currently held, with the inner depth they were
  // acquired at.
  std::vector<std::pair<std::string, int>> held_;
};

}  // namespace internal_index

using internal_index::RawFile;
using internal_index::RawFunction;
using internal_index::Scanner;

namespace {

// Storage bridging AddFile and Build. Lives in a per-index side table
// keyed by the SymbolIndex instance to keep the header std-container
// only.
struct PendingState {
  std::vector<std::unique_ptr<RawFile>> raw_files;
};

std::map<const SymbolIndex*, std::unique_ptr<PendingState>>&
PendingStates() {
  static auto* states =
      new std::map<const SymbolIndex*, std::unique_ptr<PendingState>>();
  return *states;
}

PendingState& StateFor(const SymbolIndex* index) {
  auto& states = PendingStates();
  auto it = states.find(index);
  if (it == states.end()) {
    it = states.emplace(index, std::make_unique<PendingState>()).first;
  }
  return *it->second;
}

// Resolves a raw lock reference against the function's context.
std::string ResolveLockRef(
    const std::string& raw, const RawFunction& fn,
    const std::map<std::string, std::string>& locks) {
  const std::string name = LastIdent(raw);
  if (name.empty()) return fn.info.file + "#<unknown>";
  auto local = fn.local_locks.find(name);
  if (local != fn.local_locks.end()) return local->second;
  // Exact member walk: innermost enclosing scope outwards.
  std::vector<std::string> path = fn.scope_path;
  while (true) {
    const std::string scope = JoinScopes(path);
    const std::string id = scope.empty() ? name : scope + "::" + name;
    if (locks.count(id) > 0) return id;
    if (path.empty()) break;
    path.pop_back();
  }
  // Nested classes of an enclosing scope (e.g. ResultCache::Shard::mu
  // reached from a ResultCache method as `shard.mu`).
  path = fn.scope_path;
  while (!path.empty()) {
    const std::string prefix = JoinScopes(path);
    if (!prefix.empty()) {
      std::string found;
      int count = 0;
      for (const auto& [id, file] : locks) {
        (void)file;
        if (StartsWith(id, prefix + "::") && EndsWith(id, "::" + name)) {
          found = id;
          ++count;
        }
      }
      if (count == 1) return found;
    }
    path.pop_back();
  }
  // Globally unique base name.
  std::string found;
  int count = 0;
  for (const auto& [id, file] : locks) {
    (void)file;
    if (id == name || EndsWith(id, "::" + name)) {
      found = id;
      ++count;
    }
  }
  if (count == 1) return found;
  return fn.info.file + "#" + name;
}

}  // namespace

void SymbolIndex::AddFile(const std::string& logical_path,
                          const std::string& content) {
  auto raw = std::make_unique<RawFile>();
  raw->indexed.path = logical_path;
  raw->indexed.lines = SplitLines(content);
  // Quoted includes from raw lines (the lexer drops preprocessor
  // directives); resolution against indexed paths happens in Build().
  for (const std::string& line : raw->indexed.lines) {
    size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '#') continue;
    size_t inc = line.find("include", i);
    if (inc == std::string::npos) continue;
    size_t open = line.find('"', inc);
    if (open == std::string::npos) continue;
    size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    raw->raw_includes.push_back(line.substr(open + 1, close - open - 1));
  }
  // Structural scan: only layered sources contribute lock facts (tests
  // deliberately misuse locks; the lock primitive itself is exempt).
  const bool scan = (StartsWith(logical_path, "src/") ||
                     StartsWith(logical_path, "tools/")) &&
                    !IsLockInfraFile(logical_path);
  if (scan) {
    const std::vector<Token> tokens = Lex(content);
    Scanner scanner(logical_path, tokens, raw.get(), &locks_);
    scanner.Run();
  }
  StateFor(this).raw_files.push_back(std::move(raw));
}

void SymbolIndex::Build() {
  PendingState& state = StateFor(this);
  // Candidate implied paths for a quoted include, resolved against the
  // set of paths actually indexed.
  std::set<std::string> known_paths;
  for (const auto& raw : state.raw_files) {
    known_paths.insert(raw->indexed.path);
  }
  for (auto& raw : state.raw_files) {
    for (const std::string& inc : raw->raw_includes) {
      const std::string candidates[] = {
          "src/" + inc, inc, "tests/" + inc, "tools/" + inc,
          DirName(raw->indexed.path) + "/" + inc};
      for (const std::string& candidate : candidates) {
        if (known_paths.count(candidate) > 0) {
          raw->indexed.includes.push_back(candidate);
          break;
        }
      }
    }
  }
  // Resolve every raw lock reference now that locks_ is complete.
  for (auto& raw : state.raw_files) {
    for (auto& fn : raw->functions) {
      auto resolve_list = [&](std::vector<std::string>* refs) {
        for (std::string& ref : *refs) {
          ref = ResolveLockRef(ref, *fn, locks_);
        }
        std::sort(refs->begin(), refs->end());
        refs->erase(std::unique(refs->begin(), refs->end()),
                    refs->end());
      };
      resolve_list(&fn->info.requires_locks);
      resolve_list(&fn->info.acquired_locks);
      for (AcquireSite& site : fn->info.acquires) {
        site.lock = ResolveLockRef(site.lock, *fn, locks_);
        for (std::string& h : site.held) {
          h = ResolveLockRef(h, *fn, locks_);
        }
      }
      for (CallSite& site : fn->info.calls) {
        for (std::string& h : site.held) {
          h = ResolveLockRef(h, *fn, locks_);
        }
      }
      for (BlockSite& site : fn->info.blocks) {
        for (std::string& h : site.held) {
          h = ResolveLockRef(h, *fn, locks_);
        }
      }
      raw->indexed.functions.push_back(fn->info);
    }
  }
  // Move the finalized files into place and build the lookup tables.
  files_.clear();
  for (auto& raw : state.raw_files) {
    files_.push_back(std::move(raw->indexed));
  }
  for (const IndexedFile& file : files_) {
    for (const FunctionInfo& fn : file.functions) {
      // Key on the innermost class component so out-of-line
      // definitions and in-class declarations meet.
      std::string class_base = fn.class_name;
      size_t sep = class_base.rfind("::");
      if (sep != std::string::npos) class_base = class_base.substr(sep + 2);
      const std::string key =
          class_base.empty() ? fn.name : class_base + "::" + fn.name;
      by_key_.emplace(key, &fn);
      by_name_.emplace(fn.name, &fn);
      decl_files_[key].insert(file.path);
      decl_files_[fn.name].insert(file.path);
    }
  }
  PendingStates().erase(this);
}

const std::set<std::string>& SymbolIndex::Closure(
    const std::string& path) const {
  auto it = closures_.find(path);
  if (it != closures_.end()) return it->second;
  std::map<std::string, const IndexedFile*> by_path;
  for (const IndexedFile& file : files_) {
    by_path[file.path] = &file;
  }
  std::set<std::string>& closure = closures_[path];
  std::deque<std::string> queue = {path};
  closure.insert(path);
  while (!queue.empty()) {
    const std::string current = queue.front();
    queue.pop_front();
    auto found = by_path.find(current);
    if (found == by_path.end()) continue;
    for (const std::string& inc : found->second->includes) {
      if (closure.insert(inc).second) queue.push_back(inc);
    }
  }
  return closure;
}

const std::set<std::string>& SymbolIndex::DeclFiles(
    const std::string& key) const {
  static const std::set<std::string>* empty = new std::set<std::string>();
  auto it = decl_files_.find(key);
  return it == decl_files_.end() ? *empty : it->second;
}

}  // namespace lint
}  // namespace divexp
