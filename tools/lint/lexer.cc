#include "lint/lexer.h"

#include <cctype>

namespace divexp {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<Token> Lex(const std::string& content) {
  std::vector<Token> tokens;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (content[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }
    // Preprocessor directive: swallow the logical line, honouring
    // backslash continuations. Comments inside are handled by falling
    // through newline detection (a // comment cannot continue a line).
    if (c == '#' && at_line_start) {
      while (i < n) {
        size_t eol = content.find('\n', i);
        if (eol == std::string::npos) {
          advance(n - i);
          break;
        }
        // Continuation if the last non-CR char before the newline is
        // a backslash.
        size_t last = eol;
        while (last > i && (content[last - 1] == '\r')) --last;
        const bool continued = last > i && content[last - 1] == '\\';
        advance(eol - i + 1);
        if (!continued) break;
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      size_t eol = content.find('\n', i);
      advance(eol == std::string::npos ? n - i : eol - i);
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      size_t close = content.find("*/", i + 2);
      advance(close == std::string::npos ? n - i : close - i + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
        (tokens.empty() || i == 0 || !IsIdentChar(content[i - 1]))) {
      size_t open_paren = content.find('(', i + 2);
      if (open_paren != std::string::npos && open_paren - i - 2 <= 16) {
        const std::string delim =
            content.substr(i + 2, open_paren - i - 2);
        const std::string closer = ")" + delim + "\"";
        size_t close = content.find(closer, open_paren + 1);
        const int tok_line = line;
        if (close != std::string::npos) {
          tokens.push_back(
              {TokKind::kString,
               content.substr(open_paren + 1, close - open_paren - 1),
               tok_line});
          advance(close + closer.size() - i);
          continue;
        }
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      // Digit separator: '...' directly between alphanumerics is part
      // of a number (1'000'000), not a char literal.
      if (quote == '\'' && i > 0 && IsIdentChar(content[i - 1]) &&
          i + 1 < n && IsIdentChar(content[i + 1])) {
        advance(1);
        continue;
      }
      const int tok_line = line;
      std::string text;
      size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) {
          text += content[j + 1];
          j += 2;
          continue;
        }
        if (content[j] == '\n') break;  // unterminated: resync
        text += content[j];
        ++j;
      }
      tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                        text, tok_line});
      advance((j < n && content[j] == quote ? j + 1 : j) - i);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(content[j])) ++j;
      tokens.push_back({TokKind::kIdent, content.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t j = i + 1;
      while (j < n &&
             (IsIdentChar(content[j]) || content[j] == '.' ||
              content[j] == '\'' ||
              ((content[j] == '+' || content[j] == '-') && j > 0 &&
               (content[j - 1] == 'e' || content[j - 1] == 'E')))) {
        ++j;
      }
      tokens.push_back({TokKind::kNumber, content.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    // Punctuators: keep "::" and "->" whole (scope chains and member
    // access matter to the passes); everything else is one char.
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      tokens.push_back({TokKind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && content[i + 1] == '>') {
      tokens.push_back({TokKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return tokens;
}

}  // namespace lint
}  // namespace divexp
