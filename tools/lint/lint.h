// divexp-lint: repo-specific invariant checker. Complements the
// compiler-enforced layer (clang thread-safety analysis and
// [[nodiscard]] Status/Result) with textual rules the compiler cannot
// express: error-drop suppression discipline, the atomic-write
// invariant, fail-point and metric naming conventions, and the include
// layering of the source tree. See docs/static-analysis.md for the
// rule catalog and suppression syntax.
//
// Deliberately std-only (no project includes): the linter must build
// and run even when the tree it checks does not compile.
#ifndef DIVEXP_TOOLS_LINT_LINT_H_
#define DIVEXP_TOOLS_LINT_LINT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace divexp {
namespace lint {

// Stable rule identifiers. Diagnostics, suppression comments
// (`lint:allow(<rule-id>): <reason>`) and corpus fixtures
// (`// expect: <rule-id>`) all refer to these strings; renaming one is
// a breaking change to every suppression in the tree.
inline constexpr const char* kRuleNoIgnoredStatus = "no-ignored-status";
inline constexpr const char* kRuleNoRawFileOutput = "no-raw-file-output";
inline constexpr const char* kRuleFailpointName = "failpoint-name";
inline constexpr const char* kRuleMetricName = "metric-name-convention";
inline constexpr const char* kRuleStageDocumented = "stage-name-documented";
inline constexpr const char* kRuleIncludeLayering = "include-layering";
inline constexpr const char* kRuleShardStatus = "shard-status-propagated";
inline constexpr const char* kRuleKernelNoAlloc = "kernel-no-alloc";
inline constexpr const char* kRuleServeNoMutation =
    "serve-no-artifact-mutation";
inline constexpr const char* kRuleNoRawSubprocess = "no-raw-subprocess";
inline constexpr const char* kRuleLockOrderCycle = "lock-order-cycle";
inline constexpr const char* kRuleUndeclaredLockEdge =
    "undeclared-lock-edge";
inline constexpr const char* kRuleNoBlockingUnderLock =
    "no-blocking-under-lock";
inline constexpr const char* kRuleStaleSuppression = "stale-suppression";

struct Diagnostic {
  std::string file;  // logical repo-relative path
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

// Reference data the rules check against, extracted from the tree
// itself so the lint never drifts from the documentation:
//  - failpoints: the catalog table in docs/recovery.md
//  - documented_names: dotted names (metrics, stages) in
//    docs/observability.md and docs/recovery.md
//  - dynamic_prefixes: documented families like
//    `recovery.failpoint.<name>` reduced to their literal prefix
//  - status_functions: names of functions/methods declared in headers
//    with a Status or Result<...> return type
//  - lock_ranks: the canonical lock hierarchy table in
//    docs/static-analysis.md — canonical lock id -> rank; edges must
//    go strictly rank-upwards
//  - lock_may_block: hierarchy rows whose "May block" column is yes
//    (locks that serialize IO by design; exempt from
//    no-blocking-under-lock)
struct Catalogs {
  std::set<std::string> failpoints;
  std::set<std::string> documented_names;
  std::set<std::string> dynamic_prefixes;
  std::set<std::string> status_functions;
  std::map<std::string, int> lock_ranks;
  std::set<std::string> lock_may_block;
};

// Loads all catalogs from a repo root. Missing docs or an empty
// catalog is a configuration error reported via `error` (the caller
// should treat it as a lint failure, not silently pass).
bool LoadCatalogs(const std::string& root, Catalogs* catalogs,
                  std::string* error);

// Lints one file's contents. `logical_path` is the repo-relative path
// used for all path-dependent rules (layering, exemptions); for corpus
// fixtures it may be overridden by a `// lint-path: <path>` comment in
// the first lines of the content. Runs every pass — per-line rules,
// the cross-file lock passes (degenerately, over the one file) and
// stale-suppression detection.
void LintFile(const std::string& logical_path, const std::string& content,
              const Catalogs& catalogs, std::vector<Diagnostic>* out);

// Multi-pass tree linter. AddFile() every file, then Run() once:
//  1. per-line rules (the historical per-file scanner),
//  2. the cross-file lock-order / blocking passes over a shared symbol
//     index (lint/index.h, lint/lockcheck.h),
//  3. stale-suppression detection — a well-formed
//     `lint:allow(<rule>): <reason>` that suppressed nothing in any
//     pass is itself a finding; an obsolete allow hides the next real
//     regression on that line.
// Diagnostics come back sorted by (file, line, rule).
class TreeLinter {
 public:
  explicit TreeLinter(const Catalogs& catalogs);
  ~TreeLinter();
  TreeLinter(const TreeLinter&) = delete;
  TreeLinter& operator=(const TreeLinter&) = delete;

  void AddFile(const std::string& logical_path,
               const std::string& content);
  std::vector<Diagnostic> Run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Renderers for `divexp-lint --format=...`. JSON is a stable
// machine-readable schema ({"files": N, "findings": [...]});
// the GitHub form emits one `::error file=...,line=...` workflow
// command per finding so CI annotates the diff.
std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       size_t files_linted);
std::string RenderGitHub(const std::vector<Diagnostic>& diagnostics);

// The include-layering rank of a repo-relative path, or -1 when the
// path is outside the layered tree (unknown directories are skipped,
// never flagged). Exposed for tests.
int LayerOf(const std::string& logical_path);

// True when `name` is a well-formed dotted identifier
// (`subsystem.noun[_verb]`): at least two dot-separated segments, each
// lower-case snake_case. Exposed for tests.
bool IsDottedName(const std::string& name);

}  // namespace lint
}  // namespace divexp

#endif  // DIVEXP_TOOLS_LINT_LINT_H_
