#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/lockcheck.h"

namespace divexp {
namespace lint {
namespace {

namespace fs = std::filesystem;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(content);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// True for lines that are entirely comment ("//...", or a "*"-led
// continuation of a block comment). Content rules skip these so prose
// examples never trip token scans.
bool IsCommentLine(const std::string& line) {
  size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos) return false;
  if (line.compare(i, 2, "//") == 0) return true;
  if (line[i] == '*') return true;
  if (line.compare(i, 2, "/*") == 0) return true;
  return false;
}

// `lint:allow(<rule>): <reason>` on the diagnostic's line suppresses
// it. The reason is mandatory: an allow without one does not suppress.
bool HasAllow(const std::string& line, const std::string& rule) {
  const std::string needle = "lint:allow(" + rule + ")";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  size_t after = pos + needle.size();
  if (after >= line.size() || line[after] != ':') return false;
  size_t reason = line.find_first_not_of(" \t", after + 1);
  return reason != std::string::npos;
}

// Every shipped rule id; the stale-suppression pass only treats an
// allow of a *known* rule as a suppression site (prose like
// `lint:allow(<rule-id>)` in docs comments stays invisible).
const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      kRuleNoIgnoredStatus,  kRuleNoRawFileOutput,
      kRuleFailpointName,    kRuleMetricName,
      kRuleStageDocumented,  kRuleIncludeLayering,
      kRuleShardStatus,      kRuleKernelNoAlloc,
      kRuleServeNoMutation,  kRuleNoRawSubprocess,
      kRuleLockOrderCycle,   kRuleUndeclaredLockEdge,
      kRuleNoBlockingUnderLock, kRuleStaleSuppression,
  };
  return kRules;
}

// All well-formed suppressions (`lint:allow(<known-rule>): <reason>`)
// on one line.
std::vector<std::string> AllowedRulesOnLine(const std::string& line) {
  std::vector<std::string> rules;
  const std::string marker = "lint:allow(";
  size_t pos = 0;
  while ((pos = line.find(marker, pos)) != std::string::npos) {
    size_t start = pos + marker.size();
    size_t close = line.find(')', start);
    pos = start;
    if (close == std::string::npos) break;
    const std::string rule = line.substr(start, close - start);
    if (KnownRules().count(rule) > 0 && HasAllow(line, rule)) {
      rules.push_back(rule);
    }
  }
  return rules;
}

// Shared record of which allow comments actually suppressed a finding,
// keyed "file\x1fline\x1frule". Fed by every pass; drained by the
// stale-suppression pass.
struct SuppressionLog {
  std::set<std::string> used;
  static std::string Key(const std::string& file, int line,
                         const std::string& rule) {
    return file + "\x1f" + std::to_string(line) + "\x1f" + rule;
  }
};

// Applies the `// lint-path: <path>` override a corpus fixture may
// carry in its first lines.
std::string EffectivePath(const std::string& logical_path,
                          const std::string& content) {
  std::istringstream in(content);
  std::string line;
  const std::string marker = "// lint-path: ";
  for (int i = 0; i < 5 && std::getline(in, line); ++i) {
    size_t pos = line.find(marker);
    if (pos == std::string::npos) continue;
    std::string path = line.substr(pos + marker.size());
    while (!path.empty() &&
           (path.back() == ' ' || path.back() == '\r')) {
      path.pop_back();
    }
    return path;
  }
  return logical_path;
}

// All directory ranks are spaced by 10 so future layers can slot in
// between without renumbering every suppression-free include.
const std::map<std::string, int>& SrcDirLayers() {
  static const std::map<std::string, int> kLayers = {
      {"util", 0},    {"obs", 10},      {"stats", 10},
      {"data", 20},   {"model", 30},    {"fpm", 40},
      {"datasets", 50}, {"recovery", 60}, {"core", 70},
      {"slicefinder", 70}, {"shard", 75},  {"serve", 78},
  };
  return kLayers;
}

// atomic_file/crc32/snapshot_file are low-level IO with no dependency
// above util; pinning them below data/ lets data/csv.cc use
// WriteFileAtomic without inverting the data <- recovery order.
int PinnedRecoveryIoLayer(const std::string& src_relative) {
  static const char* kPinned[] = {"recovery/atomic_file.",
                                  "recovery/crc32.",
                                  "recovery/snapshot_file."};
  for (const char* prefix : kPinned) {
    if (StartsWith(src_relative, prefix)) return 10;
  }
  return -1;
}

// The compute-kernel layer sits below the miners that call it: fpm/
// files include fpm/kernels/ headers, never the reverse (the kernels
// are pure primitives with no fpm dependency).
int PinnedKernelLayer(const std::string& src_relative) {
  return StartsWith(src_relative, "fpm/kernels/") ? 35 : -1;
}

// The process-isolation layer sits above the shard driver it runs
// attempts for (and above serve/, whose artifact format carries worker
// results) but below tools/: shard/shard.cc reaches workers only
// through the ShardAttemptRunner seam, never by including these
// headers, so a thread-isolation build carries no subprocess code.
int PinnedWorkerLayer(const std::string& src_relative) {
  return StartsWith(src_relative, "shard/worker/") ? 79 : -1;
}

// Maps a quoted include string (as written in the source, e.g.
// "util/status.h") to (layer, implied repo-relative path). Unknown
// first segments — single-file includes, third-party — yield layer -1
// and are never flagged.
struct IncludeTarget {
  int layer = -1;
  std::string implied_path;
};

IncludeTarget ResolveInclude(const std::string& inc) {
  IncludeTarget t;
  size_t slash = inc.find('/');
  if (slash == std::string::npos) return t;
  const std::string head = inc.substr(0, slash);
  if (head == "testing") {
    t.layer = 85;
    t.implied_path = "tests/" + inc;
    return t;
  }
  if (head == "tools") {
    t.layer = 80;
    t.implied_path = inc;
    return t;
  }
  auto it = SrcDirLayers().find(head);
  if (it == SrcDirLayers().end()) return t;
  t.layer = it->second;
  int pinned = PinnedRecoveryIoLayer(inc);
  if (pinned < 0) pinned = PinnedKernelLayer(inc);
  if (pinned < 0) pinned = PinnedWorkerLayer(inc);
  if (pinned >= 0) t.layer = pinned;
  t.implied_path = "src/" + inc;
  return t;
}

std::string DirName(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool IsNameSegment(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) != 0 ||
          std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '_')) {
      return false;
    }
  }
  return s.front() != '_' && s.back() != '_';
}

// Extracts every `token` between backticks on a markdown line.
std::vector<std::string> BacktickTokens(const std::string& line) {
  std::vector<std::string> tokens;
  size_t pos = 0;
  while (true) {
    size_t open = line.find('`', pos);
    if (open == std::string::npos) break;
    size_t close = line.find('`', open + 1);
    if (close == std::string::npos) break;
    tokens.push_back(line.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  return tokens;
}

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::string();
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Parses a double-quoted string literal starting at `pos` (which must
// point at the opening quote). Returns false on malformed input.
bool ParseStringLiteral(const std::string& line, size_t pos,
                        std::string* value, size_t* end) {
  if (pos >= line.size() || line[pos] != '"') return false;
  std::string out;
  for (size_t i = pos + 1; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      out += line[i + 1];
      ++i;
      continue;
    }
    if (line[i] == '"') {
      *value = std::move(out);
      *end = i + 1;
      return true;
    }
    out += line[i];
  }
  return false;
}

size_t SkipSpaces(const std::string& line, size_t pos) {
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t')) {
    ++pos;
  }
  return pos;
}

// Validates one `name@ordinal:action` fail-point spec. Mirrors
// ParseFailPointSpecs in util/failpoint.cc; docs/recovery.md documents
// the grammar.
bool ValidateFailPointSpec(const std::string& spec, std::string* why) {
  size_t at = spec.find('@');
  if (at == std::string::npos) {
    *why = "missing '@ordinal'";
    return false;
  }
  const std::string name = spec.substr(0, at);
  if (!IsDottedName(name)) {
    *why = "name '" + name + "' is not dotted snake_case";
    return false;
  }
  size_t colon = spec.find(':', at + 1);
  if (colon == std::string::npos) {
    *why = "missing ':action'";
    return false;
  }
  const std::string ordinal = spec.substr(at + 1, colon - at - 1);
  if (ordinal.empty() ||
      ordinal.find_first_not_of("0123456789") != std::string::npos ||
      ordinal == std::string(ordinal.size(), '0')) {
    *why = "ordinal '" + ordinal + "' must be an integer >= 1";
    return false;
  }
  const std::string action = spec.substr(colon + 1);
  if (action == "return-error" || action == "throw" || action == "abort" ||
      action == "segv" || action == "kill") {
    return true;
  }
  if (StartsWith(action, "delay-")) {
    const std::string ms = action.substr(6);
    if (!ms.empty() &&
        ms.find_first_not_of("0123456789") == std::string::npos) {
      return true;
    }
  }
  *why = "unknown action '" + action + "'";
  return false;
}

class FileLinter {
 public:
  FileLinter(std::string logical_path, const Catalogs& catalogs,
             std::vector<Diagnostic>* out, SuppressionLog* log)
      : path_(std::move(logical_path)),
        catalogs_(catalogs),
        out_(out),
        log_(log) {
    in_layered_src_ =
        StartsWith(path_, "src/") || StartsWith(path_, "tools/");
  }

  void Lint(const std::string& content) {
    const std::vector<std::string> lines = SplitLines(content);
    // A fixture may pin its logical path for path-dependent rules.
    for (size_t i = 0; i < lines.size() && i < 5; ++i) {
      const std::string marker = "// lint-path: ";
      size_t pos = lines[i].find(marker);
      if (pos != std::string::npos) {
        path_ = lines[i].substr(pos + marker.size());
        while (!path_.empty() &&
               (path_.back() == ' ' || path_.back() == '\r')) {
          path_.pop_back();
        }
        in_layered_src_ =
            StartsWith(path_, "src/") || StartsWith(path_, "tools/");
        break;
      }
    }
    source_layer_ = LayerOf(path_);
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      const int lineno = static_cast<int>(i) + 1;
      CheckInclude(line, lineno);
      if (IsCommentLine(line)) continue;
      CheckIgnoredStatus(line, lineno);
      CheckRawFileOutput(line, lineno);
      CheckKernelNoAlloc(line, lineno);
      CheckServeNoMutation(line, lineno);
      CheckRawSubprocess(line, lineno);
      CheckFailPoints(line, lineno);
      CheckMetricNames(line, lineno);
      CheckStageNames(line, lineno);
      NoteShardTokens(line, lineno);
    }
    CheckShardStatus();
  }

 private:
  void Emit(const std::string& line, int lineno, const char* rule,
            std::string message) {
    if (HasAllow(line, rule)) {
      if (log_ != nullptr) {
        log_->used.insert(SuppressionLog::Key(path_, lineno, rule));
      }
      return;
    }
    out_->push_back(Diagnostic{path_, lineno, rule, std::move(message)});
  }

  void CheckInclude(const std::string& line, int lineno) {
    if (source_layer_ < 0) return;
    size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '#') return;
    size_t inc = line.find("include", i);
    if (inc == std::string::npos) return;
    size_t open = line.find('"', inc);
    if (open == std::string::npos) return;  // <...> includes are exempt
    std::string target;
    size_t end = 0;
    if (!ParseStringLiteral(line, open, &target, &end)) return;
    const IncludeTarget t = ResolveInclude(target);
    if (t.layer < 0) return;
    if (DirName(t.implied_path) == DirName(path_)) return;
    if (t.layer < source_layer_) return;
    Emit(line, lineno, kRuleIncludeLayering,
         "\"" + target + "\" (layer " + std::to_string(t.layer) +
             ") is not below " + path_ + " (layer " +
             std::to_string(source_layer_) +
             "); the tree layers util <- data <- fpm <- core <- tools");
  }

  void CheckIgnoredStatus(const std::string& line, int lineno) {
    // A cast-to-void of a Status/Result-returning call silences the
    // [[nodiscard]] check without leaving a reason behind.
    size_t pos = 0;
    while ((pos = line.find("(void)", pos)) != std::string::npos) {
      size_t p = SkipSpaces(line, pos + 6);
      size_t start = p;
      while (p < line.size() &&
             (IsWordChar(line[p]) || line[p] == ':' || line[p] == '.' ||
              line[p] == '>' || line[p] == '-' || line[p] == '*')) {
        ++p;
      }
      if (p < line.size() && p > start && line[p] == '(') {
        std::string chain = line.substr(start, p - start);
        size_t cut = chain.find_last_of(":.>");
        const std::string callee =
            cut == std::string::npos ? chain : chain.substr(cut + 1);
        if (catalogs_.status_functions.count(callee) > 0) {
          Emit(line, lineno, kRuleNoIgnoredStatus,
               "'" + callee +
                   "' returns a Status/Result; a void cast hides the "
                   "drop. Use `Status ignored = ...;  // best-effort: <reason>`");
        }
      }
      pos += 6;
    }
    // The sanctioned drop form must carry its reason on the same line.
    static const std::regex kIgnored(R"(\bStatus\s+ignored\s*=)");
    if (std::regex_search(line, kIgnored) &&
        line.find("best-effort:") == std::string::npos) {
      Emit(line, lineno, kRuleNoIgnoredStatus,
           "dropped Status must explain itself: append `// best-effort: "
           "<reason>`");
    }
  }

  void CheckRawFileOutput(const std::string& line, int lineno) {
    if (path_ == "src/recovery/atomic_file.cc") return;
    struct Token {
      const char* text;
      bool needs_call;  // must be followed by '(' to count
    };
    // Only the first entry needs a suppression: the needs_call tokens
    // are not followed by '(' on their own table lines, so the rule
    // never fires there (the stale-suppression pass enforces this).
    static const Token kTokens[] = {{"ofstream", false},  // lint:allow(no-raw-file-output): the rule's own token table
                                    {"fopen", true},
                                    {"fwrite", true},
                                    {"fputs", true},
                                    {"fprintf", true}};
    for (const Token& token : kTokens) {
      const std::string text = token.text;
      size_t pos = 0;
      while ((pos = line.find(text, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
        size_t after = pos + text.size();
        const bool right_ok =
            after >= line.size() || !IsWordChar(line[after]);
        bool is_call = true;
        if (token.needs_call) {
          size_t paren = SkipSpaces(line, after);
          is_call = paren < line.size() && line[paren] == '(';
          if (is_call) {
            // Console diagnostics are fine; the rule is about files.
            // A call wrapped before its first argument cannot be
            // judged line-locally and is skipped.
            const std::string rest = line.substr(paren);
            if (rest.find("stderr") != std::string::npos ||
                rest.find("stdout") != std::string::npos ||
                SkipSpaces(rest, 1) >= rest.size()) {
              is_call = false;
            }
          }
        }
        if (left_ok && right_ok && is_call) {
          Emit(line, lineno, kRuleNoRawFileOutput,
               "raw file output ('" + text +
                   "') outside src/recovery/atomic_file.cc; use "
                   "recovery::WriteFileAtomic so partial writes can "
                   "never be observed");
          break;  // one diagnostic per token per line is enough
        }
        pos = after;
      }
    }
  }

  // The kernels_* translation units are the process's hot loops: they
  // run under ResolveKernel() dispatch inside per-candidate inner
  // loops, so any allocation, lock or container use there is a
  // performance bug (and usually an aliasing one — callers own every
  // buffer). arena.h lives in the same directory but allocates by
  // design, so the rule keys on the "kernels" basename prefix.
  void CheckKernelNoAlloc(const std::string& line, int lineno) {
    if (!StartsWith(path_, "src/fpm/kernels/")) return;
    const std::string base = path_.substr(path_.rfind('/') + 1);
    if (!StartsWith(base, "kernels")) return;
    static const char* kForbidden[] = {
        "new",        "malloc",      "calloc",     "realloc",
        "free",       "make_unique", "make_shared",
        "vector",     "string",      "map",        "deque",
        "mutex",      "lock_guard",  "unique_lock", "shared_lock",
        "resize",     "push_back",   "reserve",    "emplace_back",
    };
    for (const char* token : kForbidden) {
      const std::string text = token;
      size_t pos = 0;
      while ((pos = line.find(text, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
        const size_t after = pos + text.size();
        const bool right_ok =
            after >= line.size() || !IsWordChar(line[after]);
        if (left_ok && right_ok) {
          Emit(line, lineno, kRuleKernelNoAlloc,
               "'" + text +
                   "' in a kernel translation unit; kernels are pure "
                   "compute over caller-owned buffers — no allocation, "
                   "containers or locks (hoist it to the caller or to "
                   "fpm/kernels/arena.h)");
          break;  // one diagnostic per token per line is enough
        }
        pos = after;
      }
    }
  }

  // The serving layer's whole concurrency story is that the mapped
  // artifact is immutable: one mapping shared by every server thread
  // with no synchronization. Any path to writing through it —
  // const_cast of the view's spans, remapping the pages writable —
  // breaks that contract, so the tokens are banned outright in
  // src/serve/ rather than reviewed case by case.
  void CheckServeNoMutation(const std::string& line, int lineno) {
    if (!StartsWith(path_, "src/serve/")) return;
    static const char* kForbidden[] = {"const_cast", "PROT_WRITE",
                                       "mprotect", "MAP_SHARED"};
    for (const char* token : kForbidden) {
      const std::string text = token;
      size_t pos = 0;
      while ((pos = line.find(text, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
        const size_t after = pos + text.size();
        const bool right_ok =
            after >= line.size() || !IsWordChar(line[after]);
        if (left_ok && right_ok) {
          Emit(line, lineno, kRuleServeNoMutation,
               "'" + text +
                   "' in the serving layer; an attached artifact is "
                   "immutable and shared across server threads without "
                   "locks — nothing in src/serve/ may open a path to "
                   "writing through the mapping");
          break;  // one diagnostic per token per line is enough
        }
        pos = after;
      }
    }
  }

  // Process creation is allowed in exactly one translation unit:
  // src/util/subprocess.cc. Everything else must go through its
  // wrappers so the coordinator's spawn/reap accounting (the zombie
  // invariant tests assert SpawnCount == ReapCount) can never be
  // bypassed, and so a worker can never itself become a fork site.
  void CheckRawSubprocess(const std::string& line, int lineno) {
    if (!in_layered_src_) return;
    if (path_ == "src/util/subprocess.cc") return;
    static const char* kForbidden[] = {
        "fork",  "vfork",       "execv",        "execve",
        "execvp", "execl",      "execlp",       "execle",
        "posix_spawn", "posix_spawnp", "system",
    };
    for (const char* token : kForbidden) {
      const std::string text = token;
      size_t pos = 0;
      while ((pos = line.find(text, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
        const size_t after = pos + text.size();
        const bool right_ok =
            after >= line.size() || !IsWordChar(line[after]);
        // Only call-like uses count: prose ("fork/exec") and
        // identifiers embedded in longer words stay quiet.
        const size_t paren = SkipSpaces(line, after);
        const bool is_call = paren < line.size() && line[paren] == '(';
        if (left_ok && right_ok && is_call) {
          Emit(line, lineno, kRuleNoRawSubprocess,
               "raw process creation ('" + text +
                   "') outside src/util/subprocess.cc; use "
                   "divexp::SpawnWithStatusPipe so every child is "
                   "accounted for and reaped");
          break;  // one diagnostic per token per line is enough
        }
        pos = after;
      }
    }
  }

  void CheckFailPoints(const std::string& line, int lineno) {
    // Definition sites: DIVEXP_FAILPOINT("name") literals.
    static const char* kMacros[] = {"DIVEXP_FAILPOINT_STATUS",
                                    "DIVEXP_FAILPOINT"};
    size_t scan = 0;
    while (scan < line.size()) {
      size_t best = std::string::npos;
      const char* macro = nullptr;
      for (const char* m : kMacros) {
        size_t pos = line.find(m, scan);
        if (pos != std::string::npos &&
            (best == std::string::npos || pos < best)) {
          best = pos;
          macro = m;
        }
      }
      if (best == std::string::npos) break;
      size_t p = best + std::string(macro).size();
      // Skip the shorter macro matching inside the longer one.
      if (p < line.size() && IsWordChar(line[p])) {
        scan = best + 1;
        continue;
      }
      p = SkipSpaces(line, p);
      if (p >= line.size() || line[p] != '(') {
        scan = best + 1;
        continue;
      }
      p = SkipSpaces(line, p + 1);
      std::string name;
      size_t end = 0;
      if (ParseStringLiteral(line, p, &name, &end)) {
        if (!IsDottedName(name)) {
          Emit(line, lineno, kRuleFailpointName,
               "fail point '" + name +
                   "' must be dotted snake_case (subsystem.site)");
        } else if (in_layered_src_ &&
                   catalogs_.failpoints.count(name) == 0) {
          Emit(line, lineno, kRuleFailpointName,
               "fail point '" + name +
                   "' is not in the catalog table of docs/recovery.md; "
                   "add it so --failpoints users can discover it");
        }
      }
      scan = best + 1;
    }
    // Arming sites: spec strings ("name@ordinal:action[,...]")
    // passed to ScopedFailPoints / Arm / ParseFailPointSpecs.
    if (line.find("ScopedFailPoints") == std::string::npos &&
        line.find("ParseFailPointSpecs") == std::string::npos &&
        line.find("Arm(") == std::string::npos &&
        line.find("--failpoints") == std::string::npos) {
      return;
    }
    size_t pos = 0;
    while ((pos = line.find('"', pos)) != std::string::npos) {
      std::string literal;
      size_t end = 0;
      if (!ParseStringLiteral(line, pos, &literal, &end)) break;
      pos = end;
      if (literal.find('@') == std::string::npos) continue;
      std::string specs = literal;
      const std::string flag = "--failpoints=";
      if (StartsWith(specs, flag)) specs = specs.substr(flag.size());
      std::istringstream split(specs);
      std::string spec;
      while (std::getline(split, spec, ',')) {
        std::string why;
        if (!ValidateFailPointSpec(spec, &why)) {
          Emit(line, lineno, kRuleFailpointName,
               "fail-point spec '" + spec + "': " + why +
                   " (grammar: name@ordinal:action, action one of "
                   "return-error|throw|abort|segv|kill|delay-<ms>)");
        } else if (in_layered_src_) {
          const std::string name = spec.substr(0, spec.find('@'));
          if (catalogs_.failpoints.count(name) == 0) {
            Emit(line, lineno, kRuleFailpointName,
                 "fail point '" + name +
                     "' is not in the catalog table of docs/recovery.md");
          }
        }
      }
    }
  }

  void CheckMetricNames(const std::string& line, int lineno) {
    static const char* kGetters[] = {"GetCounter", "GetGauge",
                                     "GetHistogram"};
    for (const char* getter : kGetters) {
      size_t pos = 0;
      while ((pos = line.find(getter, pos)) != std::string::npos) {
        const size_t after = pos + std::string(getter).size();
        const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
        pos = after;
        if (!left_ok || after >= line.size() || line[after] != '(') {
          continue;
        }
        size_t p = SkipSpaces(line, after + 1);
        std::string name;
        size_t end = 0;
        if (!ParseStringLiteral(line, p, &name, &end)) continue;
        const bool concatenated =
            SkipSpaces(line, end) < line.size() &&
            line[SkipSpaces(line, end)] == '+';
        if (concatenated) {
          // A dynamic family: the literal is a prefix ending in '.',
          // and the family itself must be documented (e.g.
          // `recovery.failpoint.<name>`).
          if (name.empty() || name.back() != '.' ||
              !IsDottedName(name + "x")) {
            Emit(line, lineno, kRuleMetricName,
                 "dynamic metric prefix '" + name +
                     "' must be dotted snake_case ending in '.'");
          } else if (in_layered_src_ &&
                     catalogs_.dynamic_prefixes.count(name) == 0) {
            Emit(line, lineno, kRuleMetricName,
                 "dynamic metric family '" + name +
                     "<...>' is not documented in docs/observability.md "
                     "or docs/recovery.md");
          }
          continue;
        }
        if (!IsDottedName(name)) {
          Emit(line, lineno, kRuleMetricName,
               "metric '" + name +
                   "' must follow subsystem.noun[_verb] (dotted "
                   "snake_case, >= 2 segments)");
        } else if (in_layered_src_ &&
                   catalogs_.documented_names.count(name) == 0) {
          Emit(line, lineno, kRuleMetricName,
               "metric '" + name +
                   "' is not documented in docs/observability.md; the "
                   "--metrics-json schema and dashboards track that "
                   "list");
        }
      }
    }
  }

  // Accumulates evidence for the file-level shard-status-propagated
  // rule: a file that consumes ShardOutcome values but never reads
  // their `.status` field would silently treat a failed shard as an
  // empty-but-successful one.
  void NoteShardTokens(const std::string& line, int lineno) {
    const std::string kType = "ShardOutcome";
    size_t pos = 0;
    while ((pos = line.find(kType, pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
      const size_t after = pos + kType.size();
      const bool right_ok =
          after >= line.size() || !IsWordChar(line[after]);
      if (left_ok && right_ok) {
        if (shard_mention_line_ == 0) {
          shard_mention_line_ = lineno;
          shard_mention_text_ = line;
        }
        // The type's own definition file (and forward declarations)
        // cannot meaningfully "check" the field; exempt it.
        if (pos >= 7 && line.compare(pos - 7, 7, "struct ") == 0) {
          shard_defines_outcome_ = true;
        }
      }
      pos = after;
    }
    for (const char* access : {".status", "->status"}) {
      size_t hit = 0;
      const std::string needle = access;
      while ((hit = line.find(needle, hit)) != std::string::npos) {
        const size_t end = hit + needle.size();
        if (end >= line.size() || !IsWordChar(line[end])) {
          shard_status_read_ = true;
          return;
        }
        hit = end;
      }
    }
  }

  void CheckShardStatus() {
    if (!in_layered_src_ || shard_mention_line_ == 0) return;
    if (shard_defines_outcome_ || shard_status_read_) return;
    Emit(shard_mention_text_, shard_mention_line_, kRuleShardStatus,
         "this file consumes ShardOutcome but never reads `.status`; a "
         "failed shard would be indistinguishable from an empty "
         "successful one — check or propagate outcome.status before "
         "using the patterns");
  }

  void CheckStageNames(const std::string& line, int lineno) {
    if (path_ != "src/obs/stage.h") return;
    size_t pos = line.find("kStage");
    if (pos == std::string::npos) return;
    size_t eq = line.find('=', pos);
    if (eq == std::string::npos) return;
    size_t p = SkipSpaces(line, eq + 1);
    std::string value;
    size_t end = 0;
    if (!ParseStringLiteral(line, p, &value, &end)) return;
    if (catalogs_.documented_names.count(value) == 0) {
      Emit(line, lineno, kRuleStageDocumented,
           "stage '" + value +
               "' is not in the stage table of docs/observability.md; "
               "every kStage* constant must be documented there");
    }
  }

  std::string path_;
  const Catalogs& catalogs_;
  std::vector<Diagnostic>* out_;
  SuppressionLog* log_ = nullptr;
  bool in_layered_src_ = false;
  int source_layer_ = -1;
  // shard-status-propagated accumulator state.
  int shard_mention_line_ = 0;
  std::string shard_mention_text_;
  bool shard_defines_outcome_ = false;
  bool shard_status_read_ = false;
};

}  // namespace

bool IsDottedName(const std::string& name) {
  size_t start = 0;
  int segments = 0;
  while (true) {
    size_t dot = name.find('.', start);
    const std::string segment =
        dot == std::string::npos ? name.substr(start)
                                 : name.substr(start, dot - start);
    if (!IsNameSegment(segment)) return false;
    ++segments;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return segments >= 2;
}

int LayerOf(const std::string& logical_path) {
  if (StartsWith(logical_path, "src/")) {
    const std::string rest = logical_path.substr(4);
    int pinned = PinnedRecoveryIoLayer(rest);
    if (pinned < 0) pinned = PinnedKernelLayer(rest);
    if (pinned < 0) pinned = PinnedWorkerLayer(rest);
    if (pinned >= 0) return pinned;
    size_t slash = rest.find('/');
    if (slash == std::string::npos) return -1;
    auto it = SrcDirLayers().find(rest.substr(0, slash));
    return it == SrcDirLayers().end() ? -1 : it->second;
  }
  if (StartsWith(logical_path, "tools/") ||
      StartsWith(logical_path, "bench/") ||
      StartsWith(logical_path, "examples/")) {
    return 80;
  }
  if (StartsWith(logical_path, "tests/testing/")) return 85;
  if (StartsWith(logical_path, "tests/")) return 90;
  return -1;
}

struct TreeLinter::Impl {
  explicit Impl(const Catalogs& catalogs) : catalogs(catalogs) {}

  const Catalogs& catalogs;
  SuppressionLog log;
  std::vector<Diagnostic> diags;
  SymbolIndex index;
};

TreeLinter::TreeLinter(const Catalogs& catalogs)
    : impl_(std::make_unique<Impl>(catalogs)) {}

TreeLinter::~TreeLinter() = default;

void TreeLinter::AddFile(const std::string& logical_path,
                         const std::string& content) {
  const std::string path = EffectivePath(logical_path, content);
  FileLinter linter(path, impl_->catalogs, &impl_->diags, &impl_->log);
  linter.Lint(content);
  impl_->index.AddFile(path, content);
}

std::vector<Diagnostic> TreeLinter::Run() {
  impl_->index.Build();
  // Line text per file, for suppression checks on lock findings.
  auto line_text = [this](const std::string& file,
                          int lineno) -> const std::string* {
    for (const IndexedFile& f : impl_->index.files()) {
      if (f.path != file) continue;
      if (lineno >= 1 &&
          static_cast<size_t>(lineno) <= f.lines.size()) {
        return &f.lines[lineno - 1];
      }
      return nullptr;
    }
    return nullptr;
  };
  RunLockPasses(
      impl_->index, impl_->catalogs,
      [&](const std::string& file, int line, const char* rule,
          const std::string& message) {
        const std::string* text = line_text(file, line);
        if (text != nullptr && HasAllow(*text, rule)) {
          impl_->log.used.insert(SuppressionLog::Key(file, line, rule));
          return;
        }
        impl_->diags.push_back(Diagnostic{file, line, rule, message});
      });
  // Stale-suppression pass: every well-formed allow must have earned
  // its keep in one of the passes above. (An allow of
  // stale-suppression itself is never honoured — the inventory check
  // must not be suppressible.)
  for (const IndexedFile& file : impl_->index.files()) {
    for (size_t i = 0; i < file.lines.size(); ++i) {
      const int lineno = static_cast<int>(i) + 1;
      for (const std::string& rule : AllowedRulesOnLine(file.lines[i])) {
        if (impl_->log.used.count(
                SuppressionLog::Key(file.path, lineno, rule)) > 0) {
          continue;
        }
        impl_->diags.push_back(Diagnostic{
            file.path, lineno, kRuleStaleSuppression,
            "lint:allow(" + rule +
                ") suppresses nothing: no '" + rule +
                "' finding fires on this line any more — delete the "
                "stale allow so it cannot mask a future regression"});
      }
    }
  }
  std::sort(impl_->diags.begin(), impl_->diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return std::move(impl_->diags);
}

void LintFile(const std::string& logical_path, const std::string& content,
              const Catalogs& catalogs, std::vector<Diagnostic>* out) {
  TreeLinter linter(catalogs);
  linter.AddFile(logical_path, content);
  std::vector<Diagnostic> diags = linter.Run();
  out->insert(out->end(), diags.begin(), diags.end());
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// GitHub workflow commands percent-encode their message payload;
// property values additionally escape ':' and ','.
std::string GithubEscapeData(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '%') out += "%25";
    else if (c == '\r') out += "%0D";
    else if (c == '\n') out += "%0A";
    else out += c;
  }
  return out;
}

std::string GithubEscapeProperty(const std::string& s) {
  std::string out;
  for (char c : GithubEscapeData(s)) {
    if (c == ':') out += "%3A";
    else if (c == ',') out += "%2C";
    else out += c;
  }
  return out;
}

}  // namespace

std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       size_t files_linted) {
  std::string out = "{\n  \"files\": " + std::to_string(files_linted) +
                    ",\n  \"findings\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"" + JsonEscape(d.file) +
           "\", \"line\": " + std::to_string(d.line) + ", \"rule\": \"" +
           JsonEscape(d.rule) + "\", \"message\": \"" +
           JsonEscape(d.message) + "\"}";
  }
  out += diagnostics.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string RenderGitHub(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += "::error file=" + GithubEscapeProperty(d.file) +
           ",line=" + std::to_string(d.line) +
           ",title=" + GithubEscapeProperty("divexp-lint " + d.rule) +
           "::" + GithubEscapeData("[" + d.rule + "] " + d.message) +
           "\n";
  }
  return out;
}

bool LoadCatalogs(const std::string& root, Catalogs* catalogs,
                  std::string* error) {
  const std::string recovery_md =
      ReadFileOrEmpty(fs::path(root) / "docs" / "recovery.md");
  const std::string observability_md =
      ReadFileOrEmpty(fs::path(root) / "docs" / "observability.md");
  if (recovery_md.empty() || observability_md.empty()) {
    *error = "missing docs/recovery.md or docs/observability.md under " +
             root;
    return false;
  }

  // Fail-point catalog: backticked names in the first cell of the
  // table under "### Fail-point catalog".
  bool in_catalog = false;
  for (const std::string& line : SplitLines(recovery_md)) {
    if (line.find("Fail-point catalog") != std::string::npos) {
      in_catalog = true;
      continue;
    }
    if (in_catalog && StartsWith(line, "#")) in_catalog = false;
    if (!in_catalog || line.empty() || line[0] != '|') continue;
    size_t cell_end = line.find('|', 1);
    if (cell_end == std::string::npos) continue;
    for (const std::string& token :
         BacktickTokens(line.substr(0, cell_end))) {
      if (IsDottedName(token)) catalogs->failpoints.insert(token);
    }
  }

  // Documented dotted names (metrics and stages) from both docs;
  // `family.<name>` placeholders become dynamic prefixes.
  for (const std::string* doc : {&observability_md, &recovery_md}) {
    for (const std::string& line : SplitLines(*doc)) {
      for (const std::string& token : BacktickTokens(line)) {
        if (IsDottedName(token)) {
          catalogs->documented_names.insert(token);
          continue;
        }
        size_t angle = token.find('<');
        if (angle != std::string::npos && angle > 0 &&
            token[angle - 1] == '.') {
          const std::string prefix = token.substr(0, angle);
          if (IsDottedName(prefix + "x")) {
            catalogs->dynamic_prefixes.insert(prefix);
          }
        }
      }
    }
  }

  // Status/Result-returning function names from every header in src/
  // and tools/ (declaration scan; good enough to recognise a silenced
  // call by its callee name).
  static const std::regex kStatusDecl(
      R"((?:^|[^\w:])(?:Status|Result<[^;{}()]*>)\s+([A-Za-z_]\w*)\s*\()");
  for (const char* dir : {"src", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".h") continue;
      const std::string text = ReadFileOrEmpty(entry.path());
      for (std::sregex_iterator it(text.begin(), text.end(), kStatusDecl),
           end;
           it != end; ++it) {
        catalogs->status_functions.insert((*it)[1].str());
      }
    }
  }

  // Canonical lock hierarchy: the table under "## Canonical lock
  // hierarchy" in docs/static-analysis.md. Columns:
  // | Rank | Lock | Declared in | May block |
  const std::string static_analysis_md =
      ReadFileOrEmpty(fs::path(root) / "docs" / "static-analysis.md");
  if (static_analysis_md.empty()) {
    *error = "missing docs/static-analysis.md under " + root;
    return false;
  }
  bool in_hierarchy = false;
  for (const std::string& line : SplitLines(static_analysis_md)) {
    if (line.find("Canonical lock hierarchy") != std::string::npos) {
      in_hierarchy = true;
      continue;
    }
    if (in_hierarchy && StartsWith(line, "#")) in_hierarchy = false;
    if (!in_hierarchy || line.empty() || line[0] != '|') continue;
    // Split into cells.
    std::vector<std::string> cells;
    size_t pos = 1;
    while (pos < line.size()) {
      size_t next = line.find('|', pos);
      if (next == std::string::npos) break;
      cells.push_back(line.substr(pos, next - pos));
      pos = next + 1;
    }
    if (cells.size() < 3) continue;
    // Rank cell must be an integer (skips the header and |---| rows).
    const std::string& rank_cell = cells[0];
    size_t digit = rank_cell.find_first_of("0123456789");
    if (digit == std::string::npos) continue;
    bool all_digits = true;
    int rank = 0;
    for (size_t i = digit; i < rank_cell.size(); ++i) {
      char c = rank_cell[i];
      if (c >= '0' && c <= '9') {
        rank = rank * 10 + (c - '0');
      } else if (c == ' ') {
        break;
      } else {
        all_digits = false;
        break;
      }
    }
    if (!all_digits) continue;
    const std::vector<std::string> lock_tokens = BacktickTokens(cells[1]);
    if (lock_tokens.empty()) continue;
    const std::string& lock = lock_tokens[0];
    catalogs->lock_ranks[lock] = rank;
    if (cells.size() >= 4 &&
        cells[3].find("yes") != std::string::npos) {
      catalogs->lock_may_block.insert(lock);
    }
  }

  if (catalogs->failpoints.empty()) {
    *error = "no fail-point catalog parsed from docs/recovery.md";
    return false;
  }
  if (catalogs->documented_names.empty()) {
    *error = "no documented metric/stage names parsed from docs/";
    return false;
  }
  if (catalogs->status_functions.empty()) {
    *error = "no Status/Result-returning declarations found under src/";
    return false;
  }
  if (catalogs->lock_ranks.empty()) {
    *error =
        "no lock hierarchy table parsed from docs/static-analysis.md "
        "(section 'Canonical lock hierarchy')";
    return false;
  }
  return true;
}

}  // namespace lint
}  // namespace divexp
