#include "tools/cli_serve.h"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "serve/artifact.h"

namespace divexp {
namespace cli {
namespace {

Result<long> ParseInt(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || value.empty()) {
    return Status::InvalidArgument("bad value for " + flag + ": '" + value +
                                   "'");
  }
  return v;
}

}  // namespace

Result<ServeOptions> ParseServeOptions(const std::vector<std::string>& args) {
  ServeOptions opts;
  std::vector<std::string> expanded;
  expanded.reserve(args.size());
  for (const std::string& arg : args) {
    size_t eq;
    if (arg.rfind("--", 0) == 0 &&
        (eq = arg.find('=')) != std::string::npos) {
      expanded.push_back(arg.substr(0, eq));
      expanded.push_back(arg.substr(eq + 1));
    } else {
      expanded.push_back(arg);
    }
  }
  for (size_t i = 0; i < expanded.size(); ++i) {
    const std::string& arg = expanded[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= expanded.size()) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return expanded[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opts.show_help = true;
    } else if (arg == "--table") {
      DIVEXP_ASSIGN_OR_RETURN(opts.table_path, next());
    } else if (arg == "--socket") {
      DIVEXP_ASSIGN_OR_RETURN(opts.socket_path, next());
    } else if (arg == "--threads") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long t, ParseInt(arg, v));
      if (t < 1 || t > 256) {
        return Status::InvalidArgument("--threads must be in [1, 256]");
      }
      opts.num_threads = static_cast<size_t>(t);
    } else if (arg == "--verify") {
      opts.verify = true;
    } else if (arg == "--deadline-ms") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long d, ParseInt(arg, v));
      if (d < 0) {
        return Status::InvalidArgument("--deadline-ms must be >= 0");
      }
      opts.service.limits.deadline_ms = static_cast<int64_t>(d);
    } else if (arg == "--max-memory-mb") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long m, ParseInt(arg, v));
      if (m < 0) {
        return Status::InvalidArgument("--max-memory-mb must be >= 0");
      }
      opts.service.limits.max_memory_mb = static_cast<uint64_t>(m);
    } else if (arg == "--cache-mb") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long m, ParseInt(arg, v));
      if (m < 0) {
        return Status::InvalidArgument("--cache-mb must be >= 0");
      }
      opts.service.cache.capacity_bytes =
          static_cast<size_t>(m) << 20;
    } else if (arg == "--no-cache") {
      opts.service.cache_enabled = false;
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  if (!opts.show_help && opts.table_path.empty()) {
    return Status::InvalidArgument("serve requires --table");
  }
  return opts;
}

std::string ServeUsageString() {
  return
      "divexp serve — query a pattern-table artifact interactively or\n"
      "as a daemon\n"
      "\n"
      "usage: divexp serve --table FILE [options]\n"
      "\n"
      "  --table FILE       pattern-table artifact (divexp\n"
      "                     --save-artifact) or snapshot (--export-\n"
      "                     snapshot); artifacts are mmapped zero-copy\n"
      "  --socket PATH      listen on a unix socket instead of the\n"
      "                     stdin/stdout REPL; serves until stdin EOF\n"
      "  --threads N        server threads sharing the mapping\n"
      "                     (default: 4)\n"
      "  --verify           fully validate the artifact (all section\n"
      "                     CRCs + fingerprint) before serving\n"
      "  --deadline-ms MS   per-query wall-clock budget (0 = none)\n"
      "  --max-memory-mb M  per-query tracked-memory budget\n"
      "  --cache-mb M       result cache capacity (default 64,\n"
      "                     0 disables)\n"
      "  --no-cache         disable the result cache\n"
      "\n"
      "protocol (one request per line, one JSON response per line):\n"
      "  topk [k=10] [key=divergence|significance|support]\n"
      "       [order=desc|asc] [min_support=S] [min_len=N] [max_len=N]\n"
      "  browse items=attr=val[,attr=val...]\n"
      "  shapley items=attr=val[,attr=val...]\n"
      "  corrective [k=10] [min_factor=F]\n"
      "  stats\n"
      "  quit\n";
}

Status RunServe(const ServeOptions& opts, std::istream& in,
                std::ostream& out, std::ostream& log) {
  const serve::ArtifactValidation validation =
      opts.verify ? serve::ArtifactValidation::kFull
                  : serve::ArtifactValidation::kHeader;
  DIVEXP_ASSIGN_OR_RETURN(serve::ServingTable table,
                          serve::OpenServingTable(opts.table_path,
                                                  validation));
  const serve::TableView& view = table.view();
  log << "serving " << (view.size() - 1) << " patterns from "
      << opts.table_path << " ("
      << (table.artifact != nullptr ? "mmap" : "eager") << " backing)\n";

  serve::QueryService service(&table, opts.service);
  if (opts.socket_path.empty()) {
    serve::ServeLoop(service, in, out);
    return Status::OK();
  }

  serve::SocketServer server(&service);
  DIVEXP_RETURN_NOT_OK(server.Start(opts.socket_path, opts.num_threads));
  log << "listening on " << opts.socket_path << " with "
      << opts.num_threads << " thread(s); EOF on stdin stops\n";
  // Block until the controlling stream closes, then shut down cleanly.
  std::string line;
  while (std::getline(in, line)) {
    if (line == "quit") break;
  }
  server.Stop();
  return Status::OK();
}

}  // namespace cli
}  // namespace divexp
