#include "tools/cli_serve.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <istream>
#include <ostream>

#include "serve/artifact.h"

namespace divexp {
namespace cli {
namespace {

Result<long> ParseInt(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || value.empty()) {
    return Status::InvalidArgument("bad value for " + flag + ": '" + value +
                                   "'");
  }
  return v;
}

// Self-pipe for SIGTERM/SIGINT: the handler may only make
// async-signal-safe calls, so it writes one byte here and the daemon's
// wait loop polls the read end alongside stdin.
volatile int g_signal_pipe_write = -1;

extern "C" void HandleShutdownSignal(int /*signo*/) {
  const int fd = g_signal_pipe_write;
  if (fd < 0) return;
  const char byte = 1;
  const int saved_errno = errno;
  [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  errno = saved_errno;
}

/// Blocks until the daemon should shut down: `in` reaches EOF or sends
/// a `quit` line, or — when `in` is the process's real stdin — a
/// SIGTERM/SIGINT arrives. Signal wiring only engages for std::cin:
/// unit tests drive shutdown through stream EOF instead.
void WaitForShutdown(std::istream& in, std::ostream& log) {
  if (&in != &std::cin) {
    std::string line;
    while (std::getline(in, line)) {
      if (line == "quit") break;
    }
    return;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    // No self-pipe: fall back to the plain blocking loop; SIGTERM then
    // takes the default (non-draining) disposition.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line == "quit") break;
    }
    return;
  }
  g_signal_pipe_write = pipe_fds[1];
  struct sigaction action {};
  action.sa_handler = HandleShutdownSignal;
  ::sigemptyset(&action.sa_mask);
  struct sigaction old_term {}, old_int {};
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);

  std::string pending;
  bool done = false;
  while (!done) {
    pollfd pfds[2] = {};
    pfds[0].fd = STDIN_FILENO;
    pfds[0].events = POLLIN;
    pfds[1].fd = pipe_fds[0];
    pfds[1].events = POLLIN;
    const int pr = ::poll(pfds, 2, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;  // the handler ran; loop re-polls
      break;
    }
    if (pfds[1].revents != 0) {
      log << "shutdown signal received; draining connections\n";
      break;
    }
    if (pfds[0].revents != 0) {
      char buf[256];
      ssize_t n;
      do {
        n = ::read(STDIN_FILENO, buf, sizeof(buf));
      } while (n < 0 && errno == EINTR);
      if (n <= 0) break;  // stdin EOF stops the daemon
      pending.append(buf, static_cast<size_t>(n));
      size_t newline;
      while ((newline = pending.find('\n')) != std::string::npos) {
        std::string line = pending.substr(0, newline);
        pending.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line == "quit") {
          done = true;
          break;
        }
      }
    }
  }

  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  g_signal_pipe_write = -1;
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

}  // namespace

Result<ServeOptions> ParseServeOptions(const std::vector<std::string>& args) {
  ServeOptions opts;
  std::vector<std::string> expanded;
  expanded.reserve(args.size());
  for (const std::string& arg : args) {
    size_t eq;
    if (arg.rfind("--", 0) == 0 &&
        (eq = arg.find('=')) != std::string::npos) {
      expanded.push_back(arg.substr(0, eq));
      expanded.push_back(arg.substr(eq + 1));
    } else {
      expanded.push_back(arg);
    }
  }
  for (size_t i = 0; i < expanded.size(); ++i) {
    const std::string& arg = expanded[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= expanded.size()) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return expanded[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opts.show_help = true;
    } else if (arg == "--table") {
      DIVEXP_ASSIGN_OR_RETURN(opts.table_path, next());
    } else if (arg == "--socket") {
      DIVEXP_ASSIGN_OR_RETURN(opts.socket_path, next());
    } else if (arg == "--threads") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long t, ParseInt(arg, v));
      if (t < 1 || t > 256) {
        return Status::InvalidArgument("--threads must be in [1, 256]");
      }
      opts.num_threads = static_cast<size_t>(t);
    } else if (arg == "--verify") {
      opts.verify = true;
    } else if (arg == "--deadline-ms") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long d, ParseInt(arg, v));
      if (d < 0) {
        return Status::InvalidArgument("--deadline-ms must be >= 0");
      }
      opts.service.limits.deadline_ms = static_cast<int64_t>(d);
    } else if (arg == "--max-memory-mb") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long m, ParseInt(arg, v));
      if (m < 0) {
        return Status::InvalidArgument("--max-memory-mb must be >= 0");
      }
      opts.service.limits.max_memory_mb = static_cast<uint64_t>(m);
    } else if (arg == "--cache-mb") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long m, ParseInt(arg, v));
      if (m < 0) {
        return Status::InvalidArgument("--cache-mb must be >= 0");
      }
      opts.service.cache.capacity_bytes =
          static_cast<size_t>(m) << 20;
    } else if (arg == "--no-cache") {
      opts.service.cache_enabled = false;
    } else if (arg == "--idle-timeout-ms") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long t, ParseInt(arg, v));
      if (t < 0) {
        return Status::InvalidArgument("--idle-timeout-ms must be >= 0");
      }
      opts.socket.idle_timeout_ms = static_cast<uint64_t>(t);
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  if (!opts.show_help && opts.table_path.empty()) {
    return Status::InvalidArgument("serve requires --table");
  }
  return opts;
}

std::string ServeUsageString() {
  return
      "divexp serve — query a pattern-table artifact interactively or\n"
      "as a daemon\n"
      "\n"
      "usage: divexp serve --table FILE [options]\n"
      "\n"
      "  --table FILE       pattern-table artifact (divexp\n"
      "                     --save-artifact) or snapshot (--export-\n"
      "                     snapshot); artifacts are mmapped zero-copy\n"
      "  --socket PATH      listen on a unix socket instead of the\n"
      "                     stdin/stdout REPL; serves until stdin EOF\n"
      "  --threads N        server threads sharing the mapping\n"
      "                     (default: 4)\n"
      "  --verify           fully validate the artifact (all section\n"
      "                     CRCs + fingerprint) before serving\n"
      "  --deadline-ms MS   per-query wall-clock budget (0 = none)\n"
      "  --max-memory-mb M  per-query tracked-memory budget\n"
      "  --cache-mb M       result cache capacity (default 64,\n"
      "                     0 disables)\n"
      "  --no-cache         disable the result cache\n"
      "  --idle-timeout-ms MS  disconnect socket clients idle for MS\n"
      "                     (default 60000, 0 = never; counted in\n"
      "                     serve.idle_disconnects)\n"
      "\n"
      "protocol (one request per line, one JSON response per line):\n"
      "  topk [k=10] [key=divergence|significance|support]\n"
      "       [order=desc|asc] [min_support=S] [min_len=N] [max_len=N]\n"
      "  browse items=attr=val[,attr=val...]\n"
      "  shapley items=attr=val[,attr=val...]\n"
      "  corrective [k=10] [min_factor=F]\n"
      "  stats\n"
      "  quit\n";
}

Status RunServe(const ServeOptions& opts, std::istream& in,
                std::ostream& out, std::ostream& log) {
  const serve::ArtifactValidation validation =
      opts.verify ? serve::ArtifactValidation::kFull
                  : serve::ArtifactValidation::kHeader;
  DIVEXP_ASSIGN_OR_RETURN(serve::ServingTable table,
                          serve::OpenServingTable(opts.table_path,
                                                  validation));
  const serve::TableView& view = table.view();
  log << "serving " << (view.size() - 1) << " patterns from "
      << opts.table_path << " ("
      << (table.artifact != nullptr ? "mmap" : "eager") << " backing)\n";

  serve::QueryService service(&table, opts.service);
  if (opts.socket_path.empty()) {
    serve::ServeLoop(service, in, out);
    return Status::OK();
  }

  serve::SocketServer server(&service, opts.socket);
  DIVEXP_RETURN_NOT_OK(server.Start(opts.socket_path, opts.num_threads));
  log << "listening on " << opts.socket_path << " with "
      << opts.num_threads << " thread(s); EOF on stdin, SIGTERM, or "
      << "SIGINT stops\n";
  // Block until the controlling stream closes or a shutdown signal
  // arrives, then drain: in-flight responses finish before the
  // listener goes away.
  WaitForShutdown(in, log);
  server.Stop(serve::SocketServer::StopMode::kDrain);
  return Status::OK();
}

}  // namespace cli
}  // namespace divexp
