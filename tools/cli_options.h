// Command-line parsing for the divexp CLI, kept separate from main()
// so it can be unit tested.
#ifndef DIVEXP_TOOLS_CLI_OPTIONS_H_
#define DIVEXP_TOOLS_CLI_OPTIONS_H_

#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/outcome.h"
#include "fpm/miner.h"
#include "shard/shard.h"
#include "util/status.h"

namespace divexp {
namespace cli {

/// Parsed CLI configuration.
struct CliOptions {
  std::string csv_path;
  std::string pred_column = "prediction";
  std::string truth_column = "label";
  Metric metric = Metric::kFalsePositiveRate;
  double min_support = 0.05;
  int bins = 3;             ///< quantile bins for continuous attributes
  size_t top_k = 10;
  double epsilon = -1.0;    ///< redundancy pruning; < 0 disables
  bool show_global = false;
  bool show_corrective = false;
  bool show_shapley = false;
  /// "attr=value,attr=value" — render the lattice below this pattern.
  std::string lattice_pattern;
  /// Write the full pattern table as CSV to this path.
  std::string export_path;
  /// Write the table as a zero-copy serving artifact to this path
  /// (opened by `divexp serve` / divexp-dump-table).
  std::string artifact_path;
  /// Write a composed markdown audit report to this path.
  std::string report_path;
  /// Print all 12 metrics for the top patterns (multi-metric run).
  bool multi = false;
  /// Mining backend ("auto" defers to the shape-based dispatcher).
  MinerKind miner = MinerKind::kFpGrowth;
  /// Hot-loop kernel implementation (auto | scalar | simd).
  fpm::KernelKind kernel = fpm::KernelKind::kAuto;
  /// Worker threads for mining.
  size_t num_threads = 1;
  /// Resource limits for the exploration run (0 = unlimited).
  int64_t deadline_ms = 0;
  uint64_t max_patterns = 0;
  uint64_t max_memory_mb = 0;
  /// What to do when a limit trips: fail, truncate or escalate.
  LimitAction on_limit = LimitAction::kFail;
  /// Write per-stage metrics + registry snapshot as JSON to this path.
  std::string metrics_json_path;
  /// Crash recovery: snapshot directory (empty = no checkpointing),
  /// minimum milliseconds between snapshots, and whether to restore
  /// completed mining units from an existing snapshot.
  std::string checkpoint_dir;
  uint64_t checkpoint_every_ms = 0;
  bool resume = false;
  /// Sharded exploration: horizontal shards to split the dataset into
  /// (1 = monolithic), shards mined concurrently, retries per shard,
  /// and what to do with a shard whose retries are exhausted.
  size_t shards = 1;
  size_t shard_parallelism = 1;
  size_t shard_retries = 3;
  shard::ShardFailurePolicy on_shard_failure =
      shard::ShardFailurePolicy::kFail;
  /// Where shard attempts run: in worker threads (default) or in
  /// supervised `divexp shard-worker` subprocesses.
  shard::ShardIsolation shard_isolation = shard::ShardIsolation::kThread;
  /// Process-isolation supervision: kill a worker silent this long.
  uint64_t shard_heartbeat_timeout_ms = 10000;
  /// Optional wall-clock cap per process-isolated attempt (0 = none).
  uint64_t shard_watchdog_ms = 0;
  /// Deterministic fault-injection schedule, e.g.
  /// "io.atomic.mid_write@2:abort,fpm.fpgrowth.grow@5:throw".
  /// Requires a failpoints-enabled build (DIVEXP_ENABLE_FAILPOINTS).
  std::string failpoints;
  /// Enable tracing spans and print the stage table + span tree to
  /// stderr at the end of the run.
  bool trace = false;
  bool show_help = false;
};

/// Parses a metric name ("FPR", "FNR", "ER", "ACC", ...).
Result<Metric> ParseMetric(const std::string& name);

/// Parses a miner name ("fpgrowth", "apriori", "eclat", "auto").
Result<MinerKind> ParseMinerKind(const std::string& name);

/// Parses a kernel name ("auto", "scalar", "simd").
Result<fpm::KernelKind> ParseKernelKind(const std::string& name);

/// Parses a limit action ("fail", "truncate", "escalate").
Result<LimitAction> ParseLimitAction(const std::string& name);

/// Parses argv (excluding argv[0]). Returns InvalidArgument with a
/// usage-oriented message on bad input.
Result<CliOptions> ParseCliOptions(const std::vector<std::string>& args);

/// Usage text.
std::string UsageString();

/// Splits "attr=value,attr=value" into pairs.
Result<std::vector<std::pair<std::string, std::string>>> ParsePattern(
    const std::string& text);

}  // namespace cli
}  // namespace divexp

#endif  // DIVEXP_TOOLS_CLI_OPTIONS_H_
