// Seeded lock-order inversion for the deadlock detector's CI gate.
//
// Takes two locks AB on one code path and BA on another, in a single
// thread — a latent deadlock that never wedges by itself, which is
// exactly the class of bug the detector must catch without the
// unlucky interleaving. The contract, checked by CI:
//
//   detector ON  (-DDIVEXP_DEADLOCK_DETECTOR=ON): the second ordering
//     aborts with "lock-order inversion" -> nonzero exit;
//   detector OFF (any release build): both orderings are just nested
//     locks that release cleanly -> exit 0, proving the hooks are
//     compiled out rather than merely quiet.
//
// The deliberate inversion below is also a divexp-lint fixture in
// production code: the closing edge carries a vetted suppression,
// which doubles as a live use of lint:allow for the
// stale-suppression pass.
#include <cstdio>

#include "util/deadlock.h"
#include "util/mutex.h"

namespace {

divexp::Mutex g_a;
divexp::Mutex g_b;

void LockAThenB() {
  divexp::MutexLock la(g_a);
  divexp::MutexLock lb(g_b);
}

void LockBThenA() {
  divexp::MutexLock lb(g_b);
  divexp::MutexLock la(g_a);  // lint:allow(lock-order-cycle): seeded inversion; CI requires the detector to abort here
}

}  // namespace

int main() {
  std::fprintf(stderr, "deadlock-selfcheck: detector %s\n",
               divexp::deadlock::kDeadlockDetectorEnabled ? "ON" : "OFF");
  LockAThenB();
  // With the detector on, this call aborts before returning.
  LockBThenA();
  if (divexp::deadlock::kDeadlockDetectorEnabled) {
    std::fprintf(stderr,
                 "deadlock-selfcheck: FAIL — inversion not detected\n");
    return 1;
  }
  std::fprintf(stderr,
               "deadlock-selfcheck: OK — detector compiled out, nested "
               "locking ran clean\n");
  return 0;
}
