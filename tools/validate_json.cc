// Schema validator for the observability JSON artifacts: the CLI's
// --metrics-json output and the benchmarks' BENCH_*.json records. CI
// runs this after the bench smoke step; exits non-zero with the first
// violated rule on stderr.
//
// usage: divexp-validate-json --kind=metrics|bench FILE [STAGE...]
//   STAGE... (metrics only): stage names that must be present with
//   wall_ms > 0 (e.g. load.csv mine.grow explore.divergence).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

int main(int argc, char** argv) {
  std::string kind;
  std::string path;
  std::vector<std::string> required_stages;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--kind=", 0) == 0) {
      kind = arg.substr(7);
    } else if (path.empty()) {
      path = arg;
    } else {
      required_stages.push_back(arg);
    }
  }
  if ((kind != "metrics" && kind != "bench") || path.empty()) {
    std::fprintf(
        stderr,
        "usage: divexp-validate-json --kind=metrics|bench FILE "
        "[REQUIRED_STAGE...]\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const divexp::Status status =
      kind == "metrics"
          ? divexp::obs::ValidateMetricsJson(buf.str(), required_stages)
          : divexp::obs::ValidateBenchJson(buf.str());
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK (%s schema)\n", path.c_str(), kind.c_str());
  return 0;
}
