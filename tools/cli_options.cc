#include "tools/cli_options.h"

#include <cstdlib>

#include "util/string_util.h"

namespace divexp {
namespace cli {
namespace {

Result<double> ParseDouble(const std::string& flag,
                           const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || value.empty()) {
    return Status::InvalidArgument("bad value for " + flag + ": '" +
                                   value + "'");
  }
  return v;
}

Result<long> ParseInt(const std::string& flag, const std::string& value) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || value.empty()) {
    return Status::InvalidArgument("bad value for " + flag + ": '" +
                                   value + "'");
  }
  return v;
}

}  // namespace

Result<Metric> ParseMetric(const std::string& name) {
  static const std::pair<const char*, Metric> kNames[] = {
      {"FPR", Metric::kFalsePositiveRate},
      {"FNR", Metric::kFalseNegativeRate},
      {"ER", Metric::kErrorRate},
      {"ACC", Metric::kAccuracy},
      {"TPR", Metric::kTruePositiveRate},
      {"TNR", Metric::kTrueNegativeRate},
      {"PPV", Metric::kPositivePredictiveValue},
      {"FDR", Metric::kFalseDiscoveryRate},
      {"FOR", Metric::kFalseOmissionRate},
      {"NPV", Metric::kNegativePredictiveValue},
      {"POS", Metric::kPositiveRate},
      {"PPOS", Metric::kPredictedPositiveRate},
  };
  for (const auto& [label, metric] : kNames) {
    if (name == label) return metric;
  }
  return Status::InvalidArgument(
      "unknown metric '" + name +
      "' (use FPR, FNR, ER, ACC, TPR, TNR, PPV, FDR, FOR, NPV, POS, "
      "PPOS)");
}

Result<MinerKind> ParseMinerKind(const std::string& name) {
  for (MinerKind kind :
       {MinerKind::kFpGrowth, MinerKind::kApriori, MinerKind::kEclat,
        MinerKind::kAuto}) {
    if (name == MinerKindName(kind)) return kind;
  }
  return Status::InvalidArgument(
      "unknown miner '" + name +
      "' (use fpgrowth, apriori, eclat, auto)");
}

Result<fpm::KernelKind> ParseKernelKind(const std::string& name) {
  for (fpm::KernelKind kind :
       {fpm::KernelKind::kAuto, fpm::KernelKind::kScalar,
        fpm::KernelKind::kSimd}) {
    if (name == fpm::KernelKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown kernel '" + name +
                                 "' (use auto, scalar, simd)");
}

Result<LimitAction> ParseLimitAction(const std::string& name) {
  for (LimitAction action : {LimitAction::kFail, LimitAction::kTruncate,
                             LimitAction::kEscalate}) {
    if (name == LimitActionName(action)) return action;
  }
  return Status::InvalidArgument(
      "unknown limit action '" + name +
      "' (use fail, truncate, escalate)");
}

Result<CliOptions> ParseCliOptions(const std::vector<std::string>& args) {
  CliOptions opts;
  // Accept --flag=value as well as --flag value: split at the first '='
  // of any token that starts with "--". Values containing '=' (e.g.
  // --lattice "a=v") arrive as their own tokens and are not split.
  std::vector<std::string> expanded;
  expanded.reserve(args.size());
  for (const std::string& arg : args) {
    size_t eq;
    if (arg.rfind("--", 0) == 0 &&
        (eq = arg.find('=')) != std::string::npos) {
      expanded.push_back(arg.substr(0, eq));
      expanded.push_back(arg.substr(eq + 1));
    } else {
      expanded.push_back(arg);
    }
  }
  for (size_t i = 0; i < expanded.size(); ++i) {
    const std::string& arg = expanded[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= expanded.size()) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return expanded[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opts.show_help = true;
    } else if (arg == "--csv") {
      DIVEXP_ASSIGN_OR_RETURN(opts.csv_path, next());
    } else if (arg == "--pred-col") {
      DIVEXP_ASSIGN_OR_RETURN(opts.pred_column, next());
    } else if (arg == "--truth-col") {
      DIVEXP_ASSIGN_OR_RETURN(opts.truth_column, next());
    } else if (arg == "--metric") {
      DIVEXP_ASSIGN_OR_RETURN(std::string name, next());
      DIVEXP_ASSIGN_OR_RETURN(opts.metric, ParseMetric(name));
    } else if (arg == "--support") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(opts.min_support, ParseDouble(arg, v));
      if (opts.min_support <= 0.0 || opts.min_support > 1.0) {
        return Status::InvalidArgument("--support must be in (0, 1]");
      }
    } else if (arg == "--bins") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long bins, ParseInt(arg, v));
      if (bins < 2 || bins > 64) {
        return Status::InvalidArgument("--bins must be in [2, 64]");
      }
      opts.bins = static_cast<int>(bins);
    } else if (arg == "--top") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long top, ParseInt(arg, v));
      if (top < 1) return Status::InvalidArgument("--top must be >= 1");
      opts.top_k = static_cast<size_t>(top);
    } else if (arg == "--epsilon") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(opts.epsilon, ParseDouble(arg, v));
      if (opts.epsilon < 0.0) {
        return Status::InvalidArgument("--epsilon must be >= 0");
      }
    } else if (arg == "--global") {
      opts.show_global = true;
    } else if (arg == "--corrective") {
      opts.show_corrective = true;
    } else if (arg == "--shapley") {
      opts.show_shapley = true;
    } else if (arg == "--lattice") {
      DIVEXP_ASSIGN_OR_RETURN(opts.lattice_pattern, next());
    } else if (arg == "--export") {
      DIVEXP_ASSIGN_OR_RETURN(opts.export_path, next());
    } else if (arg == "--save-artifact") {
      DIVEXP_ASSIGN_OR_RETURN(opts.artifact_path, next());
    } else if (arg == "--report") {
      DIVEXP_ASSIGN_OR_RETURN(opts.report_path, next());
    } else if (arg == "--multi") {
      opts.multi = true;
    } else if (arg == "--threads") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long t, ParseInt(arg, v));
      if (t < 1 || t > 256) {
        return Status::InvalidArgument("--threads must be in [1, 256]");
      }
      opts.num_threads = static_cast<size_t>(t);
    } else if (arg == "--miner") {
      DIVEXP_ASSIGN_OR_RETURN(std::string name, next());
      DIVEXP_ASSIGN_OR_RETURN(opts.miner, ParseMinerKind(name));
    } else if (arg == "--kernel") {
      DIVEXP_ASSIGN_OR_RETURN(std::string name, next());
      DIVEXP_ASSIGN_OR_RETURN(opts.kernel, ParseKernelKind(name));
    } else if (arg == "--deadline-ms") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long d, ParseInt(arg, v));
      if (d < 0) {
        return Status::InvalidArgument("--deadline-ms must be >= 0");
      }
      opts.deadline_ms = static_cast<int64_t>(d);
    } else if (arg == "--max-patterns") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long p, ParseInt(arg, v));
      if (p < 0) {
        return Status::InvalidArgument("--max-patterns must be >= 0");
      }
      opts.max_patterns = static_cast<uint64_t>(p);
    } else if (arg == "--max-memory-mb") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long m, ParseInt(arg, v));
      if (m < 0) {
        return Status::InvalidArgument("--max-memory-mb must be >= 0");
      }
      opts.max_memory_mb = static_cast<uint64_t>(m);
    } else if (arg == "--on-limit") {
      DIVEXP_ASSIGN_OR_RETURN(std::string name, next());
      DIVEXP_ASSIGN_OR_RETURN(opts.on_limit, ParseLimitAction(name));
    } else if (arg == "--metrics-json") {
      DIVEXP_ASSIGN_OR_RETURN(opts.metrics_json_path, next());
    } else if (arg == "--checkpoint-dir") {
      DIVEXP_ASSIGN_OR_RETURN(opts.checkpoint_dir, next());
    } else if (arg == "--checkpoint-every-ms") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long ms, ParseInt(arg, v));
      if (ms < 0) {
        return Status::InvalidArgument(
            "--checkpoint-every-ms must be >= 0");
      }
      opts.checkpoint_every_ms = static_cast<uint64_t>(ms);
    } else if (arg == "--resume") {
      opts.resume = true;
    } else if (arg == "--shards") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long k, ParseInt(arg, v));
      if (k < 1 || k > 4096) {
        return Status::InvalidArgument("--shards must be in [1, 4096]");
      }
      opts.shards = static_cast<size_t>(k);
    } else if (arg == "--shard-parallelism") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long p, ParseInt(arg, v));
      if (p < 1 || p > 256) {
        return Status::InvalidArgument(
            "--shard-parallelism must be in [1, 256]");
      }
      opts.shard_parallelism = static_cast<size_t>(p);
    } else if (arg == "--shard-retries") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long r, ParseInt(arg, v));
      if (r < 0 || r > 100) {
        return Status::InvalidArgument(
            "--shard-retries must be in [0, 100]");
      }
      opts.shard_retries = static_cast<size_t>(r);
    } else if (arg == "--on-shard-failure") {
      DIVEXP_ASSIGN_OR_RETURN(std::string name, next());
      DIVEXP_ASSIGN_OR_RETURN(opts.on_shard_failure,
                              shard::ParseShardFailurePolicy(name));
    } else if (arg == "--shard-isolation") {
      DIVEXP_ASSIGN_OR_RETURN(std::string name, next());
      DIVEXP_ASSIGN_OR_RETURN(opts.shard_isolation,
                              shard::ParseShardIsolation(name));
    } else if (arg == "--shard-heartbeat-timeout-ms") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long ms, ParseInt(arg, v));
      if (ms < 1) {
        return Status::InvalidArgument(
            "--shard-heartbeat-timeout-ms must be >= 1");
      }
      opts.shard_heartbeat_timeout_ms = static_cast<uint64_t>(ms);
    } else if (arg == "--shard-watchdog-ms") {
      DIVEXP_ASSIGN_OR_RETURN(std::string v, next());
      DIVEXP_ASSIGN_OR_RETURN(long ms, ParseInt(arg, v));
      if (ms < 0) {
        return Status::InvalidArgument(
            "--shard-watchdog-ms must be >= 0");
      }
      opts.shard_watchdog_ms = static_cast<uint64_t>(ms);
    } else if (arg == "--failpoints") {
      DIVEXP_ASSIGN_OR_RETURN(opts.failpoints, next());
    } else if (arg == "--trace") {
      opts.trace = true;
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  if (!opts.show_help && opts.csv_path.empty()) {
    return Status::InvalidArgument("--csv is required");
  }
  if (opts.resume && opts.checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint-dir");
  }
  if (opts.checkpoint_every_ms > 0 && opts.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every-ms requires --checkpoint-dir");
  }
  if (opts.shards == 1 &&
      opts.on_shard_failure != shard::ShardFailurePolicy::kFail) {
    return Status::InvalidArgument(
        "--on-shard-failure requires --shards > 1");
  }
  if (opts.shards == 1 &&
      opts.shard_isolation != shard::ShardIsolation::kThread) {
    return Status::InvalidArgument(
        "--shard-isolation=process requires --shards > 1");
  }
  return opts;
}

std::string UsageString() {
  return
      "divexp — pattern-divergence analysis of classifier behavior\n"
      "\n"
      "usage: divexp --csv FILE [options]\n"
      "\n"
      "required:\n"
      "  --csv FILE         input CSV (header row required)\n"
      "\n"
      "data options:\n"
      "  --pred-col NAME    0/1 prediction column  (default: prediction)\n"
      "  --truth-col NAME   0/1 ground-truth column (default: label)\n"
      "  --bins K           quantile bins for continuous attributes "
      "(default: 3)\n"
      "\n"
      "analysis options:\n"
      "  --metric M         FPR FNR ER ACC TPR TNR PPV FDR FOR NPV POS "
      "PPOS (default: FPR)\n"
      "  --support S        minimum support threshold (default: 0.05)\n"
      "  --top K            patterns to display (default: 10)\n"
      "  --epsilon E        redundancy-prune with threshold E\n"
      "  --shapley          item contributions for the top pattern\n"
      "  --global           global vs individual item divergence\n"
      "  --corrective       top corrective items\n"
      "  --lattice \"a=v,b=w\"  render the lattice below a pattern "
      "(Graphviz DOT)\n"
      "  --multi            print every metric for the top patterns\n"
      "  --export FILE      write the full pattern table as CSV\n"
      "  --save-artifact FILE  write the table as a zero-copy serving\n"
      "                     artifact for `divexp serve`\n"
      "  --miner NAME       fpgrowth (default), apriori, eclat, or\n"
      "                     auto (pick by dataset shape)\n"
      "  --kernel NAME      hot-loop implementation: auto (default,\n"
      "                     best SIMD the CPU supports), scalar, simd;\n"
      "                     all choices give bit-identical results\n"
      "  --threads N        worker threads for mining (default: 1)\n"
      "  --report FILE      write a composed markdown audit report\n"
      "\n"
      "observability:\n"
      "  --metrics-json FILE  write per-stage metrics + counters as "
      "JSON\n"
      "  --trace            record tracing spans; print the stage table\n"
      "                     and span tree to stderr\n"
      "\n"
      "crash recovery:\n"
      "  --checkpoint-dir DIR    persist completed mining units to\n"
      "                     DIR/mining.ckpt (CRC-checked, atomically\n"
      "                     replaced)\n"
      "  --checkpoint-every-ms MS  minimum gap between snapshots\n"
      "                     (default 0 = snapshot every unit)\n"
      "  --resume           restore completed units from an existing\n"
      "                     snapshot before mining\n"
      "  --failpoints SPEC  deterministic fault injection, e.g.\n"
      "                     \"io.atomic.mid_write@2:abort\"; actions:\n"
      "                     return-error, throw, abort, delay-<ms>,\n"
      "                     segv, kill\n"
      "\n"
      "sharded exploration:\n"
      "  --shards K         split the dataset into K horizontal shards,\n"
      "                     mine each as an isolated, retried work unit\n"
      "                     and merge exactly (default 1 = monolithic)\n"
      "  --shard-parallelism N  shards mined concurrently (default: 1)\n"
      "  --shard-retries R  retries per shard before degrading\n"
      "                     (default: 3)\n"
      "  --on-shard-failure MODE  fail (default), drop, or stale\n"
      "                     fail: error out with the shard's status\n"
      "                     drop: exclude the shard's rows; coverage\n"
      "                     is reported in rows_covered_fraction\n"
      "                     stale: keep the rows, source the shard's\n"
      "                     candidates from its last checkpoint\n"
      "  --shard-isolation MODE  thread (default) or process: run each\n"
      "                     shard attempt in a supervised, fork/exec'd\n"
      "                     `divexp shard-worker` subprocess so a crash\n"
      "                     or OOM-kill in one shard is an ordinary\n"
      "                     retryable failure (results bit-identical)\n"
      "  --shard-heartbeat-timeout-ms MS  kill a process-isolated\n"
      "                     worker silent this long (default: 10000)\n"
      "  --shard-watchdog-ms MS  wall-clock cap per process-isolated\n"
      "                     attempt (default 0 = none)\n"
      "\n"
      "resource limits (0 = unlimited):\n"
      "  --deadline-ms MS   wall-clock budget for the exploration run\n"
      "  --max-patterns N   stop after emitting N frequent patterns\n"
      "  --max-memory-mb M  approximate working-memory budget\n"
      "  --on-limit MODE    fail (default), truncate, or escalate\n"
      "                     fail: return an error when a limit trips\n"
      "                     truncate: return the partial pattern table\n"
      "                     escalate: retry at higher min-support\n";
}

Result<std::vector<std::pair<std::string, std::string>>> ParsePattern(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& part : Split(text, ',')) {
    const std::string trimmed = Trim(part);
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0 ||
        eq + 1 >= trimmed.size()) {
      return Status::InvalidArgument("bad pattern item '" + trimmed +
                                     "' (want attr=value)");
    }
    out.emplace_back(Trim(trimmed.substr(0, eq)),
                     Trim(trimmed.substr(eq + 1)));
  }
  if (out.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  return out;
}

}  // namespace cli
}  // namespace divexp
