#include "tools/cli_run.h"

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/corrective.h"
#include "core/explorer.h"
#include "core/global_divergence.h"
#include "core/lattice.h"
#include "core/multi.h"
#include "core/pruning.h"
#include "core/report.h"
#include "core/shapley.h"
#include "core/summary.h"
#include "core/table_io.h"
#include "data/csv.h"
#include "data/discretize.h"
#include "data/encoder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "recovery/atomic_file.h"
#include "serve/artifact.h"
#include "shard/shard.h"
#include "shard/worker/coordinator.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace divexp {
namespace cli {
namespace {

Result<std::vector<int>> ExtractLabels(const DataFrame& df,
                                       const std::string& column) {
  DIVEXP_ASSIGN_OR_RETURN(const Column* col, df.Find(column));
  std::vector<int> labels;
  labels.reserve(df.num_rows());
  for (size_t r = 0; r < col->size(); ++r) {
    if (col->IsMissing(r)) {
      return Status::InvalidArgument("missing label in column '" +
                                     column + "' row " +
                                     std::to_string(r));
    }
    double v = 0.0;
    switch (col->type()) {
      case ColumnType::kInt:
      case ColumnType::kDouble:
        v = col->Numeric(r);
        break;
      default:
        return Status::InvalidArgument("label column '" + column +
                                       "' must be numeric 0/1");
    }
    if (v != 0.0 && v != 1.0) {
      return Status::InvalidArgument("label column '" + column +
                                     "' must contain only 0/1");
    }
    labels.push_back(v == 1.0 ? 1 : 0);
  }
  return labels;
}

}  // namespace

Status Run(const CliOptions& opts, std::ostream& out, std::ostream& log) {
  // Fresh observability state per run: Run() is also driven from tests
  // and would otherwise accumulate spans/counters across invocations.
  const bool want_metrics = !opts.metrics_json_path.empty();
  if (want_metrics || opts.trace) {
    obs::TraceCollector::Default().Reset();
    obs::MetricsRegistry::Default().ResetAll();
  }
  if (opts.trace) obs::SetTracingEnabled(true);
  // Deterministic fault injection: arm the schedule for the duration of
  // this run only. A no-op build rejects a non-empty schedule so a
  // fault the operator asked for is never silently skipped.
  recovery::ScopedFailPoints failpoints;
  if (!opts.failpoints.empty()) {
#ifdef DIVEXP_FAILPOINTS_ENABLED
    DIVEXP_RETURN_NOT_OK(failpoints.Arm(opts.failpoints));
    log << "failpoints armed: " << opts.failpoints << "\n";
#else
    return Status::InvalidArgument(
        "--failpoints requires a build with DIVEXP_ENABLE_FAILPOINTS");
#endif
  }
  Stopwatch total;
  obs::StageCollector run_stages;

  DataFrame df;
  {
    obs::StageTimer timer(&run_stages, obs::kStageCsvLoad);
    DIVEXP_ASSIGN_OR_RETURN(df, ReadCsvFile(opts.csv_path));
    timer.AddItems(df.num_rows());
  }
  log << "loaded " << df.num_rows() << " rows x " << df.num_columns()
      << " columns from " << opts.csv_path << "\n";

  DIVEXP_ASSIGN_OR_RETURN(std::vector<int> preds,
                          ExtractLabels(df, opts.pred_column));
  DIVEXP_ASSIGN_OR_RETURN(std::vector<int> truths,
                          ExtractLabels(df, opts.truth_column));
  DIVEXP_RETURN_NOT_OK(df.DropColumn(opts.pred_column));
  DIVEXP_RETURN_NOT_OK(df.DropColumn(opts.truth_column));

  // Drop rows with missing attribute values (paper preprocessing),
  // keeping labels aligned.
  const std::vector<size_t> complete = df.CompleteRows();
  if (complete.size() != df.num_rows()) {
    log << "dropping " << (df.num_rows() - complete.size())
        << " rows with missing values\n";
    df = df.Take(complete);
    std::vector<int> p, t;
    for (size_t r : complete) {
      p.push_back(preds[r]);
      t.push_back(truths[r]);
    }
    preds = std::move(p);
    truths = std::move(t);
  }

  DataFrame binned;
  {
    obs::StageTimer timer(&run_stages, obs::kStageDiscretize);
    DIVEXP_ASSIGN_OR_RETURN(
        binned, DiscretizeAll(df, BinStrategy::kQuantile, opts.bins));
    timer.AddItems(binned.num_rows());
  }
  EncodedDataset encoded;
  {
    obs::StageTimer timer(&run_stages, obs::kStageEncode);
    DIVEXP_ASSIGN_OR_RETURN(encoded, EncodeDataFrame(binned));
    timer.AddItems(encoded.num_rows);
    timer.SetPeakBytes(encoded.cells.capacity() * sizeof(uint32_t));
  }

  ExplorerOptions eopts;
  eopts.min_support = opts.min_support;
  eopts.miner = opts.miner;
  eopts.kernel = opts.kernel;
  eopts.num_threads = opts.num_threads;
  eopts.limits.deadline_ms = opts.deadline_ms;
  eopts.limits.max_patterns = opts.max_patterns;
  eopts.limits.max_memory_mb = opts.max_memory_mb;
  eopts.on_limit = opts.on_limit;
  eopts.checkpoint_dir = opts.checkpoint_dir;
  eopts.checkpoint_every_ms = opts.checkpoint_every_ms;
  eopts.resume = opts.resume;
  ExplorerRunStats stats;
  std::optional<PatternTable> table_storage;
  if (opts.shards > 1) {
    shard::ShardedExplorerOptions sopts;
    sopts.base = eopts;
    sopts.num_shards = opts.shards;
    sopts.shard_parallelism = opts.shard_parallelism;
    sopts.on_shard_failure = opts.on_shard_failure;
    sopts.retry.max_retries = opts.shard_retries;
    if (opts.shard_isolation == shard::ShardIsolation::kProcess) {
      sopts.isolation = shard::ShardIsolation::kProcess;
      shard::worker::ProcessIsolationOptions popts;
      popts.heartbeat_timeout_ms = opts.shard_heartbeat_timeout_ms;
      popts.watchdog_ms = opts.shard_watchdog_ms;
      // Scratch for per-attempt specs and result artifacts: beside the
      // checkpoints when the run has them, else a fresh temp directory.
      if (!opts.checkpoint_dir.empty()) {
        popts.scratch_dir = opts.checkpoint_dir + "/worker-scratch";
      } else {
        std::string tmpl = "/tmp/divexp-shard-XXXXXX";
        if (::mkdtemp(tmpl.data()) == nullptr) {
          return Status::IOError(
              "cannot create a scratch directory for shard workers");
        }
        popts.scratch_dir = tmpl;
      }
      // The chaos schedule rides into every worker; ordinals there
      // count per worker process (see docs/process-isolation.md).
      popts.failpoints = opts.failpoints;
      sopts.attempt_runner =
          shard::worker::MakeProcessAttemptRunner(popts);
      log << "shard isolation: process (scratch in " << popts.scratch_dir
          << ")\n";
    }
    shard::ShardedExplorer sharded(sopts);
    DIVEXP_ASSIGN_OR_RETURN(
        PatternTable mined,
        sharded.Explore(encoded, preds, truths, opts.metric));
    table_storage.emplace(std::move(mined));
    stats = sharded.last_run_stats();
  } else {
    DivergenceExplorer explorer(eopts);
    DIVEXP_ASSIGN_OR_RETURN(
        PatternTable mined,
        explorer.Explore(encoded, preds, truths, opts.metric));
    table_storage.emplace(std::move(mined));
    stats = explorer.last_run_stats();
  }
  PatternTable& table = *table_storage;
  run_stages.MergeFrom(stats.stages);
  if (stats.truncated) {
    log << "WARNING: exploration truncated ("
        << LimitBreachName(stats.reason)
        << "); results below are a partial view\n";
  }
  if (stats.escalations > 0) {
    log << "min-support escalated " << stats.escalations << "x to "
        << stats.effective_min_support << " to fit the limits\n";
  }
  if (stats.resumed_from_checkpoint) {
    log << "resumed from checkpoint in " << opts.checkpoint_dir << "\n";
  }
  if (stats.checkpoints_written > 0) {
    log << "wrote " << stats.checkpoints_written << " checkpoint(s), "
        << stats.checkpoint_bytes << " bytes\n";
  }
  if (!stats.checkpoint_write_error.ok()) {
    // One aggregate warning for the run, not one line per failed
    // snapshot interval.
    log << "WARNING: " << stats.checkpoint_write_failures
        << " checkpoint write(s) failed; first error: "
        << stats.checkpoint_write_error.ToString()
        << "; --resume from " << opts.checkpoint_dir
        << " would restart from a stale snapshot\n";
  }
  if (stats.shards_failed > 0) {
    log << "WARNING: " << stats.shards_failed << " of " << stats.shards
        << " shard(s) failed after retries (policy: "
        << shard::ShardFailurePolicyName(
               opts.on_shard_failure)
        << ", " << stats.retries_total << " retries total)\n";
  }
  if (stats.rows_covered_fraction < 1.0) {
    log << "WARNING: divergence computed over "
        << (stats.rows_covered_fraction * 100.0) << "% of rows ("
        << stats.shards_dropped << " shard(s) dropped)\n";
  }

  const std::string label = std::string("d_") + MetricName(opts.metric);
  out << (table.size() - 1) << " frequent patterns (s="
      << stats.effective_min_support << "); " << MetricName(opts.metric)
      << "(D)=" << table.global_rate() << "\n\n";

  std::vector<size_t> shown;
  if (opts.epsilon >= 0.0) {
    obs::StageTimer timer(&run_stages, obs::kStagePrune);
    const std::vector<size_t> kept = RedundancyPrune(table, opts.epsilon);
    timer.AddItems(table.size());
    timer.Finish();
    std::vector<bool> mask(table.size(), false);
    for (size_t i : kept) mask[i] = true;
    for (size_t i : table.RankByDivergence(true)) {
      if (!mask[i]) continue;
      shown.push_back(i);
      if (shown.size() >= opts.top_k) break;
    }
    out << "top " << shown.size() << " divergent patterns after eps="
        << opts.epsilon << " pruning (" << kept.size() << " survive):\n";
  } else {
    shown = table.TopK(opts.top_k);
    out << "top " << shown.size() << " divergent patterns:\n";
  }
  out << FormatPatternRows(table, shown, label) << "\n";

  if (opts.show_shapley && !shown.empty()) {
    obs::StageTimer timer(&run_stages, obs::kStageShapley);
    const Itemset& best = table.row(shown[0]).items;
    DIVEXP_ASSIGN_OR_RETURN(std::vector<ItemContribution> contributions,
                            ShapleyContributions(table, best));
    timer.AddItems(contributions.size());
    timer.Finish();
    out << "item contributions for [" << table.ItemsetName(best)
        << "]:\n"
        << FormatContributions(table, contributions) << "\n";
  }

  if (opts.show_global) {
    obs::StageTimer timer(&run_stages, obs::kStageGlobal);
    GlobalDivergenceOptions gopts;
    gopts.num_threads = opts.num_threads;
    const auto globals = ComputeGlobalItemDivergence(table, gopts);
    timer.AddItems(globals.size());
    timer.Finish();
    out << "global vs individual item divergence:\n"
        << FormatGlobalDivergence(table, globals, opts.top_k) << "\n";
  }

  if (opts.show_corrective) {
    obs::StageTimer timer(&run_stages, obs::kStageCorrective);
    CorrectiveOptions copts;
    copts.top_k = opts.top_k;
    const auto corrective = FindCorrectiveItems(table, copts);
    timer.AddItems(corrective.size());
    timer.Finish();
    out << "top corrective items:\n"
        << FormatCorrectiveItems(table, corrective, opts.top_k) << "\n";
  }

  if (opts.multi) {
    MultiExplorer multi(eopts);
    DIVEXP_ASSIGN_OR_RETURN(MultiPatternTable mtable,
                            multi.Explore(encoded, preds, truths));
    static constexpr Metric kAll[] = {
        Metric::kFalsePositiveRate,      Metric::kFalseNegativeRate,
        Metric::kErrorRate,              Metric::kAccuracy,
        Metric::kTruePositiveRate,       Metric::kTrueNegativeRate,
        Metric::kPositivePredictiveValue, Metric::kFalseDiscoveryRate,
        Metric::kFalseOmissionRate,      Metric::kNegativePredictiveValue,
        Metric::kPositiveRate,           Metric::kPredictedPositiveRate,
    };
    out << "all metrics for the top patterns:\n";
    for (size_t i : shown) {
      const Itemset& items = table.row(i).items;
      out << "  [" << table.ItemsetName(items) << "]\n   ";
      for (Metric m : kAll) {
        DIVEXP_ASSIGN_OR_RETURN(double div, mtable.Divergence(m, items));
        out << " d_" << MetricName(m) << "=" << FormatDouble(div, 3);
      }
      out << "\n";
    }
    out << "\n";
  }

  if (!opts.export_path.empty()) {
    DIVEXP_RETURN_NOT_OK(WritePatternTableFile(table, opts.export_path));
    log << "pattern table written to " << opts.export_path << "\n";
  }

  if (!opts.artifact_path.empty()) {
    uint64_t bytes = 0;
    DIVEXP_RETURN_NOT_OK(serve::WritePatternTableArtifact(
        opts.artifact_path, table, &bytes));
    log << "serving artifact written to " << opts.artifact_path << " ("
        << bytes << " bytes)\n";
  }

  if (!opts.report_path.empty()) {
    AuditReportOptions ropts;
    ropts.explorer = eopts;
    ropts.top_k = opts.top_k;
    ropts.epsilon = opts.epsilon >= 0.0 ? opts.epsilon : 0.05;
    DIVEXP_ASSIGN_OR_RETURN(
        std::string report,
        GenerateAuditReport(encoded, preds, truths, ropts));
    DIVEXP_RETURN_NOT_OK(
        recovery::WriteFileAtomic(opts.report_path, report));
    log << "audit report written to " << opts.report_path << "\n";
  }

  if (!opts.lattice_pattern.empty()) {
    DIVEXP_ASSIGN_OR_RETURN(auto description,
                            ParsePattern(opts.lattice_pattern));
    DIVEXP_ASSIGN_OR_RETURN(Itemset target,
                            table.ParseItemset(description));
    DIVEXP_ASSIGN_OR_RETURN(Lattice lattice, BuildLattice(table, target));
    out << LatticeToDot(lattice, table);
  }

  if (opts.trace) {
    if (!stats.dispatch_rationale.empty()) {
      log << "\nmining plan: " << stats.miner << " / " << stats.kernel
          << " (" << stats.dispatch_rationale << ")\n";
    }
    log << "\nper-stage summary:\n"
        << obs::FormatStageTable(run_stages.stages());
    const std::vector<obs::SpanStats> spans =
        obs::TraceCollector::Default().Snapshot();
    if (!spans.empty()) {
      log << "\nspan tree:\n" << obs::FormatSpanTree(spans);
    }
  }
  if (want_metrics) {
    obs::MetricsReport report;
    report.run.tool = "divexp-cli";
    report.run.elapsed_ms = total.Millis();
    report.run.patterns = stats.patterns;
    report.run.peak_memory_bytes = stats.peak_memory_bytes;
    report.run.truncated = stats.truncated;
    report.run.breach = LimitBreachName(stats.reason);
    report.run.effective_min_support = stats.effective_min_support;
    report.run.escalations = stats.escalations;
    report.run.resumed_from_checkpoint = stats.resumed_from_checkpoint;
    report.run.checkpoints_written = stats.checkpoints_written;
    report.run.checkpoint_bytes = stats.checkpoint_bytes;
    report.run.faults_injected = stats.faults_injected;
    report.run.shards = stats.shards;
    report.run.shards_failed = stats.shards_failed;
    report.run.shards_dropped = stats.shards_dropped;
    report.run.shards_stale = stats.shards_stale;
    report.run.retries_total = stats.retries_total;
    report.run.rows_covered_fraction = stats.rows_covered_fraction;
    report.run.checkpoint_write_failures = stats.checkpoint_write_failures;
    report.run.miner = stats.miner;
    report.run.kernel = stats.kernel;
    report.run.shard_isolation = stats.shard_isolation;
    report.stages = run_stages.stages();
    report.metrics = obs::MetricsRegistry::Default().Snapshot();
    report.spans = obs::TraceCollector::Default().Snapshot();
    DIVEXP_RETURN_NOT_OK(recovery::WriteFileAtomic(
        opts.metrics_json_path, obs::MetricsReportToJson(report) + "\n"));
    log << "metrics written to " << opts.metrics_json_path << "\n";
  }
  return Status::OK();
}

}  // namespace cli
}  // namespace divexp
