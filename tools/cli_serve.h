// `divexp serve` — interactive/daemon front end over a pattern-table
// artifact or snapshot. Kept separate from main() so it can be unit
// tested against in-memory streams.
#ifndef DIVEXP_TOOLS_CLI_SERVE_H_
#define DIVEXP_TOOLS_CLI_SERVE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/status.h"

namespace divexp {
namespace cli {

/// Parsed `divexp serve` configuration.
struct ServeOptions {
  /// Artifact (.dvt) or pattern-table snapshot path.
  std::string table_path;
  /// Unix socket to listen on; empty = REPL on stdin/stdout.
  std::string socket_path;
  size_t num_threads = 4;
  /// Full artifact validation (every section CRC + fingerprint) before
  /// serving, instead of the default O(1) header validation.
  bool verify = false;
  serve::QueryServiceOptions service;
  /// Socket-daemon knobs (per-connection idle deadline).
  serve::SocketServerOptions socket;
  bool show_help = false;
};

/// Parses argv after the `serve` verb.
Result<ServeOptions> ParseServeOptions(const std::vector<std::string>& args);

/// Usage text for `divexp serve`.
std::string ServeUsageString();

/// Runs the REPL (no --socket) or the socket daemon (--socket; serves
/// until `in` reaches EOF, or — when `in` is the real stdin — until
/// SIGTERM/SIGINT arrives, observed through a self-pipe so the handler
/// stays async-signal-safe). Shutdown drains in-flight responses
/// before the listener closes. Returns after the server has shut down.
Status RunServe(const ServeOptions& opts, std::istream& in,
                std::ostream& out, std::ostream& log);

}  // namespace cli
}  // namespace divexp

#endif  // DIVEXP_TOOLS_CLI_SERVE_H_
