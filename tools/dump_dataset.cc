// Exports one of the built-in synthetic benchmark datasets as a CSV
// ready for the divexp CLI: the discretized attribute columns plus
// `prediction` and `label` columns. Lets README / CI exercise the full
// CSV pipeline (e.g. --metrics-json on the COMPAS stand-in) without
// redistributing the original datasets.
//
// usage: divexp-dump-dataset NAME [--out=FILE] [--raw] [--seed=N]
//   NAME: compas | adult | bank | german | heart | artificial
//   --raw: dump the pre-discretization table instead.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/csv.h"
#include "datasets/datasets.h"
#include "util/string_util.h"

namespace divexp {
namespace {

int Run(int argc, char** argv) {
  std::string name;
  std::string out_path;
  bool raw = false;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--raw") {
      raw = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (name.empty() && arg.rfind("--", 0) != 0) {
      name = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (name.empty()) {
    std::fprintf(stderr,
                 "usage: divexp-dump-dataset NAME [--out=FILE] [--raw] "
                 "[--seed=N]\n  NAME: %s\n",
                 Join(AllDatasetNames(), " | ").c_str());
    return 2;
  }
  if (out_path.empty()) out_path = name + ".csv";

  auto dataset = MakeByName(name, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "failed to build dataset %s: %s\n", name.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  const Status trained = EnsurePredictions(&(*dataset));
  if (!trained.ok()) {
    std::fprintf(stderr, "failed to train predictions for %s: %s\n",
                 name.c_str(), trained.ToString().c_str());
    return 1;
  }

  DataFrame frame = raw ? dataset->raw : dataset->discretized;
  std::vector<int64_t> prediction(dataset->predictions.begin(),
                                  dataset->predictions.end());
  std::vector<int64_t> label(dataset->truth.begin(), dataset->truth.end());
  Status status =
      frame.AddColumn(Column::MakeInt("prediction", std::move(prediction)));
  if (status.ok()) {
    status = frame.AddColumn(Column::MakeInt("label", std::move(label)));
  }
  if (status.ok()) status = WriteCsvFile(frame, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: %zu rows -> %s\n", name.c_str(),
               frame.num_rows(), out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace divexp

int main(int argc, char** argv) { return divexp::Run(argc, argv); }
